"""Shared infrastructure of the benchmark harness.

Every bench regenerates one table or figure of the paper's evaluation
(see DESIGN.md's experiment index). Rendered tables are printed (visible
with ``pytest benchmarks/ --benchmark-only -s``) *and* written to
``benchmarks/results/<experiment>.txt`` so a full run leaves the
paper-vs-measured evidence on disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.testenv import TestEnvironment

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def environment() -> TestEnvironment:
    """One shared test environment so generator profiles (schema + rule
    sets) are built once per (n_rules, seed) across all benches."""
    return TestEnvironment()


@pytest.fixture(scope="session")
def record_table():
    """Callable writing a rendered result table to disk and stdout."""

    def _record(experiment_id: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[written to {path}]")

    return _record
