"""The paper's primary contribution: the data auditing tool.

Multiple classification / regression auditor (sec. 5), error-confidence
measures (Defs. 7–9), ranked findings and correction proposals
(sec. 5.2–5.3), structure model, model persistence, the streaming
:class:`~repro.core.session.AuditSession` facade for the asynchronous
warehouse-loading workflow (sec. 2.2), and the multi-core audit executor
(:mod:`repro.core.parallel`) behind every ``n_jobs=`` parameter.
"""

from repro.core.auditor import AuditorConfig, ColumnCache, DataAuditor
from repro.core.confidence import (
    error_confidence,
    error_confidence_batch,
    error_confidence_from_counts,
    expected_error_confidence,
    min_instances_for_confidence,
    record_error_confidence,
)
from repro.core.findings import (
    AuditReport,
    Correction,
    Finding,
    findings_schema,
    findings_to_table,
)
from repro.core.parallel import (
    audit_chunks_parallel,
    audit_table_parallel,
    resolve_n_jobs,
)
from repro.core.review import Decision, DecisionKind, ReviewItem, ReviewSession
from repro.core.serialize import (
    auditor_from_dict,
    auditor_to_dict,
    load_auditor,
    save_auditor,
)
from repro.core.session import AuditSession, ModelPersistenceError

__all__ = [
    "DataAuditor",
    "AuditorConfig",
    "ColumnCache",
    "AuditSession",
    "ModelPersistenceError",
    "AuditReport",
    "resolve_n_jobs",
    "audit_table_parallel",
    "audit_chunks_parallel",
    "Finding",
    "findings_schema",
    "findings_to_table",
    "Correction",
    "error_confidence",
    "error_confidence_batch",
    "error_confidence_from_counts",
    "expected_error_confidence",
    "min_instances_for_confidence",
    "record_error_confidence",
    "auditor_to_dict",
    "auditor_from_dict",
    "save_auditor",
    "load_auditor",
    "ReviewSession",
    "ReviewItem",
    "Decision",
    "DecisionKind",
]
