"""E7 / sec. 5 — the algorithm-selection experiment.

Paper: *"For the QUIS domain we evaluated different alternatives (instance
based classifiers, naive Bayes classifiers, classification rule inducers,
and decision trees). This led to the decision to base our structure
inducer and deviation detector on […] C4.5."*

Expected shape: the adjusted decision tree wins the
sensitivity-at-high-specificity trade-off. The alternatives fail in
instructive ways — naive Bayes reports overconfident distributions backed
by the full training size (specificity suffers), kNN's support is only
``k`` (error confidences cannot clear the 80 % bar), and 1R/PRISM model
too little structure.
"""

from repro.core import AuditorConfig
from repro.generator import RuleGenerationConfig
from repro.mining import (
    KnnClassifier,
    NaiveBayesClassifier,
    OneRClassifier,
    PrismClassifier,
)
from repro.testenv import Candidate, ExperimentConfig, calibrate

# conjunctive premises (2–3 atoms), like the paper's QUIS dependencies
# (KBM = 01 ∧ GBM = 901 → BRV = 501): single-attribute models such as 1R
# cannot represent them, which is precisely what the selection experiment
# is meant to expose
CONJUNCTIVE_RULES = RuleGenerationConfig(
    min_premise_atoms=2, max_premise_atoms=3, disjunction_probability=0.0
)
BASE = ExperimentConfig(n_records=4000, n_rules=80, rule_config=CONJUNCTIVE_RULES)

CANDIDATES = [
    Candidate("decision tree (adjusted C4.5)", AuditorConfig()),
    Candidate(
        "naive Bayes",
        AuditorConfig(classifier_factory=lambda cfg: NaiveBayesClassifier()),
    ),
    Candidate(
        "instance-based (7-NN)",
        AuditorConfig(classifier_factory=lambda cfg: KnnClassifier(k=7)),
    ),
    Candidate(
        "rule inducer (1R)",
        AuditorConfig(classifier_factory=lambda cfg: OneRClassifier()),
    ),
    Candidate(
        "rule inducer (PRISM)",
        AuditorConfig(classifier_factory=lambda cfg: PrismClassifier()),
    ),
]


def test_classifier_selection(benchmark, environment, record_table):
    outcomes = benchmark.pedantic(
        lambda: calibrate(
            CANDIDATES, base=BASE, environment=environment, specificity_floor=0.97
        ),
        rounds=1,
        iterations=1,
    )

    lines = [
        "E7 — classifier-family selection "
        "(sec. 5; 4000 records, 80 conjunctive-premise rules)",
        f"{'classifier':<30}  sensitivity  specificity  fit[s]  audit[s]",
    ]
    for outcome in outcomes:
        lines.append(
            f"{outcome.candidate.name:<30}  {outcome.sensitivity:>11.3f}  "
            f"{outcome.specificity:>11.4f}  {outcome.result.fit_seconds:>6.2f}  "
            f"{outcome.result.audit_seconds:>8.2f}"
        )
    record_table("E7_classifier_selection", "\n".join(lines))

    winner = outcomes[0]
    assert winner.candidate.name == "decision tree (adjusted C4.5)"
    assert winner.specificity >= 0.97
    # every alternative either detects less or violates the specificity bar
    for other in outcomes[1:]:
        assert (
            other.sensitivity <= winner.sensitivity + 1e-9
            or other.specificity < 0.97
        )
