"""E8 / sec. 5.4 — ablation of the auditing adjustments to C4.5.

The paper replaces C4.5's pessimistic-error pruning with the integrated
expected-error-confidence criterion, adds the derived ``minInst``
pre-pruning, and deletes rules useless for detection. The ablation
compares:

* ``adjusted (paper)`` — integrated expected-error-confidence pruning +
  minInst (the production configuration);
* ``unadjusted C4.5`` — classic pessimistic-error post-pruning, no
  minInst;
* ``no pruning`` — the raw grown tree (the "space-consuming unpruned
  decision tree" the paper avoids).

Expected shape: the adjusted variant detects at least as much as
unadjusted C4.5 at comparable specificity with *much* smaller models;
the unpruned tree is the largest and noisiest.
"""

import dataclasses

from repro.core import AuditorConfig, min_instances_for_confidence
from repro.mining import PruningStrategy, TreeClassifier, TreeConfig
from repro.mining.intervals import ConfidenceBounds
from repro.testenv import ExperimentConfig, TestEnvironment

BASE = ExperimentConfig(n_records=4000, n_rules=100)


def _variant(name: str, pruning: PruningStrategy, use_min_inst: bool):
    def factory(config: AuditorConfig):
        min_inst = (
            float(
                min_instances_for_confidence(
                    config.min_error_confidence, config.bounds
                )
            )
            if use_min_inst
            else None
        )
        return TreeClassifier(
            TreeConfig(
                pruning=pruning,
                min_class_instances=min_inst,
                bounds=config.bounds,
                min_detection_confidence=config.min_error_confidence,
            )
        )

    return name, AuditorConfig(classifier_factory=factory)


VARIANTS = [
    _variant("adjusted (paper)", PruningStrategy.EXPECTED_ERROR_CONFIDENCE, True),
    _variant("unadjusted C4.5 (pessimistic)", PruningStrategy.PESSIMISTIC, False),
    _variant("no pruning", PruningStrategy.NONE, False),
]


def test_adjustment_ablation(benchmark, environment: TestEnvironment, record_table):
    def run_all():
        rows = []
        for name, auditor_config in VARIANTS:
            config = dataclasses.replace(BASE, auditor=auditor_config)
            result = environment.run(config)
            # re-fit to measure model size (the environment does not keep
            # the auditor); cheap relative to the sweep itself
            from repro.core import DataAuditor

            auditor = DataAuditor(result.dirty.schema, auditor_config).fit(result.dirty)
            nodes = sum(c.root.node_count() for c in auditor.classifiers.values())
            rules_useful = sum(len(c.rules()) for c in auditor.classifiers.values())
            rules_all = sum(
                len(c.rules(drop_useless=False)) for c in auditor.classifiers.values()
            )
            rows.append((name, result, nodes, rules_useful, rules_all))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "E8 — ablation of the sec. 5.4 auditing adjustments (4000 records, 100 rules)",
        f"{'variant':<32}  sensitivity  specificity  tree nodes  rules(useful/all)",
    ]
    for name, result, nodes, useful, everything in rows:
        lines.append(
            f"{name:<32}  {result.sensitivity:>11.3f}  {result.specificity:>11.4f}  "
            f"{nodes:>10d}  {useful:>6d}/{everything}"
        )
    record_table("E8_ablation_adjustments", "\n".join(lines))

    adjusted = rows[0]
    unadjusted = rows[1]
    unpruned = rows[2]
    # the adjusted tree is drastically smaller than the unpruned one …
    assert adjusted[2] < unpruned[2] * 0.5
    # … keeps high specificity …
    assert adjusted[1].specificity > 0.97
    # … and detects at least as much as classic C4.5 pruning
    assert adjusted[1].sensitivity >= unadjusted[1].sensitivity - 0.02
    # zero-confidence rule deletion really removes rules
    assert adjusted[3] < adjusted[4]
