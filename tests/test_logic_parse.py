"""Tests for the formula/rule parser (text round-trips with ``str``)."""

import datetime

import pytest
from hypothesis import given, settings

from repro.logic import (
    And,
    Eq,
    EqAttr,
    Gt,
    IsNotNull,
    IsNull,
    Lt,
    LtAttr,
    Ne,
    NeAttr,
    Or,
    Rule,
)
from repro.logic.parse import ParseError, parse_formula, parse_rule, parse_rules

from tests import strategies as tst


class TestAtoms:
    def test_nominal_equality(self, full_schema):
        assert parse_formula("A = 'a'", full_schema) == Eq("A", "a")
        assert parse_formula("A ≠ 'b'", full_schema) == Ne("A", "b")
        assert parse_formula("A != 'b'", full_schema) == Ne("A", "b")

    def test_numeric_comparisons(self, full_schema):
        assert parse_formula("N < 50", full_schema) == Lt("N", 50)
        assert parse_formula("N > 3", full_schema) == Gt("N", 3)
        assert parse_formula("F < 0.25", full_schema) == Lt("F", 0.25)

    def test_date_literal(self, full_schema):
        assert parse_formula("D > 2000-06-01", full_schema) == Gt(
            "D", datetime.date(2000, 6, 1)
        )

    def test_null_tests(self, full_schema):
        assert parse_formula("A isnull", full_schema) == IsNull("A")
        assert parse_formula("B isnotnull", full_schema) == IsNotNull("B")

    def test_relational(self, full_schema):
        assert parse_formula("N < M", full_schema) == LtAttr("N", "M")
        assert parse_formula("A = B", full_schema) == EqAttr("A", "B")
        assert parse_formula("A ≠ B", full_schema) == NeAttr("A", "B")

    def test_quoted_escapes(self, tiny_schema):
        # value with an escaped quote parses (domain check then rejects it)
        with pytest.raises(ValueError):
            parse_formula(r"A = 'it\'s'", tiny_schema)


class TestComposites:
    def test_conjunction(self, full_schema):
        parsed = parse_formula("A = 'a' ∧ N < 5", full_schema)
        assert parsed == And(Eq("A", "a"), Lt("N", 5))

    def test_ascii_connectives(self, full_schema):
        assert parse_formula("A = 'a' and N < 5", full_schema) == parse_formula(
            "A = 'a' ∧ N < 5", full_schema
        )
        assert parse_formula("A = 'a' or N < 5", full_schema) == Or(
            Eq("A", "a"), Lt("N", 5)
        )

    def test_precedence_and_binds_tighter(self, full_schema):
        parsed = parse_formula("A = 'a' ∨ A = 'b' ∧ N < 5", full_schema)
        assert isinstance(parsed, Or)
        assert parsed.parts[0] == Eq("A", "a")
        assert parsed.parts[1] == And(Eq("A", "b"), Lt("N", 5))

    def test_parentheses_override(self, full_schema):
        parsed = parse_formula("(A = 'a' ∨ A = 'b') ∧ N < 5", full_schema)
        assert isinstance(parsed, And)
        assert isinstance(parsed.parts[0], Or)


class TestRules:
    def test_paper_example(self, full_schema):
        rule = parse_rule("A = 'a' → B = 'x'", full_schema)
        assert rule == Rule(Eq("A", "a"), Eq("B", "x"))

    def test_ascii_arrow(self, full_schema):
        assert parse_rule("A = 'a' -> B = 'x'", full_schema) == parse_rule(
            "A = 'a' → B = 'x'", full_schema
        )

    def test_conjunctive_premise(self, full_schema):
        rule = parse_rule("A = 'a' ∧ N > 10 → B = 'y'", full_schema)
        assert rule.premise == And(Eq("A", "a"), Gt("N", 10))

    def test_rule_file(self, full_schema):
        text = """
        # engine-composition dependencies
        A = 'a' → B = 'x'

        A = 'b' ∧ N < 50 → B = 'y'   # with a trailing comment
        """
        rules = parse_rules(text, full_schema)
        assert len(rules) == 2

    def test_rule_file_error_reports_line(self, full_schema):
        with pytest.raises(ParseError, match="line 2"):
            parse_rules("A = 'a' → B = 'x'\nA ==== 'b' → B", full_schema)


class TestErrors:
    def test_unknown_attribute(self, full_schema):
        with pytest.raises(ParseError, match="unknown attribute"):
            parse_formula("ZZ = 'a'", full_schema)

    def test_bare_word_value(self, full_schema):
        with pytest.raises(ParseError, match="quoted"):
            parse_formula("A = a", full_schema)

    def test_out_of_domain_constant(self, full_schema):
        with pytest.raises(ValueError, match="outside the domain"):
            parse_formula("A = 'zzz'", full_schema)

    def test_trailing_garbage(self, full_schema):
        with pytest.raises(ParseError, match="trailing"):
            parse_formula("A = 'a' B", full_schema)

    def test_missing_operand(self, full_schema):
        with pytest.raises(ParseError):
            parse_formula("A =", full_schema)

    def test_two_arrows(self, full_schema):
        with pytest.raises(ParseError, match="exactly one"):
            parse_rule("A = 'a' → B = 'x' → N < 5", full_schema)

    def test_stray_character(self, full_schema):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_formula("A = 'a' ;", full_schema)

    def test_unbalanced_paren(self, full_schema):
        with pytest.raises(ParseError):
            parse_formula("(A = 'a'", full_schema)


class TestRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(tst.formulas())
    def test_str_parse_roundtrip(self, formula):
        # str() renders the library notation; parsing it must reproduce an
        # equivalent formula (modulo And/Or flattening, which str preserves)
        text = str(formula)
        parsed = parse_formula(text, tst.TINY)
        for record in list(tst.all_records())[:40]:
            assert parsed.evaluate(record) == formula.evaluate(record)

    @settings(max_examples=60, deadline=None)
    @given(tst.rules())
    def test_rule_roundtrip(self, rule):
        parsed = parse_rule(str(rule), tst.TINY)
        for record in list(tst.all_records())[:40]:
            assert parsed.violated_by(record) == rule.violated_by(record)
