"""Tests for the command-line interface (full shell pipeline)."""

import json

import pytest

from repro.cli import main
from repro.schema.serialize import schema_from_dict


@pytest.fixture
def workspace(tmp_path):
    return {
        "schema": tmp_path / "schema.json",
        "clean": tmp_path / "clean.csv",
        "dirty": tmp_path / "dirty.csv",
        "log": tmp_path / "log.json",
        "model": tmp_path / "model.json",
        "findings": tmp_path / "findings.csv",
    }


def _generate(workspace, records=600, rules=25):
    code = main(
        [
            "generate",
            "--records",
            str(records),
            "--rules",
            str(rules),
            "--seed",
            "42",
            "--out",
            str(workspace["clean"]),
            "--schema-out",
            str(workspace["schema"]),
        ]
    )
    assert code == 0


class TestSchemaCommand:
    def test_base_schema(self, tmp_path, capsys):
        out = tmp_path / "schema.json"
        assert main(["schema", "--kind", "base", "--out", str(out)]) == 0
        schema = schema_from_dict(json.loads(out.read_text()))
        assert len(schema) == 8
        assert "wrote base schema" in capsys.readouterr().out

    def test_quis_schema(self, tmp_path):
        out = tmp_path / "quis.json"
        assert main(["schema", "--kind", "quis", "--out", str(out)]) == 0
        schema = schema_from_dict(json.loads(out.read_text()))
        assert "BRV" in schema


class TestPipeline:
    def test_generate_writes_csv_and_schema(self, workspace, capsys):
        _generate(workspace)
        assert workspace["clean"].exists() and workspace["schema"].exists()
        header = workspace["clean"].read_text().splitlines()[0]
        assert "C1" in header and "QTY" in header
        assert "generated 600 records" in capsys.readouterr().out

    def test_full_pipeline(self, workspace, capsys):
        _generate(workspace)
        assert (
            main(
                [
                    "pollute",
                    "--schema",
                    str(workspace["schema"]),
                    "--input",
                    str(workspace["clean"]),
                    "--output",
                    str(workspace["dirty"]),
                    "--log-out",
                    str(workspace["log"]),
                    "--factor",
                    "1.5",
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "fit",
                    "--schema",
                    str(workspace["schema"]),
                    "--input",
                    str(workspace["dirty"]),
                    "--model-out",
                    str(workspace["model"]),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "audit",
                    "--model",
                    str(workspace["model"]),
                    "--input",
                    str(workspace["dirty"]),
                    "--findings-out",
                    str(workspace["findings"]),
                    "--top",
                    "3",
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "evaluate",
                    "--schema",
                    str(workspace["schema"]),
                    "--clean",
                    str(workspace["clean"]),
                    "--dirty",
                    str(workspace["dirty"]),
                    "--log",
                    str(workspace["log"]),
                    "--model",
                    str(workspace["model"]),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "cell changes" in output
        assert "induced structure model" in output
        assert "suspicious" in output
        assert "sensitivity=" in output
        # findings CSV has a header plus data rows
        lines = workspace["findings"].read_text().splitlines()
        assert lines[0].startswith("row,attribute,observed")

    def test_audit_prints_ranked_findings(self, workspace, capsys):
        _generate(workspace)
        main(
            [
                "pollute",
                "--schema",
                str(workspace["schema"]),
                "--input",
                str(workspace["clean"]),
                "--output",
                str(workspace["dirty"]),
            ]
        )
        main(
            [
                "fit",
                "--schema",
                str(workspace["schema"]),
                "--input",
                str(workspace["dirty"]),
                "--model-out",
                str(workspace["model"]),
            ]
        )
        capsys.readouterr()
        main(
            [
                "audit",
                "--model",
                str(workspace["model"]),
                "--input",
                str(workspace["dirty"]),
                "--top",
                "2",
            ]
        )
        output = capsys.readouterr().out
        assert "audited" in output

    def test_generate_with_custom_rules(self, workspace, tmp_path, capsys):
        # author a schema + rule file by hand, generate against them
        assert main(["schema", "--kind", "quis", "--out", str(workspace["schema"])]) == 0
        rules_file = tmp_path / "rules.txt"
        rules_file.write_text(
            "# QUIS dependencies (paper sec. 6.2)\n"
            "BRV = '404' -> GBM = '901'\n"
            "KBM = '01' ∧ GBM = '901' → BRV = '501'\n"
        )
        assert (
            main(
                [
                    "generate",
                    "--records",
                    "200",
                    "--schema",
                    str(workspace["schema"]),
                    "--rules-file",
                    str(rules_file),
                    "--out",
                    str(workspace["clean"]),
                ]
            )
            == 0
        )
        assert "over 2 rules" in capsys.readouterr().out
        # the generated data satisfies the hand-written rules
        from repro.logic.parse import parse_rules
        from repro.schema.serialize import schema_from_dict

        schema = schema_from_dict(json.loads(workspace["schema"].read_text()))
        rules = parse_rules(rules_file.read_text(), schema)
        from repro.schema import read_csv

        table = read_csv(schema, workspace["clean"])
        for record in table.records():
            assert all(rule.satisfied_by(record) for rule in rules)

    def test_generate_schema_without_rules_rejected(self, workspace):
        with pytest.raises(SystemExit):
            main(
                [
                    "generate",
                    "--schema",
                    str(workspace["schema"]),
                    "--out",
                    str(workspace["clean"]),
                ]
            )

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])

    def test_missing_required_argument(self):
        with pytest.raises(SystemExit):
            main(["fit", "--schema", "x.json"])


def _fitted_workspace(workspace):
    """generate → pollute → fit, leaving a model + dirty CSV behind."""
    _generate(workspace)
    assert (
        main(
            [
                "pollute",
                "--schema",
                str(workspace["schema"]),
                "--input",
                str(workspace["clean"]),
                "--output",
                str(workspace["dirty"]),
            ]
        )
        == 0
    )
    assert (
        main(
            [
                "fit",
                "--schema",
                str(workspace["schema"]),
                "--input",
                str(workspace["dirty"]),
                "--model-out",
                str(workspace["model"]),
            ]
        )
        == 0
    )


class TestCliPolish:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_corrupt_model_gives_clear_error(self, tmp_path, workspace):
        _generate(workspace)
        bad = tmp_path / "bad_model.json"
        bad.write_text("{ this is not json")
        with pytest.raises(SystemExit) as excinfo:
            main(["audit", "--model", str(bad), "--input", str(workspace["clean"])])
        assert "not a valid auditor model" in str(excinfo.value)

    def test_wrong_json_model_gives_clear_error(self, tmp_path, workspace):
        _generate(workspace)
        bad = tmp_path / "bad_model.json"
        bad.write_text('{"format": "repro-auditor-v1"}')
        with pytest.raises(SystemExit) as excinfo:
            main(["audit", "--model", str(bad), "--input", str(workspace["clean"])])
        assert "not a valid auditor model" in str(excinfo.value)

    def test_missing_model_gives_clear_error(self, tmp_path, workspace):
        _generate(workspace)
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "audit",
                    "--model",
                    str(tmp_path / "nope.json"),
                    "--input",
                    str(workspace["clean"]),
                ]
            )
        assert "cannot read model file" in str(excinfo.value)

    def test_audit_jsonl_to_stdout(self, workspace, capsys):
        _fitted_workspace(workspace)
        capsys.readouterr()
        assert (
            main(
                [
                    "audit",
                    "--model",
                    str(workspace["model"]),
                    "--input",
                    str(workspace["dirty"]),
                    "--format",
                    "jsonl",
                ]
            )
            == 0
        )
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert lines, "expected at least one JSONL finding"
        for line in lines:
            record = json.loads(line)
            assert {"row", "attribute", "observed", "expected", "confidence"} <= set(
                record
            )

    def test_audit_jsonl_findings_file(self, workspace, tmp_path):
        _fitted_workspace(workspace)
        out = tmp_path / "findings.jsonl"
        assert (
            main(
                [
                    "audit",
                    "--model",
                    str(workspace["model"]),
                    "--input",
                    str(workspace["dirty"]),
                    "--format",
                    "jsonl",
                    "--findings-out",
                    str(out),
                ]
            )
            == 0
        )
        lines = out.read_text().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_audit_chunked_equals_whole(self, workspace, tmp_path, capsys):
        _fitted_workspace(workspace)
        whole_out = tmp_path / "whole.csv"
        chunked_out = tmp_path / "chunked.csv"
        base = [
            "audit",
            "--model",
            str(workspace["model"]),
            "--input",
            str(workspace["dirty"]),
        ]
        assert main(base + ["--findings-out", str(whole_out)]) == 0
        assert (
            main(base + ["--chunk-size", "100", "--findings-out", str(chunked_out)])
            == 0
        )
        assert "chunk 1:" in capsys.readouterr().out
        assert chunked_out.read_text() == whole_out.read_text()

    def test_audit_invalid_chunk_size(self, workspace):
        _fitted_workspace(workspace)
        with pytest.raises(SystemExit):
            main(
                [
                    "audit",
                    "--model",
                    str(workspace["model"]),
                    "--input",
                    str(workspace["dirty"]),
                    "--chunk-size",
                    "0",
                ]
            )


class TestStorageBackends:
    """The CLI speaks every registered format on its table arguments."""

    def test_sqlite_audit_equals_csv_audit(self, workspace, tmp_path):
        _fitted_workspace(workspace)
        # load the dirty CSV into a SQLite warehouse table, byte-for-byte
        from repro.io import read_table, write_table
        from repro.schema.serialize import schema_from_dict

        schema = schema_from_dict(json.loads(workspace["schema"].read_text()))
        dirty = read_table(schema, str(workspace["dirty"]))
        warehouse = tmp_path / "warehouse.db"
        write_table(dirty, warehouse, table="loads")

        csv_findings = tmp_path / "from_csv.csv"
        db_findings = tmp_path / "from_db.csv"
        base = ["audit", "--model", str(workspace["model"])]
        assert (
            main(base + ["--input", str(workspace["dirty"]), "--findings-out", str(csv_findings)])
            == 0
        )
        assert (
            main(
                base
                + [
                    "--input",
                    f"sqlite:///{warehouse}?table=loads",
                    "--jobs",
                    "2",
                    "--chunk-size",
                    "128",
                    "--findings-out",
                    str(db_findings),
                ]
            )
            == 0
        )
        assert db_findings.read_bytes() == csv_findings.read_bytes()

    def test_pipeline_through_jsonl(self, workspace, tmp_path, capsys):
        """pollute → fit → evaluate entirely over JSONL tables (mixed
        with the CSV clean table in evaluate)."""
        _generate(workspace)
        dirty = tmp_path / "dirty.jsonl"
        assert (
            main(
                [
                    "pollute",
                    "--schema",
                    str(workspace["schema"]),
                    "--input",
                    str(workspace["clean"]),
                    "--output",
                    str(dirty),
                    "--log-out",
                    str(workspace["log"]),
                ]
            )
            == 0
        )
        assert json.loads(dirty.read_text().splitlines()[0])
        assert (
            main(
                [
                    "fit",
                    "--schema",
                    str(workspace["schema"]),
                    "--input",
                    str(dirty),
                    "--model-out",
                    str(workspace["model"]),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "evaluate",
                    "--schema",
                    str(workspace["schema"]),
                    "--clean",
                    str(workspace["clean"]),
                    "--dirty",
                    str(dirty),
                    "--log",
                    str(workspace["log"]),
                    "--model",
                    str(workspace["model"]),
                ]
            )
            == 0
        )
        assert "sensitivity=" in capsys.readouterr().out

    def test_generate_to_sqlite(self, workspace, tmp_path, capsys):
        out = tmp_path / "clean.db"
        assert (
            main(
                [
                    "generate",
                    "--records",
                    "120",
                    "--rules",
                    "10",
                    "--out",
                    str(out),
                    "--schema-out",
                    str(workspace["schema"]),
                ]
            )
            == 0
        )
        import sqlite3

        tables = sqlite3.connect(out).execute(
            "SELECT name FROM sqlite_master WHERE type='table'"
        ).fetchall()
        assert ("data",) in tables

    def test_output_format_override_beats_extension(self, workspace, tmp_path):
        _generate(workspace)
        out = tmp_path / "dirty.dat"  # unknown extension
        assert (
            main(
                [
                    "pollute",
                    "--schema",
                    str(workspace["schema"]),
                    "--input",
                    str(workspace["clean"]),
                    "--output",
                    str(out),
                    "--output-format",
                    "jsonl",
                    "--input-format",
                    "csv",
                ]
            )
            == 0
        )
        assert json.loads(out.read_text().splitlines()[0])

    def test_null_marker_threaded_through_audit(self, workspace, tmp_path, capsys):
        _fitted_workspace(workspace)
        # rewrite the dirty table with an explicit null marker
        from repro.io import read_table, write_table
        from repro.schema.serialize import schema_from_dict

        schema = schema_from_dict(json.loads(workspace["schema"].read_text()))
        dirty = read_table(schema, str(workspace["dirty"]))
        marked = tmp_path / "marked.csv"
        write_table(dirty, marked, null_marker="\\N")
        plain_out = tmp_path / "plain.csv"
        marked_out = tmp_path / "marked_findings.csv"
        base = ["audit", "--model", str(workspace["model"])]
        assert (
            main(base + ["--input", str(workspace["dirty"]), "--findings-out", str(plain_out)])
            == 0
        )
        assert (
            main(
                base
                + [
                    "--input",
                    str(marked),
                    "--null-marker",
                    "\\N",
                    "--findings-out",
                    str(marked_out),
                ]
            )
            == 0
        )
        assert marked_out.read_bytes() == plain_out.read_bytes()

    def test_findings_out_jsonl_inferred_from_extension(self, workspace, tmp_path):
        _fitted_workspace(workspace)
        out = tmp_path / "findings.jsonl"
        assert (
            main(
                [
                    "audit",
                    "--model",
                    str(workspace["model"]),
                    "--input",
                    str(workspace["dirty"]),
                    "--findings-out",
                    str(out),
                ]
            )
            == 0
        )
        for line in out.read_text().splitlines():
            record = json.loads(line)
            assert {"row", "attribute", "observed", "expected", "confidence"} <= set(
                record
            )

    def test_findings_out_to_sqlite(self, workspace, tmp_path):
        _fitted_workspace(workspace)
        out = tmp_path / "findings.db"
        assert (
            main(
                [
                    "audit",
                    "--model",
                    str(workspace["model"]),
                    "--input",
                    str(workspace["dirty"]),
                    "--findings-out",
                    str(out),
                ]
            )
            == 0
        )
        import sqlite3

        rows = sqlite3.connect(out).execute(
            "SELECT row, attribute, confidence FROM data"
        ).fetchall()
        assert rows, "expected findings rows in the SQLite sink"

    def test_explicit_format_csv_without_findings_out_still_valid(
        self, workspace, capsys
    ):
        """Spelling out the historical default must keep working."""
        _fitted_workspace(workspace)
        capsys.readouterr()
        assert (
            main(
                [
                    "audit",
                    "--model",
                    str(workspace["model"]),
                    "--input",
                    str(workspace["dirty"]),
                    "--format",
                    "csv",
                ]
            )
            == 0
        )
        assert "audited" in capsys.readouterr().out

    def test_non_stdout_format_without_findings_out_rejected(self, workspace):
        _fitted_workspace(workspace)
        with pytest.raises(SystemExit, match="needs --findings-out"):
            main(
                [
                    "audit",
                    "--model",
                    str(workspace["model"]),
                    "--input",
                    str(workspace["dirty"]),
                    "--format",
                    "sqlite",
                ]
            )


class TestModelRegistryCli:
    """The registry-facing commands: fit --register, audit by reference,
    and the models list/show/tag/rm family."""

    @pytest.fixture(autouse=True)
    def _no_registry_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_REGISTRY", raising=False)

    def _register(self, workspace, registry, extra=()):
        return main(
            [
                "fit",
                "--schema",
                str(workspace["schema"]),
                "--input",
                str(workspace["dirty"]),
                "--register",
                "loads",
                "--registry",
                str(registry),
            ]
            + list(extra)
        )

    def test_fit_without_a_destination_rejected(self, workspace):
        _generate(workspace)
        with pytest.raises(SystemExit, match="neither destination"):
            main(
                [
                    "fit",
                    "--schema",
                    str(workspace["schema"]),
                    "--input",
                    str(workspace["clean"]),
                ]
            )

    def test_register_records_provenance(self, workspace, tmp_path, capsys):
        _fitted_workspace(workspace)
        registry = tmp_path / "registry"
        assert self._register(workspace, registry) == 0
        assert "registered loads@v1" in capsys.readouterr().out
        assert main(["models", "--registry", str(registry), "show", "loads@v1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ref"] == "loads@v1"
        provenance = payload["provenance"]
        assert provenance["source"] == str(workspace["dirty"])
        assert provenance["source_format"] == "csv"
        assert provenance["schema_hash"] and provenance["created_at"]
        assert provenance["n_rows"] >= 600  # pollution may duplicate rows
        assert provenance["config"] == {
            "min_error_confidence": 0.8,
            "fit_n_jobs": 1,
            "fit_path": "columns",
            "io_path": "auto",
        }

    def test_models_list_tag_rm(self, workspace, tmp_path, capsys):
        _fitted_workspace(workspace)
        registry = tmp_path / "registry"
        assert self._register(workspace, registry) == 0
        assert self._register(workspace, registry) == 0  # → loads@v2
        assert main(["models", "--registry", str(registry), "tag", "loads@v1", "prod"]) == 0
        capsys.readouterr()
        assert main(["models", "--registry", str(registry), "list"]) == 0
        listing = capsys.readouterr().out
        assert "loads" in listing and "latest→v2" in listing and "prod→v1" in listing
        assert main(["models", "--registry", str(registry), "rm", "loads@v2"]) == 0
        capsys.readouterr()
        # the tag pin survives the rm; latest falls back to the survivor
        assert main(["models", "--registry", str(registry), "show", "loads@prod"]) == 0
        assert json.loads(capsys.readouterr().out)["version"] == 1
        with pytest.raises(SystemExit, match="error: cannot resolve"):
            main(["models", "--registry", str(registry), "show", "loads@v2"])

    def test_audit_by_reference_matches_model_file(self, workspace, tmp_path, capsys):
        """The acceptance bar: `--model loads@latest --registry R` must be
        byte-identical to `--model model.json` on the same input."""
        _fitted_workspace(workspace)
        registry = tmp_path / "registry"
        assert self._register(workspace, registry) == 0

        def audit_jsonl(model, extra=()):
            capsys.readouterr()
            assert (
                main(
                    [
                        "audit",
                        "--model",
                        str(model),
                        "--input",
                        str(workspace["dirty"]),
                        "--format",
                        "jsonl",
                    ]
                    + list(extra)
                )
                == 0
            )
            return capsys.readouterr().out

        baseline = audit_jsonl(workspace["model"])
        assert baseline
        by_ref = audit_jsonl("loads@latest", ["--registry", str(registry)])
        assert by_ref == baseline

    def test_registry_env_var_fallback(self, workspace, tmp_path, monkeypatch, capsys):
        _fitted_workspace(workspace)
        monkeypatch.setenv("REPRO_REGISTRY", str(tmp_path / "registry"))
        assert (
            main(
                [
                    "fit",
                    "--schema",
                    str(workspace["schema"]),
                    "--input",
                    str(workspace["dirty"]),
                    "--register",
                    "loads",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["models", "list"]) == 0
        assert "loads" in capsys.readouterr().out

    def test_registry_commands_without_registry_rejected(self):
        with pytest.raises(SystemExit, match=r"\$REPRO_REGISTRY"):
            main(["models", "list"])

    def test_missing_reference_gives_clear_error(self, workspace, tmp_path):
        _fitted_workspace(workspace)
        with pytest.raises(SystemExit, match="error: no model named"):
            main(
                [
                    "audit",
                    "--model",
                    "ghost@v1",
                    "--registry",
                    str(tmp_path / "registry"),
                    "--input",
                    str(workspace["dirty"]),
                ]
            )


class TestInterruptExits:
    """Interactive failure modes must exit cleanly: Ctrl-C → 130,
    a consumer closing the pipe early → 0, never a traceback."""

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "schema", interrupted)
        assert main(["schema", "--kind", "base", "--out", "/dev/null"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_broken_pipe_exits_0(self, monkeypatch, capsys):
        import repro.cli as cli

        def pipe_gone(args):
            raise BrokenPipeError

        monkeypatch.setitem(cli._COMMANDS, "schema", pipe_gone)
        assert main(["schema", "--kind", "base", "--out", "/dev/null"]) == 0

    def test_shell_pipeline_truncation_is_clean(self, workspace, tmp_path):
        """`repro audit … --format jsonl | head -1` must leave exit 0 on
        the repro side of the pipe (pipefail makes a nonzero exit fatal)."""
        import os
        import subprocess
        import sys

        _fitted_workspace(workspace)
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        command = (
            "set -o pipefail; "
            f"{sys.executable} -m repro audit --model {workspace['model']} "
            f"--input {workspace['dirty']} --format jsonl | head -n 1"
        )
        proc = subprocess.run(
            ["bash", "-c", command],
            cwd=repo,
            env=dict(os.environ, PYTHONPATH="src"),
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.count("\n") == 1  # head got its line
        assert "Traceback" not in proc.stderr


class TestMonitorCli:
    """`repro monitor`: stdout carries exactly the findings JSONL, the
    summary rides on stderr, resume continues byte-identically, and
    `--refit auto` moves `latest` in the registry."""

    @pytest.fixture
    def stand(self, tmp_path):
        import random

        from repro.core import AuditorConfig, AuditSession
        from repro.io import open_sink
        from repro.registry import ModelRegistry
        from repro.schema import Schema, Table, nominal, numeric

        def build(n, seed, error_rate):
            rng = random.Random(seed)
            rule = {"a": "x", "b": "y", "c": "z"}
            rows = []
            for _ in range(n):
                a = rng.choice(["a", "b", "c"])
                b = (
                    rule[a]
                    if rng.random() > error_rate
                    else rng.choice(["x", "y", "z"])
                )
                rows.append([a, b, rng.randint(0, 100)])
            schema = Schema(
                [
                    nominal("A", ["a", "b", "c"]),
                    nominal("B", ["x", "y", "z"]),
                    numeric("N", 0, 100, integer=True),
                ]
            )
            return Table(schema, rows)

        train = build(1200, seed=21, error_rate=0.02)
        stream = build(768, seed=4, error_rate=0.2)
        session = AuditSession(
            train.schema, AuditorConfig(min_error_confidence=0.8)
        ).fit(train)
        model = tmp_path / "model.json"
        session.save(model)
        registry_dir = tmp_path / "registry"
        session.save_to_registry(ModelRegistry(registry_dir), "loads")
        source = tmp_path / "stream.jsonl"
        with open_sink(stream.schema, source) as sink:
            sink.write(stream)
        # a stream whose error rate steps up mid-way: the drift scenario
        shifted = Table(
            stream.schema,
            build(1024, seed=31, error_rate=0.02).rows
            + build(1024, seed=32, error_rate=0.4).rows,
        )
        drifting = tmp_path / "drifting.jsonl"
        with open_sink(shifted.schema, drifting) as sink:
            sink.write(shifted)
        return {
            "dir": tmp_path,
            "build": build,
            "model": model,
            "registry": registry_dir,
            "source": source,
            "drifting": drifting,
        }

    def test_catchup_stdout_is_exactly_the_findings_file(self, stand, capsys):
        assert (
            main(
                [
                    "monitor",
                    str(stand["source"]),
                    "--model",
                    str(stand["model"]),
                    "--window-rows",
                    "128",
                ]
            )
            == 0
        )
        out, err = capsys.readouterr()
        findings_file = stand["dir"] / "stream.jsonl.findings.jsonl"
        assert out == findings_file.read_text()
        assert "monitored 768 rows in 6 windows" in err
        # the watermark landed next to the findings by default
        assert (stand["dir"] / "stream.jsonl.findings.jsonl.state").exists()

    def test_ranked_out_matches_oneshot_audit(self, stand, capsys):
        ranked = stand["dir"] / "ranked.jsonl"
        assert (
            main(
                [
                    "monitor",
                    str(stand["source"]),
                    "--model",
                    str(stand["model"]),
                    "--window-rows",
                    "128",
                    "--ranked-out",
                    str(ranked),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "audit",
                    "--model",
                    str(stand["model"]),
                    "--input",
                    str(stand["source"]),
                    "--format",
                    "jsonl",
                ]
            )
            == 0
        )
        oneshot = capsys.readouterr().out
        assert ranked.read_text() == oneshot

    def test_resume_after_append_is_byte_identical(self, stand, capsys):
        from repro.io import open_sink

        lines = stand["source"].read_text().splitlines(keepends=True)
        grow = stand["dir"] / "grow.jsonl"
        grow.write_text("".join(lines[:512]))  # 4 whole 128-row windows
        run = [
            "monitor",
            str(grow),
            "--model",
            str(stand["model"]),
            "--window-rows",
            "128",
        ]
        assert main(run) == 0
        first_err = capsys.readouterr().err
        assert "monitored 512 rows in 4 windows" in first_err
        with open(grow, "a") as handle:
            handle.write("".join(lines[512:]))
        assert main(run) == 0
        second_err = capsys.readouterr().err
        assert "monitored 768 rows in 6 windows" in second_err  # cumulative

        # a fresh, uninterrupted run over the full stream: same bytes
        fresh = stand["dir"] / "fresh.jsonl"
        fresh.write_text("".join(lines))
        assert (
            main(
                [
                    "monitor",
                    str(fresh),
                    "--model",
                    str(stand["model"]),
                    "--window-rows",
                    "128",
                ]
            )
            == 0
        )
        assert (stand["dir"] / "grow.jsonl.findings.jsonl").read_bytes() == (
            stand["dir"] / "fresh.jsonl.findings.jsonl"
        ).read_bytes()

    def test_auto_refit_moves_latest_in_the_registry(self, stand, capsys):
        from repro.registry import ModelRegistry

        assert (
            main(
                [
                    "monitor",
                    str(stand["drifting"]),
                    "--model",
                    "loads@latest",
                    "--registry",
                    str(stand["registry"]),
                    "--window-rows",
                    "128",
                    "--refit",
                    "auto",
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        registry = ModelRegistry(stand["registry"])
        assert registry.tags("loads")["latest"] == 2
        version = registry.resolve("loads@v2")
        assert version.provenance.extra["trigger"] == "drift"
        assert "monitored 2048 rows" in err

    def test_sqlite_source_requires_findings_out(self, stand):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "monitor",
                    f"sqlite:///{stand['dir']}/s.db",
                    "--model",
                    str(stand["model"]),
                ]
            )
        assert "--findings-out is required" in str(excinfo.value)

    def test_unknown_registry_model_gives_clear_error(self, stand):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "monitor",
                    str(stand["source"]),
                    "--model",
                    "ghost@v1",
                    "--registry",
                    str(stand["registry"]),
                ]
            )
        assert "error" in str(excinfo.value)

    def test_follow_mode_sigterm_exits_0(self, stand):
        """The deployment shape: a producer appends while `repro monitor
        --follow` tails; SIGTERM must exit 0 with drift logged on stderr
        and no traceback."""
        import os
        import signal
        import subprocess
        import sys
        import time

        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        lines = stand["drifting"].read_text().splitlines(keepends=True)
        grow = stand["dir"] / "follow.jsonl"
        grow.write_text("".join(lines[:1024]))  # the pre-step regime
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "monitor",
                str(grow),
                "--model",
                str(stand["model"]),
                "--follow",
                "--poll-interval",
                "0.1",
                "--window-rows",
                "128",
            ],
            cwd=repo,
            env=dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1"),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            with open(grow, "a") as handle:  # the producer: polluted tail
                handle.write("".join(lines[1024:]))
            deadline = time.monotonic() + 30
            state = stand["dir"] / "follow.jsonl.findings.jsonl.state"
            while time.monotonic() < deadline:
                if state.exists() and b'"rows": 2048' in state.read_bytes():
                    break
                time.sleep(0.2)
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=15)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, err
        assert "Traceback" not in err
        assert "drift detected" in err  # the step change was flagged
        assert out.count("\n") == sum(1 for l in out.splitlines())  # JSONL only
