"""Rule-compliant artificial data generation (sec. 4.1.4).

*"Given a schema for the target table and a rule set, a number of records
has to be created that follow this rule set. This is done by selecting
values for each attribute according to independent probability
distributions and successively adjusting these guesses by rules that are
violated."*

The generator:

1. draws a start record — nominal attributes covered by the optional
   Bayesian network are sampled jointly, everything else independently
   from its per-attribute start distribution (default uniform);
2. repairs the record: while some rule is violated, an adjustment is
   computed with the *current record as base* (minimal change, see
   :func:`repro.logic.find_model`) and merged into the record. The
   adjustment usually *satisfies the consequence*; with a configurable
   probability it *falsifies the premise* instead. The second strategy is
   essential: Def. 6's pairwise naturalness check intentionally does not
   exclude rule sets in which two rules with incomparable premises co-fire
   on one record with contradictory consequences (the paper notes the full
   entailment check would be too expensive) — such conflicts can only be
   resolved by deactivating one premise;
3. verifies the final record against all rules; if the repair loop fails
   to converge the record is redrawn from scratch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.generator.bayes import BayesianNetwork
from repro.generator.distributions import Distribution, Uniform
from repro.logic.dnf import DnfExplosionError
from repro.logic.formulas import conjoin
from repro.logic.negation import negate
from repro.logic.rules import Rule
from repro.logic.satisfiability import find_model
from repro.schema.schema import Schema
from repro.schema.table import Table
from repro.schema.types import Value

__all__ = ["GenerationError", "GenerationStats", "TestDataGenerator"]


class GenerationError(RuntimeError):
    """Raised when a record cannot be made rule-compliant."""


@dataclass
class GenerationStats:
    """Bookkeeping of the repair loop (useful for generator diagnostics)."""

    records: int = 0
    repairs: int = 0
    resamples: int = 0

    def reset(self) -> None:
        self.records = self.repairs = self.resamples = 0


class TestDataGenerator:
    """The paper's rule-pattern-based artificial test data generator.

    (The class name follows the paper's "test data generator"; the
    ``__test__`` marker below tells pytest it is not a test case.)

    Parameters
    ----------
    schema:
        Target relation schema.
    rules:
        A (preferably natural) TDG rule set the data must comply with.
    distributions:
        Per-attribute start distributions (default: uniform). Attributes
        covered by *bayes_net* ignore their entry here.
    bayes_net:
        Optional multivariate start distribution over a subset of the
        nominal attributes.
    null_probabilities:
        Per-attribute probability of starting with a null value (applied
        before rule repair; repairs may overwrite nulls again).
    max_repair_passes:
        Repair iterations per record before redrawing it.
    max_record_attempts:
        Full redraws per record before giving up with
        :class:`GenerationError`.
    premise_falsification_probability:
        Retained knob (0–1) biasing how eagerly the repair loop falls back
        to premise falsification when joint consequence repair stalls.
    """

    __test__ = False  # not a pytest case despite the Test* name

    def __init__(
        self,
        schema: Schema,
        rules: Sequence[Rule],
        *,
        distributions: Optional[Mapping[str, Distribution]] = None,
        bayes_net: Optional[BayesianNetwork] = None,
        null_probabilities: Optional[Mapping[str, float]] = None,
        max_repair_passes: int = 24,
        max_record_attempts: int = 20,
        premise_falsification_probability: float = 0.2,
    ):
        self.schema = schema
        self.rules = list(rules)
        for rule in self.rules:
            rule.validate(schema)
        self.distributions = dict(distributions or {})
        for name in self.distributions:
            schema.attribute(name)
        self.bayes_net = bayes_net
        self.null_probabilities = dict(null_probabilities or {})
        for name, probability in self.null_probabilities.items():
            schema.attribute(name)
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"null probability of {name!r} must lie in [0, 1]")
        if max_repair_passes < 1 or max_record_attempts < 1:
            raise ValueError("repair/attempt limits must be positive")
        if not 0.0 <= premise_falsification_probability <= 1.0:
            raise ValueError("premise_falsification_probability must lie in [0, 1]")
        self.max_repair_passes = max_repair_passes
        self.max_record_attempts = max_record_attempts
        self.premise_falsification_probability = premise_falsification_probability
        self.stats = GenerationStats()
        self._default_distribution = Uniform()

    # -- start records ---------------------------------------------------------

    def _start_record(self, rng: random.Random) -> dict[str, Value]:
        record: dict[str, Value] = {}
        if self.bayes_net is not None:
            record.update(self.bayes_net.sample(rng))
        for attribute in self.schema.attributes:
            if attribute.name in record:
                continue
            null_probability = self.null_probabilities.get(attribute.name, 0.0)
            if attribute.nullable and null_probability and rng.random() < null_probability:
                record[attribute.name] = None
                continue
            distribution = self.distributions.get(
                attribute.name, self._default_distribution
            )
            record[attribute.name] = distribution.sample(attribute, rng)
        return record

    # -- repair loop ------------------------------------------------------------

    def _violations(self, record: Mapping[str, Value]) -> list[Rule]:
        return [rule for rule in self.rules if rule.violated_by(record)]

    def _repair(self, record: dict[str, Value], rng: random.Random) -> bool:
        """Adjust *record* in place until rule-compliant. True on success.

        Min-conflicts strategy: for a randomly chosen violated rule, both
        repair candidates — a model of the consequence and a model of the
        TDG-negated premise, each computed with the current record as base
        — are scored by the number of rule violations they would leave,
        and the better one is applied. This resolves consequence ping-pong
        between co-firing rules that pairwise naturalness cannot exclude.
        """
        for _ in range(self.max_repair_passes):
            violated = self._violations(record)
            if not violated:
                return True
            self.stats.repairs += 1
            # first choice: satisfy the consequences of ALL violated rules
            # jointly — solving them one by one ping-pongs when consequences
            # share attributes
            joint_model = self._joint_consequence_model(violated, record, rng)
            if joint_model is not None:
                trial = dict(record)
                trial.update(joint_model)
                if len(self._violations(trial)) < len(violated):
                    record.clear()
                    record.update(trial)
                    continue
            # joint consequences unsatisfiable (or unhelpful): deactivate a
            # random violated rule by falsifying its premise
            rule = violated[rng.randrange(len(violated))]
            premise_model = find_model(
                negate(rule.premise), self.schema, rng, base=record
            )
            if premise_model is None:
                if joint_model is None:
                    return False  # neither side repairable — redraw the record
                record.update(joint_model)
                continue
            record.update(premise_model)
        return not self._violations(record)

    def _joint_consequence_model(
        self,
        violated: Sequence[Rule],
        record: Mapping[str, Value],
        rng: random.Random,
    ) -> Optional[dict[str, Value]]:
        """A minimal-change model of the conjoined violated consequences."""
        try:
            target = conjoin([rule.consequence for rule in violated])
            return find_model(target, self.schema, rng, base=record)
        except DnfExplosionError:
            # pathological disjunction pile-up: fall back to one consequence
            rule = violated[rng.randrange(len(violated))]
            return find_model(rule.consequence, self.schema, rng, base=record)

    def generate_record(self, rng: random.Random) -> dict[str, Value]:
        """One record complying with every rule."""
        for _ in range(self.max_record_attempts):
            record = self._start_record(rng)
            if self._repair(record, rng):
                self.stats.records += 1
                return record
            self.stats.resamples += 1
        raise GenerationError(
            f"could not generate a rule-compliant record within "
            f"{self.max_record_attempts} attempts; the rule set may be "
            f"(pairwise-undetectably) inconsistent"
        )

    def generate(self, n_records: int, rng: random.Random) -> Table:
        """A table of *n_records* rule-compliant records."""
        if n_records < 0:
            raise ValueError("n_records must be non-negative")
        table = Table(self.schema)
        names = self.schema.names
        for _ in range(n_records):
            record = self.generate_record(rng)
            table.rows.append([record[name] for name in names])
        return table
