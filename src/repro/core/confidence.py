"""Error confidence — re-exported from :mod:`repro.mining.confidence`.

The primitives live in the mining layer because the adjusted tree grower
uses the expected error confidence during construction (sec. 5.4); the
public auditing API exposes them here, alongside the record-level
aggregation of Def. 8.
"""

from __future__ import annotations

from typing import Iterable

from repro.mining.confidence import (
    error_confidence,
    error_confidence_batch,
    error_confidence_from_counts,
    expected_error_confidence,
    min_instances_for_confidence,
)

__all__ = [
    "error_confidence",
    "error_confidence_batch",
    "error_confidence_from_counts",
    "expected_error_confidence",
    "min_instances_for_confidence",
    "record_error_confidence",
]


def record_error_confidence(classifier_confidences: Iterable[float]) -> float:
    """Def. 8: the overall error confidence of a record is the **maximum**
    of the error confidences w.r.t. the individual classifiers.

    (The paper explicitly rejects summing scores à la Hipp et al., because
    values prescribed by one violated rule might inhibit the applicability
    of another.)
    """
    return max(classifier_confidences, default=0.0)
