"""Continuous auditing: tail a growing table, audit incrementally,
detect drift, refit from the registry.

The paper embeds auditing inside warehouse *loading* — an ongoing
activity, not a batch job. This package makes that a first-class online
scenario on top of the batch engine:

* :mod:`repro.monitor.tail` — resumable readers of growing CSV/JSONL
  files (byte offsets, torn-tail safe) and SQLite tables (rowids);
* :mod:`repro.monitor.watermark` — durable exactly-once progress
  (atomic state file + findings-file truncation on resume);
* :mod:`repro.monitor.watcher` — the :class:`TableWatcher` engine and
  cumulative :class:`MonitorReport`;
* :mod:`repro.monitor.drift` — per-attribute finding-rate drift with
  Wilson intervals;
* :mod:`repro.monitor.refit` — drift responses, up to automatic refit
  registered to :mod:`repro.registry` with ``trigger=drift`` provenance.

Entry points: ``AuditSession.monitor(...)``, the ``repro monitor`` CLI
command, and the audit service's ``/monitors`` endpoints.
"""

from .drift import DriftConfig, DriftEvent, DriftTracker
from .refit import RefitPolicy, perform_refit
from .tail import (
    SqliteTailReader,
    TailReader,
    TextTailReader,
    open_tail,
    split_records,
)
from .watcher import MonitorReport, TableWatcher
from .watermark import Watermark, load_watermark, write_atomic

__all__ = [
    "DriftConfig",
    "DriftEvent",
    "DriftTracker",
    "MonitorReport",
    "RefitPolicy",
    "SqliteTailReader",
    "TableWatcher",
    "TailReader",
    "TextTailReader",
    "Watermark",
    "load_watermark",
    "open_tail",
    "perform_refit",
    "split_records",
    "write_atomic",
]
