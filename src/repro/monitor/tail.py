"""Tailing readers: resumable, append-aware views of a growing table.

The :mod:`repro.io` sources are single-pass — right for auditing a
finished load, wrong for a table that is still growing. A
:class:`TailReader` instead reads *from an offset*: every call to
:meth:`TailReader.read_new` returns the rows that became complete since
the given position, each paired with the offset just past it, so the
caller can persist exactly how far it has consumed (the watermark) and
resume there after a restart.

Offsets are **byte positions** for CSV/JSONL files and **rowids** for
SQLite tables. Text files are read in binary and split into records by
:func:`split_records`, which only ever cuts at a newline that really
ends a record — it tracks CSV quote parity, so a quoted field
containing ``\\n`` never tears a row. Everything after the last record
boundary (a half-written trailing line, a line still missing its
newline, an unclosed quote) is simply **not consumed yet**: the next
poll re-reads it, by which time the producer has finished the write.
That is the whole torn-write story — a monitor polling a file mid-append
never errors on the partial tail and never emits a row twice.

Parsing reuses the :mod:`repro.io` backends verbatim (the complete
records are fed through :class:`~repro.io.csv_backend.CsvTableSource` /
:class:`~repro.io.jsonl_backend.JsonlTableSource`), so a tailed read
applies exactly the schema-driven coercion and strictness of a batch
read. SQLite needs none of the byte games: committed rows appear
atomically, and ``WHERE rowid > ?`` is the resume position.
"""

from __future__ import annotations

import io
import sqlite3
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.io.csv_backend import CsvTableSource
from repro.io.jsonl_backend import JsonlTableSource
from repro.io.registry import detect_format
from repro.io.sqlite_backend import (
    _column_names,
    _from_sql,
    _quote,
    _user_tables,
    parse_sqlite_url,
)
from repro.schema.schema import Schema
from repro.schema.types import Value

__all__ = [
    "TailedRow",
    "TailReader",
    "TextTailReader",
    "SqliteTailReader",
    "split_records",
    "open_tail",
]

#: one newly-complete stored row: (schema-ordered cells, offset just past it)
TailedRow = tuple[list[Value], int]


def split_records(data: bytes, *, quoted: bool = False) -> tuple[list[bytes], int]:
    """Split appended bytes into complete newline-terminated records.

    Returns ``(records, consumed)``: each record includes its
    terminating newline, and ``consumed`` is the total byte length of
    the complete records — everything past it is a partial tail the
    caller must re-read later. With ``quoted=True`` a ``"`` toggles CSV
    quote state, so newlines inside quoted fields never end a record
    (doubled quotes toggle twice and cancel out).
    """
    records: list[bytes] = []
    start = 0
    in_quote = False
    for position, byte in enumerate(data):
        if quoted and byte == 0x22:  # '"'
            in_quote = not in_quote
        elif byte == 0x0A and not in_quote:  # '\n'
            records.append(data[start : position + 1])
            start = position + 1
    return records, start


class TailReader(ABC):
    """A positioned, restartable reader of one growing table."""

    #: what the offsets mean, for status displays ("bytes" or "rowid")
    offset_kind: str = "bytes"

    def __init__(self, schema: Schema, location: Union[str, Path]):
        self.schema = schema
        self.location = location

    @abstractmethod
    def start_offset(self) -> int:
        """The offset a fresh monitor starts at (0, or past a CSV header)."""

    @abstractmethod
    def read_new(self, offset: int) -> list[TailedRow]:
        """All rows that became complete after *offset*, in stream order.

        Each row carries the offset just past it; persisting that offset
        and calling ``read_new`` with it again later continues exactly
        where this batch ended, with no row duplicated or skipped.
        """

    def close(self) -> None:
        """Release any underlying handle (idempotent)."""

    def __enter__(self) -> "TailReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self.location)!r})"


class TextTailReader(TailReader):
    """Byte-offset tailing of a CSV or JSONL file (see module docstring)."""

    def __init__(
        self,
        schema: Schema,
        path: Union[str, Path],
        *,
        format: str,
        null_marker: str = "",
    ):
        super().__init__(schema, path)
        if format not in ("csv", "jsonl"):
            raise ValueError(f"cannot tail format {format!r} (only csv and jsonl)")
        self.format = format
        self.null_marker = null_marker
        self._header_text = ""
        self._data_start = 0
        if format == "csv":
            with open(path, "rb") as handle:
                head = handle.read()
            records, consumed = split_records(head, quoted=True)
            if not records:
                raise ValueError(
                    f"{path} holds no complete CSV header line yet "
                    f"(the monitor needs the header before it can tail data rows)"
                )
            self._header_text = records[0].decode("utf-8")
            self._data_start = len(records[0])
            # validate the header once, eagerly — a wrong header must
            # surface at construction, not at the first data row
            CsvTableSource(
                schema, io.StringIO(self._header_text), null_marker=null_marker
            ).close()
        else:
            # existence check with the open error naming the location
            with open(path, "rb"):
                pass

    def start_offset(self) -> int:
        return self._data_start

    def read_new(self, offset: int) -> list[TailedRow]:
        with open(self.location, "rb") as handle:
            handle.seek(offset)
            data = handle.read()
        records, _ = split_records(data, quoted=self.format == "csv")
        if not records:
            return []
        text = b"".join(records).decode("utf-8")
        if self.format == "csv":
            source = CsvTableSource(
                self.schema,
                io.StringIO(self._header_text + text),
                null_marker=self.null_marker,
            )
        else:
            source = JsonlTableSource(self.schema, io.StringIO(text))
        try:
            rows = list(source._iter_rows())
        except ValueError as exc:
            raise ValueError(
                f"while tailing {self.location} from byte {offset}: {exc}"
            ) from None
        finally:
            source.close()
        # pair each parsed row with the offset past its record; blank
        # JSONL lines parse to no row, so their bytes commit with the
        # following row (or stay unconsumed as the current tail)
        tailed: list[TailedRow] = []
        position = offset
        row_iter = iter(rows)
        for record in records:
            position += len(record)
            if self.format == "jsonl" and not record.strip():
                continue
            tailed.append((next(row_iter), position))
        return tailed


class SqliteTailReader(TailReader):
    """Rowid tailing of one SQLite table: ``WHERE rowid > ?`` is resume."""

    offset_kind = "rowid"

    def __init__(
        self,
        schema: Schema,
        database: Union[str, Path],
        *,
        table: Optional[str] = None,
    ):
        super().__init__(schema, database)
        path = Path(database)
        if not path.exists():
            raise FileNotFoundError(f"no such SQLite database: {database}")
        self._connection = sqlite3.connect(path)
        try:
            if table is None:
                tables = _user_tables(self._connection)
                if len(tables) != 1:
                    raise ValueError(
                        f"{database} holds {len(tables)} tables "
                        f"({tables!r}); select one with "
                        f"'sqlite:///{database}?table=NAME'"
                    )
                table = tables[0]
            self.table = table
            columns = _column_names(self._connection, table)
            if not columns:
                raise ValueError(f"{database} has no table named {table!r}")
            if set(columns) != set(schema.names):
                raise ValueError(
                    f"columns of table {table!r} {columns!r} do not match "
                    f"schema attributes {list(schema.names)!r}"
                )
        except Exception:
            self.close()
            raise

    def start_offset(self) -> int:
        return 0

    def read_new(self, offset: int) -> list[TailedRow]:
        names = self.schema.names
        converters = [
            lambda raw, kind=a.kind, integer=getattr(a.domain, "integer", False): (
                _from_sql(raw, kind, integer)
            )
            for a in self.schema.attributes
        ]
        select = "SELECT rowid, {} FROM {} WHERE rowid > ? ORDER BY rowid".format(
            ", ".join(_quote(name) for name in names), _quote(self.table)
        )
        tailed: list[TailedRow] = []
        for raw in self._connection.execute(select, (offset,)):
            rowid, raw_cells = raw[0], raw[1:]
            cells = []
            for name, converter, value in zip(names, converters, raw_cells):
                try:
                    cells.append(converter(value))
                except ValueError as exc:
                    raise ValueError(
                        f"rowid {rowid}, attribute {name!r}: {exc}"
                    ) from None
            tailed.append((cells, rowid))
        return tailed

    def close(self) -> None:
        self._connection.close()


def open_tail(
    schema: Schema,
    location: Union[str, Path],
    *,
    format: Optional[str] = None,
    null_marker: str = "",
) -> TailReader:
    """Open the right :class:`TailReader` for *location*.

    Formats follow the :mod:`repro.io` registry rules — ``sqlite:`` URIs
    (with their ``table=`` option) and the known extensions; only CSV,
    JSONL, and SQLite can be tailed (Parquet files are immutable
    containers, not append logs).
    """
    text = str(location)
    if text.startswith("sqlite:"):
        if format not in (None, "sqlite"):
            raise ValueError(
                f"{location!r} is a sqlite URI but format={format!r} was requested"
            )
        path, options = parse_sqlite_url(text)
        return SqliteTailReader(schema, path, table=options.get("table"))
    fmt = format or detect_format(location)
    if fmt == "sqlite":
        return SqliteTailReader(schema, location)
    if fmt in ("csv", "jsonl"):
        return TextTailReader(
            schema, location, format=fmt, null_marker=null_marker
        )
    raise ValueError(
        f"format {fmt!r} cannot be tailed (supported: csv, jsonl, sqlite)"
    )
