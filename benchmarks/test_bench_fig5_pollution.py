"""E3 / Figure 5 — influence of the pollution factor on sensitivity.

Paper: "the more corrupted the table is, the less valid rules that lead
to correct error identifications can be induced", with a marked drop near
factor 3 when the data gets too dirty for partitions to stay above the
minimal error confidence. Expected shape: decreasing in the factor.
"""

from repro.testenv import ExperimentConfig, format_series, sweep_pollution_factor

FACTOR_GRID = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0)
BASE = ExperimentConfig(n_records=6000, n_rules=100)


def test_fig5_sensitivity_vs_pollution_factor(benchmark, environment, record_table):
    points = benchmark.pedantic(
        lambda: sweep_pollution_factor(FACTOR_GRID, base=BASE, environment=environment),
        rounds=1,
        iterations=1,
    )
    table = format_series(
        "E3 / Figure 5 — sensitivity vs. pollution factor "
        "(6000 records, 100 rules, min confidence 80%)",
        "factor",
        points,
    )
    record_table("E3_fig5_pollution", table)

    sensitivities = [result.sensitivity for _, result in points]
    # cleaner data is easier to audit than heavily corrupted data
    assert sensitivities[0] > sensitivities[-1]
    # the heaviest corruption severely degrades rule induction
    assert sensitivities[-1] < max(sensitivities) * 0.8
