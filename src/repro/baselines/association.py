"""Association-rule data-quality mining — the Hipp et al. baseline.

Paper sec. 7: *"Hipp et al. use scalable algorithms for association rule
induction and define a scoring that rates deviations from these rules
based on the confidence of the violated rules. Unfortunately, association
rules cannot directly model dependencies between numerical attributes."*
And sec. 5.2 criticizes the scoring: *"Hipp adds the precision values of
all violated association rules. This addition is, strictly speaking, only
valid if all rules predict values for the same attributes."*

This module implements that approach faithfully so the benchmarks can
compare it against the paper's auditor:

* a from-scratch **Apriori** miner over ``attribute = value`` items
  (nominal attributes only — precisely the limitation the paper points
  out; ordered attributes can optionally be pre-discretized by the
  caller);
* association rules ``{items} → attribute = value`` filtered by minimum
  support and confidence;
* the **additive violation score**: a record's suspicion score is the sum
  of the confidences of all association rules it violates (premise
  satisfied, consequent contradicted) — which can exceed 1, the formal
  flaw the paper notes.
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.core.findings import AuditReport, Finding
from repro.schema.domain import NominalDomain
from repro.schema.schema import Schema
from repro.schema.table import Table
from repro.schema.types import Value

__all__ = ["AssociationRule", "AprioriMiner", "AssociationRuleAuditor"]

#: An item is one (attribute, value) pair.
Item = tuple[str, str]


@dataclass(frozen=True)
class AssociationRule:
    """``premise → consequent`` with its training support and confidence."""

    premise: frozenset[Item]
    consequent: Item
    support: int
    confidence: float

    def violated_by(self, items: Mapping[str, str]) -> bool:
        """Premise present, consequent attribute present with another value."""
        for attribute, value in self.premise:
            if items.get(attribute) != value:
                return False
        attribute, value = self.consequent
        observed = items.get(attribute)
        return observed is not None and observed != value

    def __str__(self) -> str:
        premise = " ∧ ".join(f"{a} = {v}" for a, v in sorted(self.premise))
        attribute, value = self.consequent
        return (
            f"{premise} → {attribute} = {value} "
            f"[support={self.support}, confidence={self.confidence:.3f}]"
        )


class AprioriMiner:
    """Level-wise frequent-itemset mining over nominal columns.

    Parameters
    ----------
    min_support:
        Minimal fraction of rows an itemset must occur in.
    min_confidence:
        Minimal rule confidence.
    max_itemset_size:
        Upper bound on frequent-itemset cardinality (rule premises get one
        item less).
    """

    def __init__(
        self,
        min_support: float = 0.05,
        min_confidence: float = 0.9,
        max_itemset_size: int = 3,
    ):
        if not 0.0 < min_support <= 1.0:
            raise ValueError("min_support must lie in (0, 1]")
        if not 0.0 < min_confidence <= 1.0:
            raise ValueError("min_confidence must lie in (0, 1]")
        if max_itemset_size < 2:
            raise ValueError("max_itemset_size must be at least 2")
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.max_itemset_size = max_itemset_size

    # -- transactions ---------------------------------------------------------

    @staticmethod
    def transactions_of(table: Table) -> list[dict[str, str]]:
        """One item dict per row, nominal attributes only, nulls skipped."""
        nominal_attrs = [
            a.name
            for a in table.schema.attributes
            if isinstance(a.domain, NominalDomain)
        ]
        transactions = []
        for row in table.records():
            items = {}
            for name in nominal_attrs:
                value = row[name]
                if isinstance(value, str):
                    items[name] = value
            transactions.append(items)
        return transactions

    # -- mining ---------------------------------------------------------------

    def frequent_itemsets(
        self, transactions: Sequence[Mapping[str, str]]
    ) -> dict[frozenset[Item], int]:
        """All frequent itemsets with their absolute supports."""
        n = len(transactions)
        if n == 0:
            return {}
        threshold = self.min_support * n
        # L1
        counts: dict[Item, int] = {}
        for items in transactions:
            for pair in items.items():
                counts[pair] = counts.get(pair, 0) + 1
        current = {
            frozenset((item,)): count
            for item, count in counts.items()
            if count >= threshold
        }
        frequent: dict[frozenset[Item], int] = dict(current)
        size = 1
        while current and size < self.max_itemset_size:
            size += 1
            candidates = self._candidates(list(current), size)
            if not candidates:
                break
            tallies = {candidate: 0 for candidate in candidates}
            for items in transactions:
                row_items = set(items.items())
                for candidate in candidates:
                    if candidate <= row_items:
                        tallies[candidate] += 1
            current = {
                candidate: count
                for candidate, count in tallies.items()
                if count >= threshold
            }
            frequent.update(current)
        return frequent

    def _candidates(
        self, previous: list[frozenset[Item]], size: int
    ) -> set[frozenset[Item]]:
        """Join step with the Apriori pruning property; itemsets may not
        contain two items of the same attribute."""
        previous_set = set(previous)
        candidates: set[frozenset[Item]] = set()
        for a, b in itertools.combinations(previous, 2):
            union = a | b
            if len(union) != size:
                continue
            attributes = [attribute for attribute, _ in union]
            if len(set(attributes)) != len(attributes):
                continue
            if all(
                frozenset(subset) in previous_set
                for subset in itertools.combinations(union, size - 1)
            ):
                candidates.add(union)
        return candidates

    def rules(
        self, transactions: Sequence[Mapping[str, str]]
    ) -> list[AssociationRule]:
        """Single-consequent association rules above the thresholds."""
        frequent = self.frequent_itemsets(transactions)
        rules: list[AssociationRule] = []
        for itemset, support in frequent.items():
            if len(itemset) < 2:
                continue
            for consequent in itemset:
                premise = itemset - {consequent}
                premise_support = frequent.get(premise)
                if not premise_support:
                    continue
                confidence = support / premise_support
                if confidence >= self.min_confidence:
                    rules.append(
                        AssociationRule(premise, consequent, support, confidence)
                    )
        rules.sort(key=lambda rule: (-rule.confidence, -rule.support))
        return rules


class AssociationRuleAuditor:
    """Hipp-style data quality mining: flag records by the summed
    confidence of their violated association rules.

    The interface mirrors :class:`repro.core.DataAuditor` (``fit`` /
    ``audit`` returning an :class:`~repro.core.findings.AuditReport`), so
    the test environment can evaluate both with the same metrics. A record
    is flagged when its (capped) score reaches ``min_score``.
    """

    def __init__(
        self,
        schema: Schema,
        *,
        miner: Optional[AprioriMiner] = None,
        min_score: float = 0.9,
    ):
        if not 0.0 < min_score:
            raise ValueError("min_score must be positive")
        self.schema = schema
        self.miner = miner or AprioriMiner()
        self.min_score = min_score
        self.rules: list[AssociationRule] = []
        self.fit_seconds = 0.0

    def fit(self, table: Table) -> "AssociationRuleAuditor":
        started = time.perf_counter()
        transactions = self.miner.transactions_of(table)
        self.rules = self.miner.rules(transactions)
        self.fit_seconds = time.perf_counter() - started
        return self

    def audit(self, table: Table) -> AuditReport:
        if not self.rules:
            raise RuntimeError("association auditor is not fitted (or found no rules)")
        transactions = self.miner.transactions_of(table)
        findings: list[Finding] = []
        record_confidence: list[float] = []
        for row_index, items in enumerate(transactions):
            score = 0.0
            per_attribute: dict[str, tuple[float, AssociationRule]] = {}
            for rule in self.rules:
                if rule.violated_by(items):
                    score += rule.confidence  # Hipp's additive scoring
                    attribute = rule.consequent[0]
                    best = per_attribute.get(attribute)
                    if best is None or rule.confidence > best[0]:
                        per_attribute[attribute] = (rule.confidence, rule)
            capped = min(score, 1.0)
            record_confidence.append(capped)
            if capped >= self.min_score:
                for attribute, (confidence, rule) in per_attribute.items():
                    findings.append(
                        Finding(
                            row=row_index,
                            attribute=attribute,
                            observed_label=str(items.get(attribute)),
                            observed_value=items.get(attribute),
                            predicted_label=rule.consequent[1],
                            confidence=min(confidence, 1.0),
                            support=float(rule.support),
                            proposal=rule.consequent[1],
                        )
                    )
        return AuditReport(
            table.n_rows, findings, record_confidence, self.min_score
        )
