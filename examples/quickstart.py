#!/usr/bin/env python3
"""Quickstart: the full paper pipeline in one page.

1. define a schema and a couple of domain rules,
2. generate rule-compliant artificial data (sec. 4.1),
3. corrupt it in a controlled, logged way (sec. 4.2),
4. induce structure and detect deviations (sec. 5),
5. evaluate sensitivity / specificity / correction quality against the
   ground truth (sec. 4.3).

Run with:  python examples/quickstart.py
"""

import random

from repro import (
    AuditorConfig,
    DataAuditor,
    PollutionPipeline,
    Rule,
    Schema,
    TestDataGenerator,
    default_polluters,
    evaluate_audit,
    nominal,
    numeric,
)
from repro.logic import And, Eq, Gt


def main() -> None:
    rng = random.Random(2003)

    # 1. a small product-catalogue-like relation with two dependencies
    schema = Schema(
        [
            nominal("SERIES", ["S1", "S2", "S3"]),
            nominal("ENGINE", ["E_A", "E_B", "E_C"]),
            nominal("PLANT", ["north", "south"]),
            numeric("POWER", 50, 400, integer=True),
        ]
    )
    rules = [
        Rule(Eq("SERIES", "S1"), Eq("ENGINE", "E_A")),
        Rule(Eq("SERIES", "S2"), Eq("ENGINE", "E_B")),
        Rule(Eq("SERIES", "S3"), Eq("ENGINE", "E_C")),
        Rule(And(Eq("SERIES", "S3"), Eq("PLANT", "north")), Gt("POWER", 200)),
    ]

    # 2. rule-compliant artificial data
    generator = TestDataGenerator(schema, rules)
    clean = generator.generate(4000, rng)
    print(f"generated {clean.n_rows} clean records")

    # 3. controlled corruption with ground-truth logging
    pipeline = PollutionPipeline(default_polluters(), factor=1.0)
    dirty, log = pipeline.apply(clean, rng)
    print(f"polluted: {log.n_cell_changes} cell changes, "
          f"{log.n_duplicated} duplicates, {log.n_deleted} deletions")

    # 4. the data auditing tool: one classifier per attribute
    auditor = DataAuditor(schema, AuditorConfig(min_error_confidence=0.8))
    auditor.fit(dirty)
    report = auditor.audit(dirty)
    print(f"\naudit: {report.n_suspicious} suspicious records "
          f"({len(report.findings)} findings)")
    print("\ntop findings (ranked by error confidence):")
    for finding in report.ranked_findings(5):
        print(f"  {finding.describe()}")

    print("\ninduced structure model (excerpt):")
    print(auditor.describe_structure(max_rules_per_attribute=2))

    # 5. evaluation against the pollution ground truth
    result = evaluate_audit(report, log, clean, dirty)
    print("\nrecord-level confusion matrix:")
    print(result.records.to_table())
    print("\n" + result.summary())


if __name__ == "__main__":
    main()
