"""The content-addressed, versioned on-disk model registry.

The paper's auditor is meant to live *inside* warehouse loading
(sec. 2.2): the offline job induces structure models on a schedule, the
online job checks every arriving load against a **pinned, named**
model. That hand-over needs more than one JSON file on disk — it needs
versions that never change underneath a reader, provenance that says
which schema / training table / config produced each model, and writes
that cannot tear.

:class:`ModelRegistry` provides exactly that, with three invariants:

* **content addressing** — a model's identity is the SHA-256 digest of
  its canonical serialized form (:func:`model_digest`). Registering the
  byte-identical model twice stores one object; two models with the
  same digest *are* the same model.
* **immutability + atomicity** — object files are written once
  (tmp file + :func:`os.replace`) and never modified; name indexes are
  replaced atomically. A reader therefore sees either the old or the
  new state of a name, never a torn one, without taking any lock.
* **single writer** — mutations (`put`/`tag`/`delete`) serialize on a
  lockfile (``O_CREAT | O_EXCL``, the portable primitive), so two
  concurrent registrations of ``name`` get distinct version numbers
  instead of clobbering each other. Locks left behind by a crashed
  writer go stale after :attr:`ModelRegistry.lock_stale_seconds` and
  are broken.

On-disk layout (all JSON, human-inspectable)::

    <root>/
      objects/<sha256>.json     # canonical model payloads, immutable
      names/<name>.json         # version list + tag map for one name
      .lock                     # writer lockfile (absent when idle)

Version references (:func:`parse_ref`) are ``name``, ``name@latest``,
``name@v3``, ``name@<tag>``, or ``name@<digest-prefix>`` (≥ 8 hex
chars). ``latest`` is a tag maintained automatically: it always points
at the most recently registered version.
"""

from __future__ import annotations

import dataclasses
import datetime
import errno
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.core.auditor import DataAuditor
from repro.core.serialize import auditor_from_dict, auditor_to_dict
from repro.schema.schema import Schema
from repro.schema.serialize import schema_to_dict

__all__ = [
    "RegistryError",
    "Provenance",
    "ModelVersion",
    "ModelRegistry",
    "model_digest",
    "schema_digest",
    "parse_ref",
]

_INDEX_FORMAT = "repro-registry-v1"


class RegistryError(RuntimeError):
    """A registry operation failed; ``str(exc)`` is one printable line."""


def _canonical_bytes(payload: Mapping[str, Any]) -> bytes:
    """The canonical JSON encoding content addresses are computed over:
    sorted keys, no whitespace, UTF-8. Stable across processes and
    Python versions for the plain-JSON payloads the serializers emit."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def model_digest(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a serialized auditor (its registry identity)."""
    return hashlib.sha256(_canonical_bytes(payload)).hexdigest()


def schema_digest(schema: Schema) -> str:
    """SHA-256 hex digest of a schema's canonical serialized form — the
    provenance field that ties a stored model to the relation shape it
    was induced for."""
    return hashlib.sha256(_canonical_bytes(schema_to_dict(schema))).hexdigest()


def parse_ref(ref: str) -> tuple[str, str]:
    """Split a version reference into ``(name, selector)``.

    ``"loads"`` → ``("loads", "latest")``; ``"loads@v3"`` →
    ``("loads", "v3")``. Empty parts are rejected."""
    name, sep, selector = ref.partition("@")
    if not name or (sep and not selector):
        raise RegistryError(f"invalid model reference {ref!r} (want name[@ref])")
    return name, selector or "latest"


def _utc_now_iso() -> str:
    return (
        datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat()
    )


@dataclass(frozen=True)
class Provenance:
    """Where one stored model version came from (recorded at ``put``).

    ``schema_hash`` is always filled in by the registry; the caller
    supplies what it knows about the training run. ``extra`` carries
    free-form caller context (experiment ids, operator names, …) as
    plain JSON types.
    """

    schema_hash: str = ""
    source: Optional[str] = None  #: training-table location / URI
    source_format: Optional[str] = None  #: registry format name of ``source``
    config: Optional[dict] = None  #: the AuditorConfig the fit used (JSON form)
    n_rows: Optional[int] = None  #: training row count
    fit_seconds: Optional[float] = None  #: structure-induction wall time
    created_at: str = ""  #: ISO-8601 UTC, filled in by the registry
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Provenance":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass(frozen=True)
class ModelVersion:
    """One immutable ``name@vN`` entry of the registry."""

    name: str
    version: int  #: 1-based, monotonically increasing per name
    digest: str  #: content address of the model object
    provenance: Provenance

    @property
    def ref(self) -> str:
        """The canonical pinnable reference, e.g. ``"loads@v3"``."""
        return f"{self.name}@v{self.version}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "digest": self.digest,
            "provenance": self.provenance.to_dict(),
        }


class ModelRegistry:
    """A directory of named, versioned, content-addressed auditor models.

    Safe for concurrent use: any number of readers run lock-free
    against atomically-replaced files; writers serialize on the
    registry lockfile. All methods raise :class:`RegistryError` with a
    one-line message on failure.
    """

    #: how long a writer waits for the lock before giving up
    lock_timeout_seconds: float = 10.0
    #: a lockfile older than this is treated as left behind by a crash
    lock_stale_seconds: float = 60.0

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.names_dir = self.root / "names"
        self._lock_path = self.root / ".lock"
        for directory in (self.root, self.objects_dir, self.names_dir):
            directory.mkdir(parents=True, exist_ok=True)

    # -- locking ------------------------------------------------------------

    def _acquire_lock(self) -> None:
        deadline = time.monotonic() + self.lock_timeout_seconds
        while True:
            try:
                fd = os.open(
                    self._lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                try:
                    age = time.time() - self._lock_path.stat().st_mtime
                    if age > self.lock_stale_seconds:
                        # a crashed writer's leftovers; break the lock
                        self._lock_path.unlink()
                        continue
                except FileNotFoundError:
                    continue  # holder released between open and stat
                if time.monotonic() >= deadline:
                    raise RegistryError(
                        f"timed out after {self.lock_timeout_seconds:.0f}s "
                        f"waiting for the registry writer lock {self._lock_path}"
                    )
                time.sleep(0.02)
            else:
                os.write(fd, f"pid {os.getpid()} at {_utc_now_iso()}\n".encode())
                os.close(fd)
                return

    def _release_lock(self) -> None:
        try:
            self._lock_path.unlink()
        except FileNotFoundError:
            pass

    class _locked:
        def __init__(self, registry: "ModelRegistry"):
            self.registry = registry

        def __enter__(self):
            self.registry._acquire_lock()

        def __exit__(self, *exc_info):
            self.registry._release_lock()
            return False

    # -- on-disk primitives -------------------------------------------------

    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        """tmp file + ``os.replace``: the file either keeps its old
        content or holds all of the new one — never a prefix."""
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise RegistryError(f"cannot write {path}: {exc}") from exc

    def _object_path(self, digest: str) -> Path:
        return self.objects_dir / f"{digest}.json"

    def _index_path(self, name: str) -> Path:
        if not name or "/" in name or "@" in name or name.startswith("."):
            raise RegistryError(
                f"invalid model name {name!r} (no '/', '@', or leading '.')"
            )
        return self.names_dir / f"{name}.json"

    def _read_index(self, name: str) -> Optional[dict]:
        try:
            payload = json.loads(self._index_path(name).read_text("utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(f"cannot read registry index for {name!r}: {exc}")
        if payload.get("format") != _INDEX_FORMAT:
            raise RegistryError(
                f"registry index for {name!r} has unsupported format "
                f"{payload.get('format')!r}"
            )
        return payload

    def _write_index(self, name: str, payload: dict) -> None:
        self._write_atomic(self._index_path(name), _canonical_bytes(payload))

    @staticmethod
    def _version_from_entry(name: str, entry: Mapping[str, Any]) -> ModelVersion:
        return ModelVersion(
            name=name,
            version=int(entry["version"]),
            digest=entry["digest"],
            provenance=Provenance.from_dict(entry["provenance"]),
        )

    # -- the public API -----------------------------------------------------

    def put(
        self,
        auditor: DataAuditor,
        name: str,
        *,
        provenance: Optional[Provenance] = None,
    ) -> ModelVersion:
        """Register a fitted auditor as the next version of *name*.

        The model object is stored by content digest (an already-stored
        identical model is reused, not rewritten); the name index gains
        one version entry carrying the provenance record (``schema_hash``
        and ``created_at`` are filled in here) and the ``latest`` tag
        moves to it. Returns the new :class:`ModelVersion`.
        """
        if not auditor.classifiers:
            raise RegistryError(
                f"cannot register an unfitted auditor as {name!r}; fit() first"
            )
        try:
            payload = auditor_to_dict(auditor)
        except (TypeError, ValueError) as exc:
            raise RegistryError(f"cannot serialize model for {name!r}: {exc}")
        digest = model_digest(payload)
        base = provenance or Provenance()
        record = dataclasses.replace(
            base,
            schema_hash=schema_digest(auditor.schema),
            created_at=base.created_at or _utc_now_iso(),
        )
        self._index_path(name)  # validate the name before touching disk
        object_path = self._object_path(digest)
        if not object_path.exists():
            self._write_atomic(object_path, _canonical_bytes(payload))
        with self._locked(self):
            index = self._read_index(name) or {
                "format": _INDEX_FORMAT,
                "name": name,
                "versions": [],
                "tags": {},
            }
            version = ModelVersion(
                name=name,
                version=len(index["versions"]) + 1,
                digest=digest,
                provenance=record,
            )
            index["versions"].append(version.to_dict())
            index["tags"]["latest"] = version.version
            self._write_index(name, index)
        return version

    def list(self) -> list[str]:
        """All registered model names, sorted."""
        return sorted(path.stem for path in self.names_dir.glob("*.json"))

    def versions(self, name: str) -> list[ModelVersion]:
        """All versions of *name*, oldest first."""
        index = self._read_index(name)
        if index is None:
            raise RegistryError(f"no model named {name!r} in registry {self.root}")
        return [self._version_from_entry(name, e) for e in index["versions"]]

    def tags(self, name: str) -> dict[str, int]:
        """The tag → version-number map of *name* (includes ``latest``)."""
        index = self._read_index(name)
        if index is None:
            raise RegistryError(f"no model named {name!r} in registry {self.root}")
        return dict(index["tags"])

    def resolve(self, ref: str) -> ModelVersion:
        """Resolve ``name[@selector]`` to one concrete version.

        Selectors: ``latest`` (default), ``vN``, a tag, or a digest
        prefix of at least 8 hex characters.
        """
        name, selector = parse_ref(ref)
        index = self._read_index(name)
        if index is None:
            known = ", ".join(self.list()) or "none"
            raise RegistryError(
                f"no model named {name!r} in registry {self.root} (known: {known})"
            )
        entries = index["versions"]
        tags = index["tags"]
        number: Optional[int] = None
        if selector in tags:
            number = int(tags[selector])
        elif selector.startswith("v") and selector[1:].isdigit():
            number = int(selector[1:])
        elif len(selector) >= 8 and all(c in "0123456789abcdef" for c in selector):
            matches = [e for e in entries if e["digest"].startswith(selector)]
            if len(matches) > 1:
                raise RegistryError(
                    f"digest prefix {selector!r} is ambiguous for {name!r} "
                    f"({len(matches)} versions match)"
                )
            if matches:
                # several versions may share a digest; the prefix pins the
                # newest one carrying it
                number = int(matches[-1]["version"])
        # look the entry up by its recorded number, not by list position:
        # deleted versions leave the survivors' numbering sparse
        entry = next(
            (e for e in entries if int(e["version"]) == number), None
        )
        if entry is None:
            options = ", ".join(
                [f"v{e['version']}" for e in entries] + sorted(tags)
            )
            raise RegistryError(
                f"cannot resolve {ref!r}: no version, tag, or digest matches "
                f"{selector!r} (have: {options})"
            )
        return self._version_from_entry(name, entry)

    def get(self, ref: str) -> DataAuditor:
        """Load the auditor a reference points at, ready to audit."""
        version = self.resolve(ref)
        return self.get_version(version)

    def get_version(self, version: ModelVersion) -> DataAuditor:
        """Load the model object of an already-resolved version."""
        path = self._object_path(version.digest)
        try:
            payload = json.loads(path.read_text("utf-8"))
        except FileNotFoundError:
            raise RegistryError(
                f"registry object {version.digest[:12]}… for {version.ref} "
                f"is missing from {self.objects_dir}"
            )
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(f"cannot read registry object {path}: {exc}")
        try:
            return auditor_from_dict(payload)
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(
                f"registry object for {version.ref} is not a valid model: {exc}"
            )

    def tag(self, ref: str, tag: str) -> ModelVersion:
        """Point *tag* at the version *ref* resolves to (e.g. pin
        ``prod`` to ``loads@v3``). Tags move freely; ``latest`` is
        reserved for the registry itself."""
        if not tag or tag == "latest" or (tag.startswith("v") and tag[1:].isdigit()):
            raise RegistryError(
                f"invalid tag {tag!r} ('latest' and vN forms are reserved)"
            )
        with self._locked(self):
            version = self.resolve(ref)
            index = self._read_index(version.name)
            assert index is not None  # resolve() just found it
            index["tags"][tag] = version.version
            self._write_index(version.name, index)
        return version

    def delete(self, ref: str) -> int:
        """Remove a whole name (``"loads"``) or one version
        (``"loads@v2"``); returns the number of versions removed.

        Deleting a version keeps the numbering of the survivors (refs
        stay stable); tags pointing at a removed version are dropped.
        Object files no longer referenced by any name are garbage
        collected.
        """
        name, sep, selector = ref.partition("@")
        with self._locked(self):
            index = self._read_index(name)
            if index is None:
                raise RegistryError(f"no model named {name!r} in registry {self.root}")
            if not sep:  # the whole name
                removed = len(index["versions"])
                self._index_path(name).unlink()
            else:
                version = self.resolve(ref)
                index["versions"] = [
                    e for e in index["versions"] if int(e["version"]) != version.version
                ]
                index["tags"] = {
                    t: v for t, v in index["tags"].items() if int(v) != version.version
                }
                removed = 1
                if index["versions"]:
                    if "latest" not in index["tags"]:
                        index["tags"]["latest"] = int(
                            index["versions"][-1]["version"]
                        )
                    self._write_index(name, index)
                else:
                    self._index_path(name).unlink()
            self._collect_garbage()
        return removed

    def _collect_garbage(self) -> None:
        """Unlink object files referenced by no surviving version.
        Called under the writer lock."""
        referenced = set()
        for name in self.list():
            index = self._read_index(name)
            if index is not None:
                referenced.update(e["digest"] for e in index["versions"])
        for path in self.objects_dir.glob("*.json"):
            if path.stem not in referenced:
                try:
                    path.unlink()
                except OSError:
                    pass

    def __repr__(self) -> str:
        return f"ModelRegistry({str(self.root)!r}, {len(self.list())} names)"
