"""Split tie-breaking regression tests (the contract `grow._select_split`
documents).

Exact-gain ties are common on real tables (duplicated columns, symmetric
value patterns), and whichever candidate wins ends up in the persisted
model — so the tie-break is part of the byte-identity contract between
the vectorized and row fit paths:

* attribute ties → the **first** attribute in ``base_attrs`` order wins
  (Python ``max`` keeps the first maximal candidate);
* numeric cut-point ties within one attribute → the **lowest** cut wins
  (``np.argmax`` returns the first index, and the vectorized
  feasible-subset evaluation must preserve that ordering).

These tests pin both rules directly on the grown tree, independent of
the parity suite: if a future optimisation reorders candidate
evaluation, this file fails even if it happens to reorder both paths
consistently.
"""

from __future__ import annotations

from repro.mining import Dataset, PruningStrategy, TreeConfig, grow_tree
from repro.mining.tree.node import NominalSplit, NumericSplit
from repro.schema import Schema, Table, nominal, numeric

_NO_PRUNING = TreeConfig(pruning=PruningStrategy.NONE, min_instances=1)


def _duplicate_nominal_table() -> Table:
    """B1 and B2 are identical copies, both perfectly predicting C."""
    schema = Schema(
        [
            nominal("B1", ["u", "v"]),
            nominal("B2", ["u", "v"]),
            nominal("C", ["x", "y"]),
        ]
    )
    rows = [["u", "u", "x"]] * 8 + [["v", "v", "y"]] * 8
    return Table(schema, rows)


def test_attribute_tie_first_base_attr_wins():
    table = _duplicate_nominal_table()
    root = grow_tree(Dataset(table, "C", ["B1", "B2"]), _NO_PRUNING)
    assert isinstance(root, NominalSplit)
    assert root.attribute == "B1"


def test_attribute_tie_follows_base_attr_order():
    """The tie-break is positional, not alphabetical: reordering
    ``base_attrs`` flips the winner."""
    table = _duplicate_nominal_table()
    root = grow_tree(Dataset(table, "C", ["B2", "B1"]), _NO_PRUNING)
    assert isinstance(root, NominalSplit)
    assert root.attribute == "B2"


def test_numeric_cut_tie_lowest_cut_wins():
    """N = 1,2,3 with classes x,y,x: the cuts at 1.5 and 2.5 are exactly
    symmetric (same entropy either way) — the lower one must win."""
    schema = Schema([numeric("N", 0, 10), nominal("C", ["x", "y"])])
    table = Table(schema, [[1.0, "x"], [2.0, "y"], [3.0, "x"]] * 4)
    root = grow_tree(Dataset(table, "C", ["N"]), _NO_PRUNING)
    assert isinstance(root, NumericSplit)
    assert root.attribute == "N"
    assert root.threshold == 1.5


def test_numeric_attribute_tie_first_wins_with_lowest_cut():
    """Identical numeric columns: both tie-break rules compose — the
    first attribute wins and carries the lowest of its tied cuts."""
    schema = Schema(
        [
            numeric("N1", 0, 10),
            numeric("N2", 0, 10),
            nominal("C", ["x", "y"]),
        ]
    )
    table = Table(
        schema, [[1.0, 1.0, "x"], [2.0, 2.0, "y"], [3.0, 3.0, "x"]] * 4
    )
    root = grow_tree(Dataset(table, "C", ["N1", "N2"]), _NO_PRUNING)
    assert isinstance(root, NumericSplit)
    assert root.attribute == "N1"
    assert root.threshold == 1.5
