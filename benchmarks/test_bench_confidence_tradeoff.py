"""E11 — the screening-vs-loading trade-off of sec. 4.3.

Paper: *"The importance of a high value for a measure depends on the
intended use of the tool: If it is used as a data screening tool that
marks deviations to be controlled manually later a high sensitivity is
important. If it is necessary to integrate new data very quickly in a
data warehouse and filter only records that are incorrect with a high
probability, a high value for specificity is recommended."*

The minimal error confidence is the knob that moves the tool along this
trade-off. The bench sweeps it and reports the operating curve — the
ROC-like table a quality engineer would use to pick a threshold for
either deployment mode.
"""

import dataclasses

from repro.core import AuditorConfig
from repro.testenv import ExperimentConfig, TestEnvironment

CONFIDENCE_GRID = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95)
BASE = ExperimentConfig(n_records=6000, n_rules=100)


def test_min_confidence_tradeoff(benchmark, environment: TestEnvironment, record_table):
    def run_all():
        results = []
        for min_confidence in CONFIDENCE_GRID:
            config = dataclasses.replace(
                BASE, auditor=AuditorConfig(min_error_confidence=min_confidence)
            )
            results.append((min_confidence, environment.run(config)))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "E11 — sensitivity/specificity trade-off over the minimal error "
        "confidence (6000 records, 100 rules)",
        f"{'min conf':>9}  sensitivity  specificity  precision  flagged",
    ]
    for min_confidence, result in results:
        evaluation = result.evaluation
        lines.append(
            f"{min_confidence:>9.2f}  {evaluation.sensitivity:>11.3f}  "
            f"{evaluation.specificity:>11.4f}  {evaluation.records.precision:>9.3f}  "
            f"{result.report.n_suspicious:>7d}"
        )
    record_table("E11_confidence_tradeoff", "\n".join(lines))

    sensitivities = [result.sensitivity for _, result in results]
    specificities = [result.specificity for _, result in results]
    # screening mode (low threshold): maximal detection
    assert sensitivities[0] == max(sensitivities)
    # loading mode (high threshold): maximal selectivity
    assert specificities[-1] == max(specificities)
    # the curve is monotone in both directions (within small tolerance)
    for earlier, later in zip(sensitivities, sensitivities[1:]):
        assert later <= earlier + 0.02
    for earlier, later in zip(specificities, specificities[1:]):
        assert later >= earlier - 0.002
