"""JSONL backend: one JSON object per row, keyed by attribute name.

The natural shape for event logs and extract streams. Values map to
JSON natively — strings stay strings, ints stay ints (JSON integers are
arbitrary precision), floats round-trip exactly through ``repr``, nulls
are JSON ``null`` — and dates are ISO-8601 strings, which the
schema-driven read side turns back into :class:`datetime.date`. Reads
reject non-finite numbers, JSON booleans in numeric columns, and rows
whose keys do not match the schema, naming the offending line and
attribute.

Both ends accept a path or an open text stream (streams passed in by
the caller are left open on close) — the stdout findings path of
``repro audit --format jsonl`` writes through this sink.
"""

from __future__ import annotations

import datetime
import json
from pathlib import Path
from typing import Iterator, TextIO, Union

from repro.io.base import TableSink, TableSource, open_text
from repro.io.cells import cell_context, coerce_number
from repro.io.columnar import ColumnBatch, columns_from_rows, raise_row_errors
from repro.schema.schema import Schema
from repro.schema.types import AttributeKind, Value

__all__ = ["JsonlTableSource", "JsonlTableSink"]


def _coerce(raw: object, kind: AttributeKind, integer: bool) -> Value:
    if raw is None:
        return None
    if kind is AttributeKind.NOMINAL:
        if not isinstance(raw, str):
            raise ValueError(f"expected a string for a nominal cell, got {raw!r}")
        return raw
    if kind is AttributeKind.DATE:
        if not isinstance(raw, str):
            raise ValueError(f"expected an ISO date string, got {raw!r}")
        return datetime.date.fromisoformat(raw)
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise ValueError(f"expected a number for a numeric cell, got {raw!r}")
    return coerce_number(raw, integer)


def _encode(value: Value, kind: AttributeKind) -> object:
    if value is not None and kind is AttributeKind.DATE:
        return value.isoformat()  # type: ignore[union-attr]
    return value


class JsonlTableSource(TableSource):
    """Schema-driven JSON-lines reader (path or text stream).

    Natively columnar: :meth:`column_batches` converts each batch of
    parsed objects column-at-a-time (dict lookups per attribute), with
    structural checks (JSON validity, key sets) still applied per line in
    row order and cell errors replayed row-wise — byte-identical errors
    to the row path even though blank lines make line numbers
    non-contiguous.
    """

    supports_columns = True

    def __init__(self, schema: Schema, source: Union[str, Path, TextIO]):
        super().__init__(schema)
        self._handle, self._owns_handle = open_text(source, "r")

    def _structural_check(self, line_no: int, line: str) -> dict:
        """Parse and key-check one line (the row path's per-line checks)."""
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {line_no}: not valid JSON: {exc}") from None
        if not isinstance(obj, dict):
            raise ValueError(
                f"line {line_no}: expected one JSON object per line, "
                f"got {type(obj).__name__}"
            )
        expected = set(self.schema.names)
        if set(obj) != expected:
            missing = sorted(expected - set(obj))
            extra = sorted(set(obj) - expected)
            raise ValueError(
                f"line {line_no}: keys do not match the schema "
                f"(missing {missing!r}, unexpected {extra!r})"
            )
        return obj

    def _iter_column_batches(self, batch_size: int):
        names = self.schema.names
        converters = [
            lambda raw, kind=a.kind, integer=getattr(a.domain, "integer", False): (
                _coerce(raw, kind, integer)
            )
            for a in self.schema.attributes
        ]
        positions = list(names)  # dict lookup by attribute name
        buffered: list[dict] = []
        labels: list[str] = []

        def flush() -> ColumnBatch:
            cols = columns_from_rows(buffered, labels, names, converters, positions)
            batch = ColumnBatch(self.schema, dict(zip(names, cols)), len(buffered))
            buffered.clear()
            labels.clear()
            return batch

        for line_no, line in enumerate(self._handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = self._structural_check(line_no, line)
            except ValueError:
                # a cell error in an earlier buffered row wins (the row
                # path converts strictly in line order)
                raise_row_errors(buffered, labels, converters, names, positions)
                raise
            buffered.append(obj)
            labels.append(f"line {line_no}")
            if len(buffered) >= batch_size:
                yield flush()
        if buffered:
            yield flush()

    def _iter_rows(self) -> Iterator[list[Value]]:
        names = self.schema.names
        kinds = [a.kind for a in self.schema.attributes]
        integers = [getattr(a.domain, "integer", False) for a in self.schema.attributes]
        expected = set(names)
        for line_no, line in enumerate(self._handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                # NaN/Infinity constants parse to floats here on purpose:
                # the cell coercion below rejects non-finite values with
                # the line *and* attribute named, which a parse_constant
                # hook could not know
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {line_no}: not valid JSON: {exc}") from None
            if not isinstance(obj, dict):
                raise ValueError(
                    f"line {line_no}: expected one JSON object per line, "
                    f"got {type(obj).__name__}"
                )
            if set(obj) != expected:
                missing = sorted(expected - set(obj))
                extra = sorted(set(obj) - expected)
                raise ValueError(
                    f"line {line_no}: keys do not match the schema "
                    f"(missing {missing!r}, unexpected {extra!r})"
                )
            cells = []
            for name, kind, integer in zip(names, kinds, integers):
                try:
                    cells.append(_coerce(obj[name], kind, integer))
                except ValueError as exc:
                    raise cell_context(f"line {line_no}", name, exc) from None
            yield cells

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()


class JsonlTableSink(TableSink):
    """JSON-lines writer (path or text stream); no container header."""

    def __init__(self, schema: Schema, target: Union[str, Path, TextIO]):
        super().__init__(schema)
        self._handle, self._owns_handle = open_text(target, "w")

    def _write_header(self) -> None:
        pass  # JSONL has no header; an empty file is an empty table

    def _write_rows(self, rows: list[list[Value]]) -> None:
        names = self.schema.names
        kinds = [a.kind for a in self.schema.attributes]
        write = self._handle.write
        for row in rows:
            obj = {
                name: _encode(value, kind)
                for name, value, kind in zip(names, row, kinds)
            }
            write(json.dumps(obj, allow_nan=False, separators=(",", ":")) + "\n")

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()
