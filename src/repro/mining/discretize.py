"""Equal-frequency discretization of ordered attributes.

Sec. 5: *"To allow for the induction of decision trees for numerical class
attributes, these attributes are discretized into equal frequency bins
before the induction process."* This module provides that discretizer;
the multiple classification / *regression* approach uses it to turn a
numeric (or date) class attribute into a categorical one, and the bin
*representative* (the median of the training values that fell into the
bin) is what correction proposals substitute for a suspicious value.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["EqualFrequencyDiscretizer"]


class EqualFrequencyDiscretizer:
    """Equal-frequency binning fitted on training values (numeric view).

    Bins are represented by their index ``0 … n_bins-1``. Boundaries are
    half-open: bin *i* covers ``[cut[i-1], cut[i])`` with the first/last
    bins unbounded, so unseen values outside the training range still map
    to a bin. Duplicate cut points (heavily tied data) collapse bins; the
    effective bin count is :attr:`n_bins`.
    """

    def __init__(self, n_bins: int = 10):
        if n_bins < 2:
            raise ValueError("n_bins must be at least 2")
        self.requested_bins = n_bins
        self._cuts: Optional[np.ndarray] = None
        self._representatives: Optional[np.ndarray] = None

    # -- fitting ---------------------------------------------------------------

    def fit(self, values: Sequence[float]) -> "EqualFrequencyDiscretizer":
        """Fit cut points on the non-null training *values*."""
        if isinstance(values, np.ndarray):
            # column-path fast lane: bulk NaN filter (mask indexing copies,
            # so the in-place sort below cannot touch the caller's array)
            data = values[~np.isnan(values)].astype(np.float64, copy=False)
        else:
            data = np.asarray(
                [v for v in values if v is not None and not np.isnan(v)], dtype=float
            )
        if data.size == 0:
            raise ValueError("cannot fit a discretizer on no values")
        data.sort()
        quantiles = np.linspace(0.0, 1.0, self.requested_bins + 1)[1:-1]
        # "lower" keeps cut points on observed values, so heavily tied data
        # collapses bins instead of fabricating interpolated boundaries
        cuts = np.unique(np.quantile(data, quantiles, method="lower"))
        self._cuts = cuts
        # On sorted data each bin is a contiguous slice: bin i holds the
        # values v with cuts[i-1] <= v < cuts[i], i.e. rows
        # [searchsorted(data, cuts[i-1]), searchsorted(data, cuts[i])) —
        # one O(bins log n) pass instead of re-assigning all rows per bin.
        starts = np.searchsorted(data, cuts, side="left")
        bounds = np.concatenate(([0], starts, [data.size]))
        representatives = []
        for bin_index in range(len(cuts) + 1):
            members = data[bounds[bin_index] : bounds[bin_index + 1]]
            if members.size:
                representatives.append(float(np.median(members)))
            else:  # empty interior bin after deduplication — use a boundary
                boundary = cuts[min(bin_index, len(cuts) - 1)]
                representatives.append(float(boundary))
        self._representatives = np.asarray(representatives, dtype=float)
        return self

    @staticmethod
    def _assign(data: np.ndarray, cuts: np.ndarray) -> np.ndarray:
        return np.searchsorted(cuts, data, side="right")

    def _require_fitted(self) -> None:
        if self._cuts is None:
            raise RuntimeError("discretizer is not fitted")

    # -- queries ----------------------------------------------------------------

    @property
    def n_bins(self) -> int:
        """Effective number of bins (≤ requested, after tie collapsing)."""
        self._require_fitted()
        return len(self._cuts) + 1  # type: ignore[arg-type]

    @property
    def cut_points(self) -> tuple[float, ...]:
        self._require_fitted()
        return tuple(float(c) for c in self._cuts)  # type: ignore[union-attr]

    def transform_value(self, value: float) -> int:
        """Bin index of one (non-null) numeric-view value."""
        self._require_fitted()
        return int(np.searchsorted(self._cuts, value, side="right"))

    def transform(self, values: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`transform_value`."""
        self._require_fitted()
        return self._assign(np.asarray(values, dtype=float), self._cuts)

    def representative(self, bin_index: int) -> float:
        """Median training value of the bin — the correction proposal."""
        self._require_fitted()
        if not 0 <= bin_index < self.n_bins:
            raise IndexError(f"bin index {bin_index} out of range")
        return float(self._representatives[bin_index])  # type: ignore[index]

    def bin_label(self, bin_index: int) -> str:
        """Human-readable half-open interval label of the bin."""
        self._require_fitted()
        cuts = self._cuts
        if not 0 <= bin_index < self.n_bins:
            raise IndexError(f"bin index {bin_index} out of range")
        low = "-inf" if bin_index == 0 else f"{float(cuts[bin_index - 1]):g}"  # type: ignore[index]
        high = "inf" if bin_index == self.n_bins - 1 else f"{float(cuts[bin_index]):g}"  # type: ignore[index]
        return f"[{low}, {high})"

    # -- persistence --------------------------------------------------------

    def to_state(self) -> dict:
        """JSON-compatible state (for the offline/online model split)."""
        self._require_fitted()
        return {
            "requested_bins": self.requested_bins,
            "cuts": [float(c) for c in self._cuts],  # type: ignore[union-attr]
            "representatives": [float(r) for r in self._representatives],  # type: ignore[union-attr]
        }

    @classmethod
    def from_state(cls, state: dict) -> "EqualFrequencyDiscretizer":
        """Inverse of :meth:`to_state`."""
        instance = cls(state["requested_bins"])
        instance._cuts = np.asarray(state["cuts"], dtype=float)
        instance._representatives = np.asarray(state["representatives"], dtype=float)
        return instance

    def __repr__(self) -> str:
        if self._cuts is None:
            return f"EqualFrequencyDiscretizer(n_bins={self.requested_bins}, unfitted)"
        return f"EqualFrequencyDiscretizer(bins={self.n_bins})"
