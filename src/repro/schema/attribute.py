"""Attributes: a named, typed column with a domain and nullability flag."""

from __future__ import annotations

import datetime
from typing import Sequence

from repro.schema.domain import DateDomain, Domain, NominalDomain, NumericDomain, TextDomain
from repro.schema.types import AttributeKind, Value

__all__ = ["Attribute", "nominal", "numeric", "date", "text"]


class Attribute:
    """A single attribute (column) of the target relation.

    Parameters
    ----------
    name:
        Attribute name; must be a non-empty identifier-like string.
    domain:
        The :class:`~repro.schema.domain.Domain` of legal non-null values.
    nullable:
        Whether null values are admissible. The satisfiability test and
        the data generator both consult this flag (``A isnull`` is
        unsatisfiable for a non-nullable attribute).
    """

    def __init__(self, name: str, domain: Domain, *, nullable: bool = True):
        if not name or not isinstance(name, str):
            raise ValueError("attribute name must be a non-empty string")
        self.name = name
        self.domain = domain
        self.nullable = bool(nullable)

    @property
    def kind(self) -> AttributeKind:
        """The attribute kind, delegated to the domain."""
        return self.domain.kind

    def admits(self, value: Value) -> bool:
        """Return ``True`` iff *value* (possibly null) is legal for this attribute."""
        if value is None:
            return self.nullable
        return self.domain.contains(value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Attribute)
            and self.name == other.name
            and self.domain == other.domain
            and self.nullable == other.nullable
        )

    def __hash__(self) -> int:
        return hash((self.name, self.domain, self.nullable))

    def __repr__(self) -> str:
        null = "" if self.nullable else ", nullable=False"
        return f"Attribute({self.name!r}, {self.domain!r}{null})"


def nominal(name: str, values: Sequence[str], *, nullable: bool = True) -> Attribute:
    """Shorthand for a nominal attribute over *values*."""
    return Attribute(name, NominalDomain(values), nullable=nullable)


def numeric(
    name: str, low: float, high: float, *, integer: bool = False, nullable: bool = True
) -> Attribute:
    """Shorthand for a numeric attribute over ``[low, high]``."""
    return Attribute(name, NumericDomain(low, high, integer=integer), nullable=nullable)


def date(
    name: str, start: datetime.date, end: datetime.date, *, nullable: bool = True
) -> Attribute:
    """Shorthand for a date attribute over ``[start, end]``."""
    return Attribute(name, DateDomain(start, end), nullable=nullable)


def text(name: str, *, nullable: bool = True) -> Attribute:
    """Shorthand for an open-vocabulary string attribute (reporting tables)."""
    return Attribute(name, TextDomain(), nullable=nullable)
