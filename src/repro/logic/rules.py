"""TDG-rules: implications between TDG-formulae (Def. 3)."""

from __future__ import annotations

from typing import Mapping

from repro.logic.base import Formula
from repro.schema.schema import Schema
from repro.schema.types import Value

__all__ = ["Rule"]


class Rule:
    """A TDG-rule ``α → β`` between two TDG-formulae.

    A record *violates* the rule when the premise holds but the
    consequence does not; records on which the premise is false satisfy
    the rule vacuously.
    """

    __slots__ = ("premise", "consequence")

    def __init__(self, premise: Formula, consequence: Formula):
        if not isinstance(premise, Formula) or not isinstance(consequence, Formula):
            raise TypeError("premise and consequence must be TDG-formulae")
        self.premise = premise
        self.consequence = consequence

    def applicable(self, record: Mapping[str, Value]) -> bool:
        """Whether the premise holds on *record*."""
        return self.premise.evaluate(record)

    def satisfied_by(self, record: Mapping[str, Value]) -> bool:
        """Material implication on *record*."""
        return not self.premise.evaluate(record) or self.consequence.evaluate(record)

    def violated_by(self, record: Mapping[str, Value]) -> bool:
        """Premise true, consequence false."""
        return self.premise.evaluate(record) and not self.consequence.evaluate(record)

    def attributes(self) -> frozenset[str]:
        """All attribute names occurring in the rule."""
        return self.premise.attributes() | self.consequence.attributes()

    def validate(self, schema: Schema) -> None:
        """Type-check both sides against *schema*."""
        self.premise.validate(schema)
        self.consequence.validate(schema)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rule)
            and other.premise == self.premise
            and other.consequence == self.consequence
        )

    def __hash__(self) -> int:
        return hash((self.premise, self.consequence))

    def __repr__(self) -> str:
        return f"Rule({self.premise!r}, {self.consequence!r})"

    def __str__(self) -> str:
        return f"{self.premise} → {self.consequence}"
