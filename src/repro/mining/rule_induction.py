"""Classification-rule inducers — the remaining sec. 5 alternatives.

* :class:`OneRClassifier` — Holte's 1R: the single best attribute,
  bucketed (nominal codes / equal-frequency bins), predicting each
  bucket's majority class. A deliberately weak baseline.
* :class:`PrismClassifier` — Cendrowska's PRISM covering algorithm: for
  every class, greedily grown conjunctive rules of maximal precision.
  Representative of the "classification rule inducers" family the paper
  examined.

Both report the covered-bucket / covered-rule training support as ``n``
for the error confidence.

Both fit paths run on NumPy aggregation: 1R scores attributes through one
``np.bincount`` joint table each, and PRISM's rule growth scores every
(attribute, bucket) condition from per-attribute bincounts instead of a
per-bucket mask loop — bit-identical to the scalar formulation (see
``_grow_rule``), pinned by the fit-parity property suite.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.mining.base import (
    AttributeClassifier,
    BatchPrediction,
    Prediction,
    batch_length,
)
from repro.mining.dataset import Dataset
from repro.mining.discretize import EqualFrequencyDiscretizer

__all__ = ["OneRClassifier", "PrismClassifier", "PrismRule"]


class _Bucketizer:
    """Shared encoding of base attributes into small bucket indices."""

    def __init__(self, dataset: Dataset, n_bins: int):
        self.dataset = dataset
        self.n_bins = n_bins
        self.discretizers: dict[str, EqualFrequencyDiscretizer] = {}
        self.n_buckets: dict[str, int] = {}
        self.buckets: dict[str, np.ndarray] = {}
        for name in dataset.base_attrs:
            encoder = dataset.encoders[name]
            column = dataset.columns[name]
            if encoder.categorical:
                # bucket 0 = missing, buckets 1.. = category codes
                self.buckets[name] = np.where(column >= 0, column + 1, 0)
                self.n_buckets[name] = encoder.n_categories + 1
            else:
                known = ~np.isnan(column)
                values = column[known]
                if values.size == 0:
                    self.buckets[name] = np.zeros(len(column), dtype=np.int64)
                    self.n_buckets[name] = 1
                    continue
                bins = max(2, min(n_bins, len(np.unique(values))))
                discretizer = EqualFrequencyDiscretizer(bins).fit(values)
                self.discretizers[name] = discretizer
                codes = np.zeros(len(column), dtype=np.int64)
                codes[known] = discretizer.transform(column[known]) + 1
                self.buckets[name] = codes
                self.n_buckets[name] = discretizer.n_bins + 1

    def to_state(self) -> dict:
        """JSON-compatible fitted state (for parity fingerprints)."""
        return {
            "n_buckets": dict(self.n_buckets),
            "discretizers": {
                name: discretizer.to_state()
                for name, discretizer in self.discretizers.items()
            },
        }

    def bucket_of(self, name: str, raw: float) -> int:
        encoder = self.dataset.encoders[name]
        if encoder.categorical:
            code = int(raw)
            return 0 if code < 0 else code + 1
        if math.isnan(raw):
            return 0
        discretizer = self.discretizers.get(name)
        if discretizer is None:
            return 0
        return discretizer.transform_value(raw) + 1

    def buckets_of_column(self, name: str, raw: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`bucket_of` over an encoded column array."""
        encoder = self.dataset.encoders[name]
        if encoder.categorical:
            return np.where(raw < 0, 0, raw + 1).astype(np.int64)
        buckets = np.zeros(len(raw), dtype=np.int64)
        discretizer = self.discretizers.get(name)
        if discretizer is None:
            return buckets
        known = ~np.isnan(raw)
        buckets[known] = discretizer.transform(raw[known]) + 1
        return buckets


class OneRClassifier(AttributeClassifier):
    """Holte's 1R on bucketized attributes."""

    def __init__(self, *, n_bins: int = 6):
        super().__init__()
        if n_bins < 2:
            raise ValueError("n_bins must be at least 2")
        self.n_bins = n_bins
        self.attribute: Optional[str] = None
        self._bucketizer: Optional[_Bucketizer] = None
        self._bucket_counts: Optional[np.ndarray] = None
        self._global_counts: Optional[np.ndarray] = None

    def fit(self, dataset: Dataset) -> None:
        self.dataset = dataset
        bucketizer = _Bucketizer(dataset, self.n_bins)
        self._bucketizer = bucketizer
        y = dataset.y
        n_labels = dataset.n_labels
        self._global_counts = np.bincount(y, minlength=n_labels).astype(float)
        best_name, best_errors, best_joint = None, math.inf, None
        for name in dataset.base_attrs:
            buckets = bucketizer.buckets[name]
            n_buckets = bucketizer.n_buckets[name]
            joint = np.bincount(
                buckets * n_labels + y, minlength=n_buckets * n_labels
            ).reshape(n_buckets, n_labels).astype(float)
            errors = float(joint.sum() - joint.max(axis=1).sum())
            if errors < best_errors:
                best_name, best_errors, best_joint = name, errors, joint
        self.attribute = best_name
        self._bucket_counts = best_joint

    def fit_state(self) -> dict:
        """Canonical fitted state (see
        :meth:`AttributeClassifier.fit_state
        <repro.mining.base.AttributeClassifier.fit_state>`)."""
        dataset = self._require_fitted()
        assert self._bucketizer is not None and self._global_counts is not None
        return {
            "type": "one-r",
            "class_encoder": dataset.class_encoder.to_state(),
            "attribute": self.attribute,
            "bucket_counts": (
                self._bucket_counts.tolist()
                if self._bucket_counts is not None
                else None
            ),
            "global_counts": self._global_counts.tolist(),
            "bucketizer": self._bucketizer.to_state(),
        }

    @property
    def bucket_counts(self) -> Optional[np.ndarray]:
        """Per-bucket class-count table of the chosen attribute
        (``(n_buckets, n_labels)``), or ``None`` before fitting / when no
        attribute was usable. Read-only model state for rule extraction
        (:mod:`repro.compile`)."""
        return self._bucket_counts

    @property
    def global_counts(self) -> Optional[np.ndarray]:
        """Class counts over the whole training table, or ``None`` before
        fitting — the fallback distribution for empty buckets."""
        return self._global_counts

    def bucket_discretizer(self, name: str) -> Optional[EqualFrequencyDiscretizer]:
        """The fitted equal-frequency discretizer bucketing ordered
        attribute *name*, or ``None`` when *name* is categorical or had no
        finite training values (its bucket is then constant 0)."""
        self._require_fitted()
        assert self._bucketizer is not None
        return self._bucketizer.discretizers.get(name)

    def predict_encoded(self, encoded: Mapping[str, float]) -> Prediction:
        dataset = self._require_fitted()
        assert self._bucketizer is not None and self._global_counts is not None
        labels = dataset.class_encoder.labels
        if self.attribute is None or self._bucket_counts is None:
            counts = self._global_counts
        else:
            bucket = self._bucketizer.bucket_of(self.attribute, encoded[self.attribute])
            bucket = min(bucket, self._bucket_counts.shape[0] - 1)
            counts = self._bucket_counts[bucket]
            if counts.sum() <= 0:
                counts = self._global_counts
        n = float(counts.sum())
        if n <= 0:
            return Prediction(np.full(len(labels), 1.0 / len(labels)), 0.0, labels)
        return Prediction(counts / n, n, labels)

    def predict_batch(
        self,
        columns: Mapping[str, np.ndarray],
        *,
        n_rows: Optional[int] = None,
    ) -> BatchPrediction:
        dataset = self._require_fitted()
        assert self._bucketizer is not None and self._global_counts is not None
        labels = dataset.class_encoder.labels
        length = batch_length(columns, n_rows)
        if self.attribute is None or self._bucket_counts is None:
            counts = np.tile(self._global_counts, (length, 1))
        else:
            buckets = self._bucketizer.buckets_of_column(
                self.attribute, columns[self.attribute]
            )
            buckets = np.minimum(buckets, self._bucket_counts.shape[0] - 1)
            counts = self._bucket_counts[buckets]
            empty = counts.sum(axis=1) <= 0
            counts[empty] = self._global_counts
        return _counts_to_batch(counts, labels)

    def __repr__(self) -> str:
        return f"OneRClassifier(attribute={self.attribute!r})"


def _counts_to_batch(counts: np.ndarray, labels: tuple[str, ...]) -> BatchPrediction:
    """Normalize per-row count vectors into a :class:`BatchPrediction`
    (uniform distribution with zero support for empty count rows)."""
    n = counts.sum(axis=1)
    support = n.astype(float)
    positive = n > 0
    probabilities = np.empty_like(counts, dtype=float)
    probabilities[positive] = counts[positive] / n[positive, None]
    probabilities[~positive] = 1.0 / counts.shape[1]
    support[~positive] = 0.0
    return BatchPrediction(probabilities, support, labels)


@dataclass
class PrismRule:
    """A conjunction of (attribute, bucket) conditions predicting a class."""

    target_code: int
    conditions: tuple[tuple[str, int], ...]
    counts: np.ndarray

    def matches(self, buckets: Mapping[str, int]) -> bool:
        return all(buckets[name] == bucket for name, bucket in self.conditions)

    @property
    def n(self) -> float:
        return float(self.counts.sum())


class PrismClassifier(AttributeClassifier):
    """Cendrowska's PRISM covering algorithm on bucketized attributes.

    ``min_coverage`` stops rule growth once a candidate rule would cover
    fewer training instances; ``max_rules_per_class`` caps model size on
    large, noisy tables; ``max_training`` subsamples the training data.
    """

    def __init__(
        self,
        *,
        n_bins: int = 6,
        min_coverage: int = 3,
        max_rules_per_class: int = 64,
        max_training: Optional[int] = 3000,
        seed: int = 0,
    ):
        super().__init__()
        if min_coverage < 1:
            raise ValueError("min_coverage must be at least 1")
        self.n_bins = n_bins
        self.min_coverage = min_coverage
        self.max_rules_per_class = max_rules_per_class
        self.max_training = max_training
        self.seed = seed
        self.rules: list[PrismRule] = []
        self._bucketizer: Optional[_Bucketizer] = None
        self._global_counts: Optional[np.ndarray] = None

    def fit(self, dataset: Dataset) -> None:
        self.dataset = dataset
        bucketizer = _Bucketizer(dataset, self.n_bins)
        self._bucketizer = bucketizer
        y_full = dataset.y
        n = dataset.n_rows
        if self.max_training is not None and n > self.max_training:
            rng = random.Random(self.seed)
            chosen = np.asarray(
                sorted(rng.sample(range(n), self.max_training)), dtype=np.int64
            )
        else:
            chosen = np.arange(n, dtype=np.int64)
        y = y_full[chosen]
        columns = {name: bucketizer.buckets[name][chosen] for name in dataset.base_attrs}
        n_labels = dataset.n_labels
        self._global_counts = np.bincount(y, minlength=n_labels).astype(float)
        self.rules = []
        for target in range(n_labels):
            remaining = np.arange(y.size)
            rules_built = 0
            while (
                rules_built < self.max_rules_per_class
                and (y[remaining] == target).sum() >= self.min_coverage
            ):
                rule_idx, conditions = self._grow_rule(columns, y, remaining, target)
                if rule_idx is None:
                    break
                counts = np.bincount(y[rule_idx], minlength=n_labels).astype(float)
                self.rules.append(PrismRule(target, tuple(conditions), counts))
                rules_built += 1
                covered_target = rule_idx[y[rule_idx] == target]
                remaining = np.setdiff1d(remaining, covered_target, assume_unique=False)

    def _grow_rule(
        self,
        columns: Mapping[str, np.ndarray],
        y: np.ndarray,
        remaining: np.ndarray,
        target: int,
    ):
        covered = remaining
        conditions: list[tuple[str, int]] = []
        used: set[str] = set()
        while True:
            precision_now = float((y[covered] == target).mean()) if covered.size else 0.0
            if covered.size and precision_now == 1.0:
                return covered, conditions
            # Candidate scoring runs on per-attribute bincounts instead of a
            # per-bucket mask loop. Precision stays bit-identical: the row
            # formulation's bool-array .mean() is an exact integer sum over
            # n < 2**53 divided once, which equals target_count / coverage
            # as a single float division. Tie-breaks are pinned to the row
            # path: within an attribute the lowest bucket achieving the
            # lexicographic (precision, coverage) max wins (np.unique
            # ascending + strict >), across attributes the earliest one.
            best = None  # (precision, coverage, name, bucket, sub)
            y_cov = y[covered]
            for name, buckets in columns.items():
                if name in used:
                    continue
                sub = buckets[covered]
                coverage = np.bincount(sub)
                target_counts = np.bincount(
                    sub[y_cov == target], minlength=coverage.size
                )
                feasible = np.nonzero(coverage >= self.min_coverage)[0]
                if feasible.size == 0:
                    continue
                precision = target_counts[feasible] / coverage[feasible]
                top = precision.max()
                at_top = feasible[precision == top]
                top_cov = coverage[at_top].max()
                bucket = int(at_top[coverage[at_top] == top_cov][0])
                key = (float(top), int(top_cov))
                if best is None or key > (best[0], best[1]):
                    best = (key[0], key[1], name, bucket, sub)
            if best is None or best[0] <= precision_now:
                if conditions and covered.size >= self.min_coverage and precision_now > 0:
                    return covered, conditions
                return None, conditions
            _, _, name, bucket, sub = best
            conditions.append((name, bucket))
            used.add(name)
            covered = covered[sub == bucket]

    def fit_state(self) -> dict:
        """Canonical fitted state (see
        :meth:`AttributeClassifier.fit_state
        <repro.mining.base.AttributeClassifier.fit_state>`)."""
        dataset = self._require_fitted()
        assert self._bucketizer is not None and self._global_counts is not None
        return {
            "type": "prism",
            "class_encoder": dataset.class_encoder.to_state(),
            "rules": [
                {
                    "target_code": rule.target_code,
                    "conditions": [list(condition) for condition in rule.conditions],
                    "counts": rule.counts.tolist(),
                }
                for rule in self.rules
            ],
            "global_counts": self._global_counts.tolist(),
            "bucketizer": self._bucketizer.to_state(),
        }

    @property
    def global_counts(self) -> Optional[np.ndarray]:
        """Class counts over the (sub)sampled training rows, or ``None``
        before fitting — the distribution of rows no rule matches."""
        return self._global_counts

    def bucket_discretizer(self, name: str) -> Optional[EqualFrequencyDiscretizer]:
        """The fitted equal-frequency discretizer bucketing ordered
        attribute *name*, or ``None`` when *name* is categorical or had no
        finite training values (its bucket is then constant 0)."""
        self._require_fitted()
        assert self._bucketizer is not None
        return self._bucketizer.discretizers.get(name)

    def batch_rule_order(self) -> list[int]:
        """Indices into :attr:`rules` in batch evaluation order —
        precision descending, then support descending, then original
        index — under which the first matching rule claims a row. This is
        the exact order :meth:`predict_batch` applies (and
        :mod:`repro.compile` replays as a ``CASE`` chain)."""
        return sorted(
            range(len(self.rules)),
            key=lambda i: (
                -(
                    float(self.rules[i].counts[self.rules[i].target_code])
                    / max(self.rules[i].n, 1.0)
                ),
                -self.rules[i].n,
                i,
            ),
        )

    def predict_encoded(self, encoded: Mapping[str, float]) -> Prediction:
        dataset = self._require_fitted()
        assert self._bucketizer is not None and self._global_counts is not None
        labels = dataset.class_encoder.labels
        buckets = {
            name: self._bucketizer.bucket_of(name, encoded[name])
            for name in dataset.base_attrs
        }
        matching = [rule for rule in self.rules if rule.matches(buckets)]
        if matching:
            best = max(
                matching,
                key=lambda rule: (
                    float(rule.counts[rule.target_code]) / max(rule.n, 1.0),
                    rule.n,
                ),
            )
            counts = best.counts
        else:
            counts = self._global_counts
        n = float(counts.sum())
        if n <= 0:
            return Prediction(np.full(len(labels), 1.0 / len(labels)), 0.0, labels)
        return Prediction(counts / n, n, labels)

    def predict_batch(
        self,
        columns: Mapping[str, np.ndarray],
        *,
        n_rows: Optional[int] = None,
    ) -> BatchPrediction:
        dataset = self._require_fitted()
        assert self._bucketizer is not None and self._global_counts is not None
        labels = dataset.class_encoder.labels
        length = batch_length(columns, n_rows)
        buckets = {
            name: self._bucketizer.buckets_of_column(name, columns[name])
            for name in dataset.base_attrs
        }
        counts = np.tile(self._global_counts, (length, 1))
        # assign each row the best matching rule, mirroring the row path's
        # max() over (precision, support): rules visited best-first, ties
        # broken by original rule order, first match per row wins
        order = self.batch_rule_order()
        unassigned = np.ones(length, dtype=bool)
        for index in order:
            if not unassigned.any():
                break
            rule = self.rules[index]
            matches = unassigned.copy()
            for name, bucket in rule.conditions:
                matches &= buckets[name] == bucket
            if matches.any():
                counts[matches] = rule.counts
                unassigned &= ~matches
        return _counts_to_batch(counts, labels)

    def __repr__(self) -> str:
        return f"PrismClassifier(rules={len(self.rules)})"
