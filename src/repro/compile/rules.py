"""1R / PRISM → SQL compilation (disjunctive bucket conditions).

Both rule inducers predict from a finite family of count vectors keyed
by *bucket* indices (:func:`repro.compile.expressions.bucket_expr`
reproduces the ``_Bucketizer`` encoding in SQL):

* **1R** — the group is simply the chosen attribute's bucket; the count
  matrix is the fitted bucket table with empty buckets replaced by the
  global counts, exactly as
  :meth:`~repro.mining.rule_induction.OneRClassifier.predict_batch`
  does before normalizing.
* **PRISM** — the rules are replayed as one ``CASE`` chain in
  :meth:`~repro.mining.rule_induction.PrismClassifier.batch_rule_order`
  (precision desc, support desc, original index), each arm the
  conjunction of its ``bucket = k`` conditions over per-attribute
  bucket aliases; the ``ELSE`` arm is the global-counts group that
  claims unmatched rows.

**Parity argument.** Every clean row's prediction is a pure function of
its group's count vector; the per-group batch distributions are rebuilt
here through the same
:func:`~repro.mining.rule_induction._counts_to_batch` normalization the
classifiers call, so the precomputed *(group, observed)* confidence keys
match the in-memory audit bit for bit (see
:mod:`repro.compile.screen`).
"""

from __future__ import annotations

import numpy as np

from repro.compile.expressions import SqlBuilder, bucket_expr
from repro.compile.screen import (
    FamilyScreen,
    NotCompilable,
    flagged_pair_keys,
    pair_suspect_sql,
)
from repro.mining.rule_induction import _counts_to_batch

__all__ = ["compile_one_r", "compile_prism"]


def compile_one_r(
    builder: SqlBuilder, classifier, config, obs_ref: str
) -> FamilyScreen:
    """Compile a fitted :class:`~repro.mining.rule_induction.OneRClassifier`
    into a :class:`~repro.compile.screen.FamilyScreen`."""
    dataset = classifier.dataset
    if dataset is None or classifier.global_counts is None:
        raise NotCompilable("1R classifier is not fitted")
    labels = dataset.class_encoder.labels
    if classifier.attribute is None or classifier.bucket_counts is None:
        # degenerate model: every row predicts the global distribution
        counts = np.asarray(classifier.global_counts, dtype=float)[None, :]
        group_sql = "0"
    else:
        counts = np.asarray(classifier.bucket_counts, dtype=float).copy()
        empty = counts.sum(axis=1) <= 0
        counts[empty] = classifier.global_counts
        encoder = dataset.encoders[classifier.attribute]
        expr = bucket_expr(
            builder,
            encoder.attribute,
            encoder,
            classifier.bucket_discretizer(classifier.attribute),
        )
        # predict_batch clamps buckets into the fitted table
        group_sql = f"MIN({expr}, {counts.shape[0] - 1})"
    batch = _counts_to_batch(counts, labels)
    keys = flagged_pair_keys(batch.probabilities, batch.support, config)
    group_ref = builder.dialect.quote("__audit_grp")
    return FamilyScreen(
        suspect_sql=pair_suspect_sql(group_ref, obs_ref, len(labels), keys),
        levels=[[("__audit_grp", group_sql)]],
    )


def compile_prism(
    builder: SqlBuilder, classifier, config, obs_ref: str
) -> FamilyScreen:
    """Compile a fitted :class:`~repro.mining.rule_induction.PrismClassifier`
    into a :class:`~repro.compile.screen.FamilyScreen`."""
    dataset = classifier.dataset
    if dataset is None or classifier.global_counts is None:
        raise NotCompilable("PRISM classifier is not fitted")
    labels = dataset.class_encoder.labels
    # level 0: one bucket alias per attribute any rule conditions on
    used: list[str] = []
    for rule in classifier.rules:
        for name, _bucket in rule.conditions:
            if name not in used:
                used.append(name)
    bucket_aliases: list[tuple[str, str]] = []
    bucket_refs: dict[str, str] = {}
    for index, name in enumerate(used):
        encoder = dataset.encoders[name]
        alias = f"__audit_b{index}"
        bucket_aliases.append(
            (
                alias,
                bucket_expr(
                    builder,
                    encoder.attribute,
                    encoder,
                    classifier.bucket_discretizer(name),
                ),
            )
        )
        bucket_refs[name] = builder.dialect.quote(alias)
    # level 1: the rule chain, first match wins in batch order
    counts_rows: list[np.ndarray] = []
    arms: list[str] = []
    for index in classifier.batch_rule_order():
        rule = classifier.rules[index]
        condition = " AND ".join(
            f"{bucket_refs[name]} = {bucket}" for name, bucket in rule.conditions
        )
        counts_rows.append(np.asarray(rule.counts, dtype=float))
        arms.append(f"WHEN {condition or '1'} THEN {len(counts_rows) - 1}")
    counts_rows.append(np.asarray(classifier.global_counts, dtype=float))
    default_group = len(counts_rows) - 1
    if arms:
        group_sql = "CASE " + " ".join(arms) + f" ELSE {default_group} END"
    else:
        group_sql = str(default_group)
    batch = _counts_to_batch(np.vstack(counts_rows), labels)
    keys = flagged_pair_keys(batch.probabilities, batch.support, config)
    levels = [[("__audit_grp", group_sql)]]
    if bucket_aliases:
        levels = [bucket_aliases, [("__audit_grp", group_sql)]]
    group_ref = builder.dialect.quote("__audit_grp")
    return FamilyScreen(
        suspect_sql=pair_suspect_sql(group_ref, obs_ref, len(labels), keys),
        levels=levels,
    )
