"""Naive Bayes classifier — one of the alternatives evaluated in sec. 5.

Nominal base attributes use smoothed frequency tables; ordered base
attributes are discretized into equal-frequency bins at fit time (keeping
the whole model categorical, as the MLC++-era implementations the paper
compared against did). Missing base values are simply skipped in the
likelihood product.

The support ``n`` reported for Def. 7's error confidence is the training
set size — a naive Bayes prediction rests on the full table rather than a
leaf subset, which is precisely why its error confidences are poorly
calibrated for auditing (one of the reasons the paper selected C4.5).
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

import numpy as np

from repro.mining.base import (
    AttributeClassifier,
    BatchPrediction,
    Prediction,
    batch_length,
)
from repro.mining.dataset import Dataset
from repro.mining.discretize import EqualFrequencyDiscretizer

__all__ = ["NaiveBayesClassifier"]


class NaiveBayesClassifier(AttributeClassifier):
    """Smoothed categorical naive Bayes (see module docstring)."""

    def __init__(self, *, smoothing: float = 1.0, n_bins: int = 8):
        super().__init__()
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        if n_bins < 2:
            raise ValueError("n_bins must be at least 2")
        self.smoothing = smoothing
        self.n_bins = n_bins
        self._priors: Optional[np.ndarray] = None
        self._tables: dict[str, np.ndarray] = {}
        self._discretizers: dict[str, EqualFrequencyDiscretizer] = {}
        self._n_training: float = 0.0

    def fit(self, dataset: Dataset) -> None:
        self.dataset = dataset
        n_labels = dataset.n_labels
        y = dataset.y
        class_counts = np.bincount(y, minlength=n_labels).astype(float)
        self._n_training = float(dataset.n_rows)
        self._priors = (class_counts + self.smoothing) / (
            class_counts.sum() + self.smoothing * n_labels
        )
        self._tables = {}
        self._discretizers = {}
        for name in dataset.base_attrs:
            encoder = dataset.encoders[name]
            column = dataset.columns[name]
            if encoder.categorical:
                known = column >= 0
                n_values = encoder.n_categories
                codes = column[known]
            else:
                known = ~np.isnan(column)
                values = column[known]
                if values.size == 0:
                    continue
                bins = max(2, min(self.n_bins, len(np.unique(values))))
                discretizer = EqualFrequencyDiscretizer(bins).fit(values)
                self._discretizers[name] = discretizer
                codes = discretizer.transform(values)
                n_values = discretizer.n_bins
            joint = np.bincount(
                y[known] * n_values + codes,
                minlength=n_labels * n_values,
            ).reshape(n_labels, n_values).astype(float)
            likelihood = (joint + self.smoothing) / (
                joint.sum(axis=1, keepdims=True) + self.smoothing * n_values
            )
            self._tables[name] = likelihood

    def fit_state(self) -> dict:
        """Canonical fitted state (see
        :meth:`AttributeClassifier.fit_state
        <repro.mining.base.AttributeClassifier.fit_state>`)."""
        dataset = self._require_fitted()
        assert self._priors is not None
        return {
            "type": "naive-bayes",
            "class_encoder": dataset.class_encoder.to_state(),
            "priors": self._priors.tolist(),
            "tables": {name: table.tolist() for name, table in self._tables.items()},
            "discretizers": {
                name: discretizer.to_state()
                for name, discretizer in self._discretizers.items()
            },
            "n_training": self._n_training,
        }

    @property
    def priors(self) -> Optional[np.ndarray]:
        """Smoothed class priors (``(n_labels,)``), or ``None`` before
        fitting. Read-only model state for rule extraction
        (:mod:`repro.compile`)."""
        return self._priors

    @property
    def n_training(self) -> float:
        """Training-set size — the support every prediction reports."""
        return self._n_training

    def likelihood_tables(self) -> dict[str, np.ndarray]:
        """The per-attribute smoothed likelihood tables
        (``(n_labels, n_values)``), in the exact order
        :meth:`predict_batch` multiplies the factors. Treat as
        read-only."""
        return dict(self._tables)

    def bin_discretizer(self, name: str) -> Optional[EqualFrequencyDiscretizer]:
        """The fitted equal-frequency discretizer binning ordered
        attribute *name*, or ``None`` for categorical attributes (an
        ordered attribute with a likelihood table always has one)."""
        return self._discretizers.get(name)

    def predict_encoded(self, encoded: Mapping[str, float]) -> Prediction:
        dataset = self._require_fitted()
        assert self._priors is not None
        log_posterior = np.log(self._priors)
        for name, likelihood in self._tables.items():
            raw = encoded[name]
            encoder = dataset.encoders[name]
            if encoder.categorical:
                code = int(raw)
                if code < 0:
                    continue  # missing value: skip the factor
                code = min(code, likelihood.shape[1] - 1)
            else:
                if math.isnan(raw):
                    continue
                code = self._discretizers[name].transform_value(raw)
            log_posterior = log_posterior + np.log(likelihood[:, code])
        log_posterior -= log_posterior.max()
        posterior = np.exp(log_posterior)
        posterior /= posterior.sum()
        return Prediction(posterior, self._n_training, dataset.class_encoder.labels)

    def predict_batch(
        self,
        columns: Mapping[str, np.ndarray],
        *,
        n_rows: Optional[int] = None,
    ) -> BatchPrediction:
        dataset = self._require_fitted()
        assert self._priors is not None
        length = batch_length(columns, n_rows)
        log_posterior = np.tile(np.log(self._priors), (length, 1))
        for name, likelihood in self._tables.items():
            raw = columns[name]
            encoder = dataset.encoders[name]
            if encoder.categorical:
                known = raw >= 0  # missing values skip the factor
                codes = np.minimum(raw[known], likelihood.shape[1] - 1)
            else:
                known = ~np.isnan(raw)
                codes = self._discretizers[name].transform(raw[known])
            log_posterior[known] += np.log(likelihood[:, codes]).T
        log_posterior -= log_posterior.max(axis=1, keepdims=True)
        posterior = np.exp(log_posterior)
        posterior /= posterior.sum(axis=1, keepdims=True)
        support = np.full(length, self._n_training, dtype=float)
        return BatchPrediction(posterior, support, dataset.class_encoder.labels)

    def __repr__(self) -> str:
        fitted = "fitted" if self._priors is not None else "unfitted"
        return f"NaiveBayesClassifier(smoothing={self.smoothing}, {fitted})"
