#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation (used by CI).

Checks every inline markdown link (``[text](target)``) in the given
files:

* relative links must resolve to an existing file or directory
  (anchors are stripped; pure-anchor links are checked against the
  current file's headings);
* ``http(s)``/``mailto`` links are *not* fetched — offline CI must not
  flake on the network — but are counted so the summary shows what was
  skipped.

Exit code 0 when every link resolves, 1 otherwise (each broken link is
reported on its own line as ``file:line: message``).

Usage::

    python tools/check_links.py README.md ROADMAP.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline markdown links; images share the syntax bar a leading ``!``
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def _anchor_of(heading: str) -> str:
    """GitHub's heading→anchor slug (lowercase, spaces→dashes, drop
    everything that is not a word character or dash)."""
    slug = heading.strip().lower().replace(" ", "-")
    return re.sub(r"[^\w\-]", "", slug)


def _anchors(path: Path) -> set[str]:
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            anchors.add(_anchor_of(match.group(1)))
    return anchors


def check_file(path: Path) -> tuple[list[str], int, int]:
    """Returns (errors, n_checked, n_skipped_external) for one file."""
    errors: list[str] = []
    checked = skipped = 0
    in_fence = False
    for line_no, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                skipped += 1
                continue
            checked += 1
            if target.startswith("#"):
                if _anchor_of(target[1:]) not in _anchors(path):
                    errors.append(
                        f"{path}:{line_no}: broken anchor {target!r}"
                    )
                continue
            relative, _, anchor = target.partition("#")
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                errors.append(
                    f"{path}:{line_no}: broken link {target!r} "
                    f"(resolved to {resolved})"
                )
            elif anchor and resolved.suffix == ".md":
                if _anchor_of(anchor) not in _anchors(resolved):
                    errors.append(
                        f"{path}:{line_no}: broken anchor "
                        f"{target!r} (no such heading in {relative})"
                    )
    return errors, checked, skipped


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    all_errors: list[str] = []
    total_checked = total_skipped = 0
    for name in argv:
        path = Path(name)
        if not path.exists():
            all_errors.append(f"{path}: file not found")
            continue
        errors, checked, skipped = check_file(path)
        all_errors.extend(errors)
        total_checked += checked
        total_skipped += skipped
    for error in all_errors:
        print(error)
    print(
        f"checked {total_checked} relative links in {len(argv)} files "
        f"({total_skipped} external links skipped): "
        f"{'OK' if not all_errors else f'{len(all_errors)} broken'}"
    )
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
