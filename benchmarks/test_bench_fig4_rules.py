"""E2 / Figure 4 — influence of the number of rules on sensitivity.

Paper: "the more constraints are imposed on the data the easier it is to
identify errors based on deviation detection", yet even highly regular
data does not exceed ≈0.3 because tree paths cannot express every
TDG-rule. Expected shape: rising in the rule count, flattening, never
approaching 1.

Two reproduction notes (details in EXPERIMENTS.md):

* even at 0 rules the base profile retains the multivariate Bayesian-
  network start distribution, whose dependencies are themselves learnable
  structure — the 0-rule sensitivity is therefore low but not zero;
* the natural-rule-set space over the 8-attribute base schema saturates
  (the generator's naturalness + consistency checks reject candidates),
  so large requested counts converge to the same maximal rule set — the
  plateau the paper attributes to the expressiveness limit of tree paths
  shows up here as saturation of both structure and detection.
"""

from repro.testenv import ExperimentConfig, sweep_rules

RULE_GRID = (0, 10, 25, 50, 100, 200)
BASE = ExperimentConfig(n_records=6000)


def test_fig4_sensitivity_vs_rules(benchmark, environment, record_table):
    points = benchmark.pedantic(
        lambda: sweep_rules(RULE_GRID, base=BASE, environment=environment),
        rounds=1,
        iterations=1,
    )
    lines = [
        "E2 / Figure 4 — sensitivity vs. number of rules "
        "(6000 records, pollution factor 1, min confidence 80%)",
        f"{'requested':>10}  {'actual':>6}  sensitivity  specificity  precision",
    ]
    for x, result in points:
        actual = len(environment.profile_for(int(x), BASE.profile_seed).rules)
        evaluation = result.evaluation
        lines.append(
            f"{int(x):>10}  {actual:>6}  {evaluation.sensitivity:>11.3f}  "
            f"{evaluation.specificity:>11.4f}  {evaluation.records.precision:>9.3f}"
        )
    record_table("E2_fig4_rules", "\n".join(lines))

    sensitivities = [result.sensitivity for _, result in points]
    # structure strength drives detection: the strongest rule sets beat the
    # rule-free baseline by a wide margin …
    assert max(sensitivities) > sensitivities[0] + 0.1
    assert sensitivities[-1] > sensitivities[0]
    # … monotone-ish rise (each point at least as good as 0-rule baseline)
    assert all(s >= sensitivities[0] - 0.03 for s in sensitivities[1:])
    # … but far from total recall (the paper's plateau argument)
    assert max(sensitivities) < 0.8
