"""The docs must stay linked and link-clean.

Runs the CI markdown link checker (``tools/check_links.py``) over the
repo's documentation in-process, and pins the PR-3 acceptance criteria:
the docs tree exists and is reachable from the README.
"""

import re
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = [
    REPO / "README.md",
    REPO / "ROADMAP.md",
    REPO / "docs" / "architecture.md",
    REPO / "docs" / "api.md",
]

sys.path.insert(0, str(REPO / "tools"))
from check_links import check_file  # noqa: E402


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_exists(path):
    assert path.exists(), f"{path} is part of the documented surface"


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_no_broken_links(path):
    errors, checked, _ = check_file(path)
    assert errors == []


def test_readme_links_the_docs_tree():
    text = (REPO / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in text
    assert "docs/api.md" in text


def test_docs_cover_the_cli_flags():
    """Every flag the audit CLI accepts appears in the README reference
    table — documentation must not lag the parser."""
    from repro.cli import build_parser

    readme = (REPO / "README.md").read_text(encoding="utf-8")
    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if hasattr(action, "choices") and action.choices
    )
    for name, sub in subparsers.choices.items():
        for action in sub._actions:
            for option in action.option_strings:
                if option.startswith("--") and option != "--help":
                    assert option in readme, (
                        f"repro {name} {option} is undocumented in README.md"
                    )


def test_architecture_documents_the_parallel_path():
    text = (REPO / "docs" / "architecture.md").read_text(encoding="utf-8")
    for needle in ("n_jobs", "ColumnCache", "bit-identical", "merge"):
        assert re.search(needle, text), f"architecture.md lost {needle!r}"
