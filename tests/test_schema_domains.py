"""Tests for attribute domains (nominal, numeric, date)."""

import datetime
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.schema import AttributeKind, DateDomain, NominalDomain, NumericDomain


class TestNominalDomain:
    def test_preserves_order_and_size(self):
        domain = NominalDomain(["c", "a", "b"])
        assert domain.values == ("c", "a", "b")
        assert domain.size == 3
        assert domain.index_of("a") == 1

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            NominalDomain(["a", "a"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            NominalDomain([])

    def test_rejects_non_string_values(self):
        with pytest.raises(TypeError):
            NominalDomain(["a", 3])

    def test_contains(self):
        domain = NominalDomain(["a", "b"])
        assert domain.contains("a")
        assert not domain.contains("z")
        assert not domain.contains(1)
        assert None not in domain  # __contains__ treats null as absent

    def test_index_of_unknown_value_raises(self):
        with pytest.raises(ValueError):
            NominalDomain(["a"]).index_of("b")

    def test_numeric_view_roundtrip(self):
        domain = NominalDomain(["a", "b", "c"])
        for value in domain:
            assert domain.from_number(domain.to_number(value)) == value

    def test_sample_uniform_stays_in_domain(self):
        domain = NominalDomain(["a", "b", "c"])
        rng = random.Random(1)
        samples = {domain.sample_uniform(rng) for _ in range(100)}
        assert samples <= set(domain.values)
        assert len(samples) == 3  # all values reachable

    def test_equality_and_hash(self):
        assert NominalDomain(["a", "b"]) == NominalDomain(["a", "b"])
        assert NominalDomain(["a", "b"]) != NominalDomain(["b", "a"])
        assert hash(NominalDomain(["a"])) == hash(NominalDomain(["a"]))

    def test_kind(self):
        assert NominalDomain(["a"]).kind is AttributeKind.NOMINAL


class TestNumericDomain:
    def test_bounds_inclusive(self):
        domain = NumericDomain(0, 10)
        assert domain.contains(0) and domain.contains(10)
        assert not domain.contains(-0.001) and not domain.contains(10.001)

    def test_integer_domain_excludes_fractions(self):
        domain = NumericDomain(0, 10, integer=True)
        assert domain.contains(5)
        assert not domain.contains(5.5)
        assert domain.contains(5.0)  # integral float admitted

    def test_rejects_bool(self):
        assert not NumericDomain(0, 1).contains(True)
        with pytest.raises(TypeError):
            NumericDomain(True, 1)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            NumericDomain(5, 4)

    def test_sample_uniform_in_bounds(self):
        domain = NumericDomain(2, 7, integer=True)
        rng = random.Random(2)
        for _ in range(50):
            value = domain.sample_uniform(rng)
            assert domain.contains(value)
            assert isinstance(value, int)

    def test_from_number_clamps(self):
        domain = NumericDomain(0, 10, integer=True)
        assert domain.from_number(-3.0) == 0
        assert domain.from_number(99.0) == 10
        assert domain.from_number(4.4) == 4

    @given(st.floats(min_value=-5, max_value=5, allow_nan=False))
    def test_float_roundtrip_within_bounds(self, x):
        domain = NumericDomain(-5.0, 5.0)
        assert domain.contains(domain.from_number(x))


class TestDateDomain:
    def test_bounds(self):
        domain = DateDomain(datetime.date(2000, 1, 1), datetime.date(2000, 12, 31))
        assert domain.contains(datetime.date(2000, 6, 1))
        assert not domain.contains(datetime.date(1999, 12, 31))
        assert domain.n_days == 366  # 2000 is a leap year

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            DateDomain(datetime.date(2001, 1, 1), datetime.date(2000, 1, 1))

    def test_rejects_non_dates(self):
        with pytest.raises(TypeError):
            DateDomain("2000-01-01", datetime.date(2000, 2, 1))

    def test_numeric_view_is_ordinal(self):
        domain = DateDomain(datetime.date(2000, 1, 1), datetime.date(2000, 12, 31))
        d = datetime.date(2000, 3, 15)
        assert domain.to_number(d) == float(d.toordinal())
        assert domain.from_number(domain.to_number(d)) == d

    def test_from_number_clamps_to_domain(self):
        domain = DateDomain(datetime.date(2000, 1, 1), datetime.date(2000, 1, 31))
        assert domain.from_number(0.0) == datetime.date(2000, 1, 1)

    def test_sample_uniform_in_bounds(self):
        domain = DateDomain(datetime.date(2000, 1, 1), datetime.date(2000, 1, 10))
        rng = random.Random(3)
        values = {domain.sample_uniform(rng) for _ in range(200)}
        assert all(domain.contains(v) for v in values)
        assert len(values) == 10  # every day reachable

    def test_kind_is_ordered(self):
        domain = DateDomain(datetime.date(2000, 1, 1), datetime.date(2000, 1, 2))
        assert domain.kind is AttributeKind.DATE
        assert domain.kind.is_ordered
