"""The test environment of fig. 2: generate → pollute → audit → evaluate.

*"[The test environment] generates artificial data that simulate
structural characteristics of the application database, pollutes this data
in a controlled and logged procedure, runs the data auditing tool and
evaluates its performance by comparing the deviations of the dirty from
the clean database with the detected errors."*
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.auditor import AuditorConfig
from repro.core.findings import AuditReport
from repro.core.session import AuditSession
from repro.generator.profiles import GeneratorProfile, base_profile
from repro.generator.rulegen import RuleGenerationConfig
from repro.pollution.log import PollutionLog
from repro.pollution.pipeline import PollutionPipeline, default_polluters
from repro.pollution.polluters import Polluter
from repro.schema.table import Table
from repro.testenv.metrics import EvaluationResult, evaluate_audit

__all__ = ["ExperimentConfig", "ExperimentResult", "TestEnvironment", "run_experiment"]


@dataclass
class ExperimentConfig:
    """One benchmark run's parameters (the knobs of sec. 6.1)."""

    n_records: int = 10_000
    n_rules: int = 100
    pollution_factor: float = 1.0
    #: the default profile seed is the calibrated one used throughout the
    #: benches; the paper does not publish its generator seeds, so seeds
    #: were screened for a rule set whose operating point matches the
    #: reported sensitivity/specificity band (see EXPERIMENTS.md)
    profile_seed: int = 42
    data_seed: int = 1
    pollution_seed: int = 2
    auditor: AuditorConfig = field(default_factory=AuditorConfig)
    polluter_factory: Callable[[], Sequence[Polluter]] = default_polluters
    #: optional rule-shape override (e.g. conjunctive premises for the
    #: classifier-selection experiment)
    rule_config: Optional[RuleGenerationConfig] = None
    #: worker processes for the audit phase (1 = serial, -1 = all cores);
    #: results are bit-identical across job counts, so sweeps may choose
    #: whatever the machine affords
    n_jobs: int = 1
    #: worker processes for structure induction (one audited attribute's
    #: classifier per task); the fitted model is byte-identical across
    #: job counts, so throughput sweeps may scale this freely
    fit_n_jobs: int = 1
    #: model-registry directory for the two pinning knobs below
    #: (:class:`~repro.registry.ModelRegistry` root or path)
    registry_dir: Optional[str] = None
    #: skip structure induction and audit with this pinned registry
    #: version (``name``, ``name@v3``, ``name@tag``) — how a benchmark
    #: reruns against the *exact* model an earlier run produced
    model_ref: Optional[str] = None
    #: after fitting, register the model under this name (the next
    #: version), so the run's model is pinnable by later experiments
    register_model_as: Optional[str] = None
    #: ingest representation for the fit and audit phases: ``"rows"``
    #: (default) feeds the in-memory row-major table; ``"columns"``
    #: pivots it through a :class:`~repro.io.ColumnBatch` first, timing
    #: the columnar hot path; results are byte-identical either way
    io_path: str = "rows"

    def describe(self) -> str:
        return (
            f"records={self.n_records} rules={self.n_rules} "
            f"factor={self.pollution_factor} minConf={self.auditor.min_error_confidence:.0%}"
        )


@dataclass
class ExperimentResult:
    """Everything one fig.-2 cycle produced."""

    config: ExperimentConfig
    evaluation: EvaluationResult
    report: AuditReport
    log: PollutionLog
    clean: Table
    dirty: Table
    generate_seconds: float
    pollute_seconds: float
    fit_seconds: float
    audit_seconds: float

    @property
    def sensitivity(self) -> float:
        return self.evaluation.sensitivity

    @property
    def specificity(self) -> float:
        return self.evaluation.specificity

    def summary(self) -> str:
        return (
            f"[{self.config.describe()}] {self.evaluation.summary()} "
            f"(gen {self.generate_seconds:.1f}s, fit {self.fit_seconds:.1f}s, "
            f"audit {self.audit_seconds:.1f}s)"
        )


class TestEnvironment:
    """Reusable fig.-2 pipeline around a fixed generator profile.

    Profiles (schema + rule set + start distributions) are cached per
    ``(n_rules, profile_seed)`` so parameter sweeps do not regenerate the
    rule set for every point.
    """

    __test__ = False  # not a pytest case despite the Test* name

    def __init__(self) -> None:
        self._profiles: dict[tuple, GeneratorProfile] = {}

    def profile_for(
        self,
        n_rules: int,
        profile_seed: int,
        rule_config: Optional[RuleGenerationConfig] = None,
    ) -> GeneratorProfile:
        key = (
            n_rules,
            profile_seed,
            dataclasses.astuple(rule_config) if rule_config is not None else None,
        )
        if key not in self._profiles:
            self._profiles[key] = base_profile(
                n_rules=n_rules, seed=profile_seed, rule_config=rule_config
            )
        return self._profiles[key]

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        """One full generate → pollute → fit → audit → evaluate cycle."""
        profile = self.profile_for(
            config.n_rules, config.profile_seed, config.rule_config
        )

        started = time.perf_counter()
        generator = profile.build_generator()
        clean = generator.generate(config.n_records, random.Random(config.data_seed))
        generate_seconds = time.perf_counter() - started

        started = time.perf_counter()
        pipeline = PollutionPipeline(
            list(config.polluter_factory()), factor=config.pollution_factor
        )
        dirty, log = pipeline.apply(clean, random.Random(config.pollution_seed))
        pollute_seconds = time.perf_counter() - started

        if config.io_path == "columns":
            from repro.io.columnar import ColumnBatch

            staged = ColumnBatch.from_table(dirty)
        elif config.io_path == "rows":
            staged = dirty
        else:
            raise ValueError(
                f"io_path must be 'rows' or 'columns', got {config.io_path!r}"
            )

        if config.model_ref is not None:
            # pinned model: reuse the registry version instead of refitting —
            # the experiment then measures the audit of *that* model
            if config.registry_dir is None:
                raise ValueError("model_ref requires registry_dir")
            session = AuditSession.load_from_registry(
                config.registry_dir, config.model_ref
            )
            if session.schema != profile.schema:
                raise ValueError(
                    f"pinned model {config.model_ref!r} was induced for a "
                    f"different schema than this experiment's profile"
                )
            fit_seconds = 0.0
        else:
            session = AuditSession(profile.schema, config.auditor)
            started = time.perf_counter()
            session.fit(staged, n_jobs=config.fit_n_jobs)
            fit_seconds = time.perf_counter() - started
            if config.register_model_as is not None:
                if config.registry_dir is None:
                    raise ValueError("register_model_as requires registry_dir")
                from repro.registry import Provenance

                session.save_to_registry(
                    config.registry_dir,
                    config.register_model_as,
                    provenance=Provenance(
                        source=f"testenv://experiment/{config.describe()}",
                        n_rows=dirty.n_rows,
                        fit_seconds=fit_seconds,
                    ),
                )

        started = time.perf_counter()
        report = session.audit(staged, n_jobs=config.n_jobs)
        audit_seconds = time.perf_counter() - started

        evaluation = evaluate_audit(report, log, clean, dirty)
        return ExperimentResult(
            config=config,
            evaluation=evaluation,
            report=report,
            log=log,
            clean=clean,
            dirty=dirty,
            generate_seconds=generate_seconds,
            pollute_seconds=pollute_seconds,
            fit_seconds=fit_seconds,
            audit_seconds=audit_seconds,
        )


def run_experiment(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Convenience wrapper: one cycle with a fresh environment."""
    return TestEnvironment().run(config or ExperimentConfig())
