"""The domain-driven calibration loop of figure 1.

*"Based on this, different data mining-algorithms for structure induction
and deviation detection can be tested and, if necessary, adjusted. This
process can be iterated until satisfactory benchmark results are
obtained."*

:func:`calibrate` plays the role of the data-mining expert in that loop:
it benchmarks a set of candidate auditing-tool configurations (classifier
family, interval confidence, minimal error confidence …) on artificial
test data and ranks them — by default maximizing sensitivity subject to a
specificity floor, the trade-off sec. 4.3 discusses (screening tools want
sensitivity, load filters want specificity).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.auditor import AuditorConfig
from repro.testenv.experiment import ExperimentConfig, ExperimentResult, TestEnvironment

__all__ = ["Candidate", "CalibrationOutcome", "calibrate", "default_candidates"]


@dataclass
class Candidate:
    """One auditing-tool configuration under evaluation."""

    name: str
    auditor: AuditorConfig


@dataclass
class CalibrationOutcome:
    """Benchmark results of one candidate."""

    candidate: Candidate
    result: ExperimentResult

    @property
    def sensitivity(self) -> float:
        return self.result.sensitivity

    @property
    def specificity(self) -> float:
        return self.result.specificity

    def summary(self) -> str:
        return (
            f"{self.candidate.name:<32} sensitivity={self.sensitivity:.3f} "
            f"specificity={self.specificity:.4f} "
            f"fit={self.result.fit_seconds:.1f}s audit={self.result.audit_seconds:.1f}s"
        )


def default_candidates(min_error_confidence: float = 0.8) -> list[Candidate]:
    """A small default grid over the interval confidence level."""
    from repro.mining.intervals import ConfidenceBounds

    return [
        Candidate(
            f"adjusted-C4.5 bounds={confidence:.2f}",
            AuditorConfig(
                min_error_confidence=min_error_confidence,
                bounds=ConfidenceBounds(confidence),
            ),
        )
        for confidence in (0.85, 0.90, 0.95, 0.99)
    ]


def calibrate(
    candidates: Sequence[Candidate],
    base: Optional[ExperimentConfig] = None,
    *,
    specificity_floor: float = 0.98,
    environment: Optional[TestEnvironment] = None,
    score: Optional[Callable[[CalibrationOutcome], float]] = None,
) -> list[CalibrationOutcome]:
    """Benchmark every candidate on the same artificial data and rank.

    The default score maximizes sensitivity among candidates meeting the
    specificity floor; candidates below the floor sort behind all
    compliant ones (ordered by specificity). Returns outcomes best-first.
    """
    base = base or ExperimentConfig()
    environment = environment or TestEnvironment()
    outcomes = []
    for candidate in candidates:
        config = dataclasses.replace(base, auditor=candidate.auditor)
        outcomes.append(CalibrationOutcome(candidate, environment.run(config)))

    if score is None:

        def score(outcome: CalibrationOutcome) -> float:
            if outcome.specificity >= specificity_floor:
                return 1.0 + outcome.sensitivity
            return outcome.specificity

    outcomes.sort(key=score, reverse=True)
    return outcomes
