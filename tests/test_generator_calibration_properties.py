"""Pinning tests for the generator calibrations documented in DESIGN.md:
the Bayesian-network skew cap and the rule-coverage estimates. These
behaviours keep the benchmark data inside the paper's operating band
(specificity ≈ 99 %), so regressions here silently distort every figure."""

import random

import pytest

from repro.generator import BayesianNetwork, RuleGenerationConfig, base_profile
from repro.generator.rulegen import RuleGenerator
from repro.logic import And, Eq, Gt, IsNull, Lt, Ne, Or
from repro.schema import Schema, nominal, numeric


@pytest.fixture
def schema():
    return Schema(
        [
            nominal("X", [f"x{i}" for i in range(5)]),
            nominal("Y", [f"y{i}" for i in range(8)]),
            numeric("N", 0, 100, integer=True),
        ]
    )


class TestBayesCap:
    def test_row_probabilities_capped(self, schema):
        rng = random.Random(1)
        net = BayesianNetwork.random(
            schema, ["X", "Y"], rng, concentration=0.1, max_row_probability=0.7
        )
        for name in net.nodes:
            parents = net.parents(name)
            # enumerate a few parent combinations
            combos = [()] if not parents else [
                (value,) for value in schema.attribute(parents[0]).domain.values
            ]
            for combo in combos:
                distribution = net.row_distribution(name, combo)
                assert max(distribution.values()) <= 0.7 + 1e-9

    def test_cap_below_uniform_yields_uniform(self, schema):
        rng = random.Random(2)
        net = BayesianNetwork.random(
            schema, ["X"], rng, max_row_probability=0.05
        )
        distribution = net.row_distribution("X", ())
        assert max(distribution.values()) == pytest.approx(0.2, abs=1e-9)

    def test_invalid_cap(self, schema):
        with pytest.raises(ValueError):
            BayesianNetwork.random(
                schema, ["X"], random.Random(3), max_row_probability=0.0
            )


class TestCoverageEstimates:
    def test_atom_estimates(self, schema):
        generator = RuleGenerator(schema)
        assert generator._atom_coverage(Eq("X", "x0")) == pytest.approx(0.2)
        assert generator._atom_coverage(Ne("X", "x0")) == pytest.approx(0.8)
        assert generator._atom_coverage(Lt("N", 25)) == pytest.approx(0.25)
        assert generator._atom_coverage(Gt("N", 75)) == pytest.approx(0.25)
        assert generator._atom_coverage(IsNull("X")) == pytest.approx(0.05)

    def test_conjunction_multiplies_disjunction_adds(self, schema):
        generator = RuleGenerator(schema)
        conj = And(Eq("X", "x0"), Lt("N", 50))
        disj = Or(Eq("X", "x0"), Eq("Y", "y0"))
        assert generator._formula_coverage(conj) == pytest.approx(0.2 * 0.5)
        assert generator._formula_coverage(disj) == pytest.approx(0.2 + 0.125)

    def test_generated_premises_respect_cap(self, schema):
        config = RuleGenerationConfig(max_premise_coverage=0.25)
        generator = RuleGenerator(schema, config)
        rules = generator.generate(20, random.Random(4))
        for rule in rules:
            assert generator._formula_coverage(rule.premise) <= 0.25 + 1e-9

    def test_pinned_coverage_bounds_value_pressure(self, schema):
        config = RuleGenerationConfig(max_pinned_coverage=0.3)
        generator = RuleGenerator(schema, config)
        rules = generator.generate(40, random.Random(5))
        pressure: dict[tuple[str, str], float] = {}
        for rule in rules:
            coverage = generator._formula_coverage(rule.premise)
            for pin in generator._pinned_values(rule.consequence):
                pressure[pin] = pressure.get(pin, 0.0) + coverage
        assert all(total <= 0.3 + 1e-9 for total in pressure.values())

    def test_invalid_caps(self):
        with pytest.raises(ValueError):
            RuleGenerationConfig(max_premise_coverage=0.0)
        with pytest.raises(ValueError):
            RuleGenerationConfig(max_pinned_coverage=1.5)
        with pytest.raises(ValueError):
            RuleGenerationConfig(min_premise_atoms=3, max_premise_atoms=2)


class TestProfileOperatingBand:
    def test_base_profile_marginals_not_degenerate(self):
        """The end-to-end guard: base-profile data must not contain
        near-degenerate marginals whose legitimate minorities would flood
        audits with false positives (see DESIGN.md)."""
        import collections

        from repro.schema import AttributeKind

        profile = base_profile(n_rules=60, seed=42)
        generator = profile.build_generator()
        table = generator.generate(3000, random.Random(6))
        for attribute in profile.schema.of_kind(AttributeKind.NOMINAL):
            counts = collections.Counter(
                v for v in table.column(attribute.name) if v is not None
            )
            top_share = counts.most_common(1)[0][1] / max(sum(counts.values()), 1)
            assert top_share < 0.85, f"{attribute.name} marginal collapsed: {top_share:.2f}"
