"""Tests for CSV serialization of tables."""

import datetime

import pytest

from repro.schema import (
    Schema,
    Table,
    date,
    nominal,
    numeric,
    read_csv,
    table_from_csv_text,
    table_to_csv_text,
    write_csv,
)


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            nominal("A", ["x", "y", "with,comma"]),
            numeric("N", 0, 100, integer=True),
            numeric("F", 0.0, 1.0),
            date("D", datetime.date(2000, 1, 1), datetime.date(2001, 1, 1)),
        ]
    )


@pytest.fixture
def table(schema) -> Table:
    return Table(
        schema,
        [
            ["x", 5, 0.25, datetime.date(2000, 3, 1)],
            ["with,comma", 99, 0.5, None],
            [None, None, None, datetime.date(2000, 12, 31)],
        ],
    )


def test_roundtrip_text(schema, table):
    text = table_to_csv_text(table)
    back = table_from_csv_text(schema, text)
    assert back == table


def test_roundtrip_file(tmp_path, schema, table):
    path = tmp_path / "data.csv"
    write_csv(table, path)
    back = read_csv(schema, path, validate=True)
    assert back == table


def test_header_written(table):
    text = table_to_csv_text(table)
    assert text.splitlines()[0] == "A,N,F,D"


def test_null_marker_customizable(schema, table):
    text = table_to_csv_text(table, null_marker="\\N")
    assert "\\N" in text
    back = table_from_csv_text(schema, text, null_marker="\\N")
    assert back == table


def test_reordered_columns_accepted(schema):
    text = "D,F,N,A\n2000-03-01,0.25,5,x\n"
    table = table_from_csv_text(schema, text)
    assert table.record(0).to_dict() == {
        "A": "x",
        "N": 5,
        "F": 0.25,
        "D": datetime.date(2000, 3, 1),
    }


def test_wrong_header_rejected(schema):
    with pytest.raises(ValueError, match="header"):
        table_from_csv_text(schema, "A,N,F\nx,1,0.5\n")


def test_empty_input_rejected(schema):
    with pytest.raises(ValueError, match="empty"):
        table_from_csv_text(schema, "")


def test_ragged_row_rejected(schema):
    with pytest.raises(ValueError, match="line 2"):
        table_from_csv_text(schema, "A,N,F,D\nx,1\n")


def test_dates_serialized_iso(schema, table):
    text = table_to_csv_text(table)
    assert "2000-03-01" in text


def test_integer_column_parsed_as_int(schema):
    table = table_from_csv_text(schema, "A,N,F,D\nx,7,0.5,2000-01-02\n")
    assert table.cell(0, "N") == 7
    assert isinstance(table.cell(0, "N"), int)


def test_validate_on_read(schema):
    with pytest.raises(ValueError):
        table_from_csv_text(schema, "A,N,F,D\nzzz,7,0.5,2000-01-02\n", validate=True)


@pytest.mark.parametrize(
    "spelling", ["nan", "NaN", "NAN", "inf", "-inf", "Infinity", "-Infinity", "1e999"]
)
def test_non_finite_numerics_rejected_at_parse(schema, spelling):
    """``float("nan")`` must not slip through the parser — the error is
    raised at the source and names the row and the attribute."""
    with pytest.raises(ValueError, match=r"line 2, attribute 'F'.*non-finite"):
        table_from_csv_text(schema, f"A,N,F,D\nx,1,{spelling},2000-01-02\n")


def test_non_finite_error_names_the_right_line(schema):
    text = "A,N,F,D\nx,1,0.5,2000-01-02\ny,2,inf,2000-01-03\n"
    with pytest.raises(ValueError, match="line 3"):
        table_from_csv_text(schema, text)


def test_nan_spelling_is_a_legal_nominal_value():
    from repro.schema import nominal as nominal_attr

    schema = Schema([nominal_attr("W", ["nan", "inf", "x"])])
    table = table_from_csv_text(schema, "W\nnan\ninf\n", validate=True)
    assert table.column("W") == ["nan", "inf"]
