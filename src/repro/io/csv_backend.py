"""CSV backend: header-checked, schema-driven text tables.

The historical format of the pipeline (and still the default). The
header row must name exactly the schema's attributes; column order in
the file may differ from schema order. Cells follow the canonical text
forms of :mod:`repro.io.cells`; nulls are a configurable marker
(``null_marker``, default: empty field).

Both ends accept a path or an open text stream — streams passed in by
the caller are left open on :meth:`close`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, TextIO, Union

from repro.io.base import TableSink, TableSource, open_text
from repro.io.cells import (
    DEFAULT_NULL_MARKER,
    convert_row,
    parse_cell,
    render_cell,
)
from repro.io.columnar import ColumnBatch, columns_from_rows, raise_row_errors
from repro.schema.schema import Schema
from repro.schema.types import Value

__all__ = ["CsvTableSource", "CsvTableSink"]


class CsvTableSource(TableSource):
    """Schema-driven CSV reader (path or text stream).

    Natively columnar: :meth:`column_batches` buffers the reader's own
    field lists and converts column-at-a-time — no per-row reorder list,
    no per-row converted list — with errors replayed row-wise for byte
    parity with the row path (:mod:`repro.io.columnar`).
    """

    supports_columns = True

    def __init__(
        self,
        schema: Schema,
        source: Union[str, Path, TextIO],
        *,
        null_marker: str = DEFAULT_NULL_MARKER,
    ):
        super().__init__(schema)
        self.null_marker = null_marker
        self._handle, self._owns_handle = open_text(source, "r", newline="")
        try:
            self._reader = csv.reader(self._handle)
            try:
                header = next(self._reader)
            except StopIteration:
                raise ValueError("CSV input is empty (missing header row)") from None
            if set(header) != set(schema.names):
                raise ValueError(
                    f"CSV header {header!r} does not match schema attributes "
                    f"{list(schema.names)!r}"
                )
            self._n_fields = len(header)
            self._order = [header.index(name) for name in schema.names]
        except Exception:
            self.close()
            raise

    def _iter_rows(self) -> Iterator[list[Value]]:
        names = self.schema.names
        order = self._order
        marker = self.null_marker
        converters = [
            lambda text, kind=a.kind, integer=getattr(a.domain, "integer", False): (
                parse_cell(text, kind, marker, integer)
            )
            for a in self.schema.attributes
        ]
        for line_no, fields in enumerate(self._reader, start=2):
            if len(fields) != self._n_fields:
                raise ValueError(
                    f"line {line_no}: expected {self._n_fields} fields, "
                    f"got {len(fields)}"
                )
            raw = [fields[src] for src in order]
            yield convert_row(f"line {line_no}", raw, converters, names)

    def _converters(self) -> list:
        marker = self.null_marker
        return [
            lambda text, kind=a.kind, integer=getattr(a.domain, "integer", False): (
                parse_cell(text, kind, marker, integer)
            )
            for a in self.schema.attributes
        ]

    def _iter_column_batches(self, batch_size: int):
        names = self.schema.names
        converters = self._converters()
        positions = self._order
        n_fields = self._n_fields
        buffered: list[list[str]] = []
        labels: list[str] = []

        def flush() -> ColumnBatch:
            cols = columns_from_rows(buffered, labels, names, converters, positions)
            batch = ColumnBatch(
                self.schema, dict(zip(names, cols)), len(buffered)
            )
            buffered.clear()
            labels.clear()
            return batch

        for line_no, fields in enumerate(self._reader, start=2):
            if len(fields) != n_fields:
                # surface any cell error in an earlier buffered row first
                # (the row path converts strictly in row order)
                raise_row_errors(buffered, labels, converters, names, positions)
                raise ValueError(
                    f"line {line_no}: expected {n_fields} fields, "
                    f"got {len(fields)}"
                )
            buffered.append(fields)
            labels.append(f"line {line_no}")
            if len(buffered) >= batch_size:
                yield flush()
        if buffered:
            yield flush()

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()


class CsvTableSink(TableSink):
    """CSV writer (path or text stream): header row, then data rows."""

    def __init__(
        self,
        schema: Schema,
        target: Union[str, Path, TextIO],
        *,
        null_marker: str = DEFAULT_NULL_MARKER,
    ):
        super().__init__(schema)
        self.null_marker = null_marker
        self._handle, self._owns_handle = open_text(target, "w", newline="")
        self._writer = csv.writer(self._handle)

    def _write_header(self) -> None:
        self._writer.writerow(self.schema.names)

    def _write_rows(self, rows: list[list[Value]]) -> None:
        kinds = [a.kind for a in self.schema.attributes]
        marker = self.null_marker
        self._writer.writerows(
            [render_cell(v, k, marker) for v, k in zip(row, kinds)] for row in rows
        )

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()
