"""Synthetic QUIS engine-composition substrate (paper secs. 3.2, 6.2)."""

from repro.quis.simulator import (
    QuisSample,
    generate_clean_quis,
    generate_quis_sample,
    quis_schema,
)

__all__ = [
    "QuisSample",
    "quis_schema",
    "generate_clean_quis",
    "generate_quis_sample",
]
