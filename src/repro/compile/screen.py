"""Common structures shared by the per-family model compilers.

A fitted classifier compiles into a :class:`FamilyScreen`: extra
SELECT-list aliases (possibly layered, when one alias must reference
another) plus one boolean *suspect* expression. A row is **suspect**
when the SQL side cannot certify that its Def.-7 error confidence for
this attribute stays below the configured threshold; suspect rows (and
rows with unclean storage, which the engine guards separately) are
returned to Python and re-audited through the exact in-memory code
path. The screens are deliberately *sound over-approximations*:
over-selection costs only a little Python work, while under-selection
would lose findings — the parity argument per family lives in its
module docstring.

The finite-group families (tree, 1R, PRISM) share the pair-key
construction: every row a group model can certify lands in one of
finitely many *(group, observed-class)* cells whose exact confidence is
precomputed here with the very same vectorized primitives the in-memory
audit runs (:func:`repro.mining.confidence.error_confidence_batch` over
the groups' count vectors), so the SQL ``IN`` filter and the in-memory
threshold test agree bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mining.confidence import error_confidence_batch

__all__ = [
    "NotCompilable",
    "FamilyScreen",
    "flagged_pair_keys",
    "pair_suspect_sql",
]


class NotCompilable(RuntimeError):
    """A fitted model (or audit configuration) has no SQL form.

    Raised by the compilers and by
    :func:`repro.compile.engine.audit_connection`; callers fall back to
    the in-memory batch path (:meth:`DataAuditor.audit
    <repro.core.auditor.DataAuditor.audit>` with ``engine="memory"``).
    """


@dataclass
class FamilyScreen:
    """One classifier's compiled screening expressions.

    Attributes
    ----------
    levels:
        Layered SELECT-list aliases ``(name, sql)``. Layer 0 may
        reference only table columns; layer *k* may additionally
        reference aliases of layers ``< k`` (each layer becomes one
        subquery nesting in the emitted statement).
    suspect_sql:
        Boolean SQL over table columns, the engine's ``__audit_obs``
        alias, and this screen's aliases: true when the row needs the
        Python re-check.
    """

    suspect_sql: str
    levels: list[list[tuple[str, str]]] = field(default_factory=list)


def flagged_pair_keys(
    probabilities: np.ndarray,
    support: np.ndarray,
    config,
) -> list[int]:
    """Keys ``group * n_labels + observed`` of every (group, observed)
    pair at or above the audit threshold.

    *probabilities* (``(n_groups, n_labels)``) and *support* must hold
    exactly the per-row values the classifier's ``predict_batch`` emits
    for rows of each group; the confidences then reproduce the
    in-memory audit bit for bit because
    :func:`~repro.mining.confidence.error_confidence_batch` is
    elementwise.
    """
    n_groups, n_labels = probabilities.shape
    keys: list[int] = []
    for observed in range(n_labels):
        confidences = error_confidence_batch(
            probabilities,
            support,
            np.full(n_groups, observed, dtype=np.int64),
            config.bounds,
        )
        for group in np.flatnonzero(
            confidences >= config.min_error_confidence
        ).tolist():
            keys.append(group * n_labels + observed)
    return sorted(keys)


def pair_suspect_sql(
    group_ref: str, obs_ref: str, n_labels: int, keys: list[int]
) -> str:
    """The finite-group suspect test: unroutable group (< 0) or a
    flagged (group, observed) pair."""
    if not keys:
        return f"{group_ref} < 0"
    in_list = ", ".join(str(key) for key in keys)
    return (
        f"({group_ref} < 0"
        f" OR {group_ref} * {n_labels} + {obs_ref} IN ({in_list}))"
    )
