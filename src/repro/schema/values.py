"""JSON codec for cell values.

Cell values are heterogeneous (strings, ints, floats, dates, null) and —
after pollution — not necessarily of their column's kind, so serialized
artifacts (pollution logs, findings exports) tag every value with its
type instead of relying on the schema.
"""

from __future__ import annotations

import datetime
from typing import Any

from repro.schema.types import Value

__all__ = ["value_to_json", "value_from_json"]


def value_to_json(value: Value) -> Any:
    """Encode a cell value as a JSON-compatible tagged object."""
    if value is None:
        return None
    if isinstance(value, bool):  # bool is not a cell type; guard anyway
        raise TypeError("bool is not a supported cell type")
    if isinstance(value, str):
        return {"t": "s", "v": value}
    if isinstance(value, int):
        return {"t": "i", "v": value}
    if isinstance(value, float):
        return {"t": "f", "v": value}
    if isinstance(value, datetime.date):
        return {"t": "d", "v": value.isoformat()}
    raise TypeError(f"unsupported cell type: {type(value).__name__}")


def value_from_json(payload: Any) -> Value:
    """Inverse of :func:`value_to_json`."""
    if payload is None:
        return None
    tag = payload.get("t")
    raw = payload.get("v")
    if tag == "s":
        return str(raw)
    if tag == "i":
        return int(raw)
    if tag == "f":
        return float(raw)
    if tag == "d":
        return datetime.date.fromisoformat(raw)
    raise ValueError(f"unknown value tag: {tag!r}")
