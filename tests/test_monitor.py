"""Tests for the continuous-auditing subsystem (``repro.monitor``).

The load-bearing contracts, in the order the classes below cover them:

* torn-write safety: partial trailing lines in an appended CSV/JSONL
  file are re-read on the next poll, never an error, never a duplicate;
* exactly-once watermarks: a monitor killed at any point — mid-window,
  or between the findings append and the watermark write — resumes to a
  findings file byte-identical to an uninterrupted run;
* audit parity: the cumulative :class:`MonitorReport` of a monitored
  stream equals a one-shot audit of the same rows, bytes included,
  regardless of poll timing or storage backend;
* drift: a mid-stream pollution step trips detection within a bounded
  number of windows, stationary streams stay quiet, and ``auto`` refit
  registers a new version with ``trigger=drift`` provenance and moves
  ``latest``.
"""

import io
import json
import random
import sqlite3
import threading

import pytest

from repro.core import AuditorConfig, AuditReport, AuditSession
from repro.core.findings import findings_schema, findings_to_table
from repro.io.jsonl_backend import JsonlTableSink
from repro.io.registry import open_sink
from repro.monitor import (
    DriftConfig,
    DriftTracker,
    MonitorReport,
    RefitPolicy,
    TableWatcher,
    Watermark,
    load_watermark,
    open_tail,
    split_records,
)
from repro.monitor.tail import SqliteTailReader, TextTailReader
from repro.registry import ModelRegistry
from repro.schema import Schema, Table, nominal, numeric, text, write_csv
from repro.testenv import quis_regime_stream


# -- shared corpus ----------------------------------------------------------


def _structured_table(n=1200, seed=21, error_rate=0.02):
    rng = random.Random(seed)
    rule = {"a": "x", "b": "y", "c": "z"}
    rows = []
    for _ in range(n):
        a = rng.choice(["a", "b", "c"])
        b = rule[a] if rng.random() > error_rate else rng.choice(["x", "y", "z"])
        number = rng.randint(0, 100) if rng.random() > 0.03 else None
        rows.append([a, b, number])
    schema = Schema(
        [
            nominal("A", ["a", "b", "c"]),
            nominal("B", ["x", "y", "z"]),
            numeric("N", 0, 100, integer=True),
        ]
    )
    return Table(schema, rows)


def _regime_stream(schema, clean_rows=1024, dirty_rows=1024, dirty_rate=0.4):
    """Stationary head at the training error rate, then a step change."""
    head = _structured_table(clean_rows, seed=31, error_rate=0.02)
    tail = _structured_table(dirty_rows, seed=32, error_rate=dirty_rate)
    return Table(schema, head.rows + tail.rows)


@pytest.fixture(scope="module")
def session():
    table = _structured_table()
    return AuditSession(
        table.schema, AuditorConfig(min_error_confidence=0.8)
    ).fit(table)


@pytest.fixture(scope="module")
def stream(session):
    return _regime_stream(session.schema)


def _ranked_jsonl(findings):
    """The canonical findings byte stream (same sink as the CLI)."""
    buffer = io.StringIO()
    with JsonlTableSink(findings_schema(), buffer) as sink:
        sink.write(findings_to_table(findings))
    return buffer.getvalue()


def _write_jsonl(table, path):
    with open_sink(table.schema, path) as sink:
        sink.write(table)


def _watcher(session, source, tmp_path, name="m", **options):
    options.setdefault("state_path", tmp_path / f"{name}.state")
    options.setdefault("findings_path", tmp_path / f"{name}.findings.jsonl")
    options.setdefault("window_rows", 128)
    return TableWatcher(session, source, **options)


# -- split_records ----------------------------------------------------------


class TestSplitRecords:
    def test_complete_lines(self):
        records, consumed = split_records(b"one\ntwo\n")
        assert records == [b"one\n", b"two\n"]
        assert consumed == 8

    def test_partial_tail_not_consumed(self):
        records, consumed = split_records(b"one\ntw")
        assert records == [b"one\n"]
        assert consumed == 4

    def test_empty(self):
        assert split_records(b"") == ([], 0)

    def test_quoted_newline_does_not_tear_a_record(self):
        data = b'1,"x\ny"\n2,z\n'
        records, consumed = split_records(data, quoted=True)
        assert records == [b'1,"x\ny"\n', b"2,z\n"]
        assert consumed == len(data)
        # without quote tracking the embedded newline would split the row
        assert split_records(data, quoted=False)[0][0] == b'1,"x\n'

    def test_unclosed_quote_is_a_partial_tail(self):
        records, consumed = split_records(b'1,ok\n2,"half\n', quoted=True)
        assert records == [b"1,ok\n"]
        assert consumed == 5

    def test_doubled_quotes_cancel(self):
        data = b'1,"he said ""hi"""\n'
        records, _ = split_records(data, quoted=True)
        assert records == [data]


# -- watermark --------------------------------------------------------------


class TestWatermark:
    def test_roundtrip(self, tmp_path):
        mark = Watermark(
            rows=512,
            source_offset=9001,
            findings_bytes=777,
            findings_rows=12,
            windows=4,
            model_ref="loads@v2",
            drift={"windows": 4},
            refits=[{"mode": "recommend"}],
        )
        mark.save(tmp_path / "m.state")
        loaded = load_watermark(tmp_path / "m.state")
        assert loaded == mark

    def test_missing_is_none(self, tmp_path):
        assert load_watermark(tmp_path / "nope.state") is None

    def test_corrupt_is_loud(self, tmp_path):
        path = tmp_path / "m.state"
        path.write_text("{not json")
        with pytest.raises(ValueError, match=str(path)):
            load_watermark(path)

    def test_foreign_format_is_loud(self, tmp_path):
        path = tmp_path / "m.state"
        path.write_text(json.dumps({"format": "something-else", "rows": 3}))
        with pytest.raises(ValueError, match="not a valid monitor state"):
            load_watermark(path)

    def test_crash_before_rename_keeps_previous_state(self, tmp_path, monkeypatch):
        import repro.monitor.watermark as watermark_module

        path = tmp_path / "m.state"
        Watermark(rows=100).save(path)
        before = path.read_bytes()

        def killed(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr(watermark_module.os, "replace", killed)
        with pytest.raises(KeyboardInterrupt):
            Watermark(rows=200).save(path)
        monkeypatch.undo()

        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["m.state"]
        assert load_watermark(path).rows == 100

    def test_disk_full_mid_write_keeps_previous_state(self, tmp_path, monkeypatch):
        import repro.monitor.watermark as watermark_module

        path = tmp_path / "m.state"
        Watermark(rows=100).save(path)
        before = path.read_bytes()

        def disk_full(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(watermark_module.os, "fsync", disk_full)
        with pytest.raises(OSError, match="No space left"):
            Watermark(rows=200).save(path)
        monkeypatch.undo()

        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["m.state"]


# -- tail readers -----------------------------------------------------------


@pytest.fixture
def tail_schema():
    return Schema(
        [
            nominal("A", ["a", "b", "c"]),
            numeric("N", 0, 100, integer=True),
        ]
    )


class TestTextTail:
    def test_csv_starts_past_the_header(self, tail_schema, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("A,N\na,1\nb,2\n")
        reader = open_tail(tail_schema, path)
        assert isinstance(reader, TextTailReader)
        assert reader.start_offset() == len("A,N\n")
        rows = reader.read_new(reader.start_offset())
        assert [cells for cells, _ in rows] == [["a", 1], ["b", 2]]
        assert rows[-1][1] == path.stat().st_size

    def test_append_resumes_from_offset(self, tail_schema, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("A,N\na,1\n")
        reader = open_tail(tail_schema, path)
        first = reader.read_new(reader.start_offset())
        with open(path, "a") as handle:
            handle.write("c,3\n")
        again = reader.read_new(first[-1][1])
        assert [cells for cells, _ in again] == [["c", 3]]

    def test_partial_trailing_line_reread_next_poll(self, tail_schema, tmp_path):
        """The torn-write contract: a half-written row is invisible until
        its newline lands, then read exactly once."""
        path = tmp_path / "t.jsonl"
        path.write_text('{"A": "a", "N": 1}\n{"A": "b", "N"')
        reader = open_tail(tail_schema, path)
        rows = reader.read_new(0)
        assert [cells for cells, _ in rows] == [["a", 1]]
        offset = rows[-1][1]
        assert reader.read_new(offset) == []  # still torn: still invisible
        with open(path, "a") as handle:
            handle.write(": 2}\n")
        rows = reader.read_new(offset)
        assert [cells for cells, _ in rows] == [["b", 2]]

    def test_csv_quoted_newline_not_torn(self, tmp_path):
        schema = Schema([text("T", nullable=False), numeric("N", 0, 9, integer=True)])
        path = tmp_path / "t.csv"
        path.write_text('T,N\n"two\nlines",1\nplain,2\n')
        reader = open_tail(schema, path)
        rows = reader.read_new(reader.start_offset())
        assert [cells for cells, _ in rows] == [["two\nlines", 1], ["plain", 2]]

    def test_jsonl_blank_lines_fold_into_next_offset(self, tail_schema, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"A": "a", "N": 1}\n\n{"A": "b", "N": 2}\n')
        reader = open_tail(tail_schema, path)
        rows = reader.read_new(0)
        assert [cells for cells, _ in rows] == [["a", 1], ["b", 2]]
        # resuming from any returned offset skips the blank line cleanly
        assert reader.read_new(rows[0][1]) == [rows[1]]

    def test_csv_without_complete_header_rejected(self, tail_schema, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("A,")  # header still being written
        with pytest.raises(ValueError, match="header"):
            open_tail(tail_schema, path)

    def test_csv_wrong_header_rejected_at_construction(self, tail_schema, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("A,WRONG\na,1\n")
        with pytest.raises(ValueError):
            open_tail(tail_schema, path)

    def test_bad_cell_error_names_location_and_offset(self, tail_schema, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"A": "a", "N": "not-a-number"}\n')
        reader = open_tail(tail_schema, path)
        with pytest.raises(ValueError, match="t.jsonl"):
            reader.read_new(0)

    def test_missing_file_rejected(self, tail_schema, tmp_path):
        with pytest.raises(OSError):
            open_tail(tail_schema, tmp_path / "absent.jsonl")


class TestSqliteTail:
    def _make_db(self, path, rows):
        with sqlite3.connect(path) as conn:
            conn.execute("CREATE TABLE loads (A TEXT, N INTEGER)")
            conn.executemany("INSERT INTO loads VALUES (?, ?)", rows)
        return path

    def test_rowid_offsets(self, tail_schema, tmp_path):
        db = self._make_db(tmp_path / "t.db", [("a", 1), ("b", 2)])
        reader = open_tail(tail_schema, db)
        assert isinstance(reader, SqliteTailReader)
        assert reader.start_offset() == 0
        rows = reader.read_new(0)
        assert [cells for cells, _ in rows] == [["a", 1], ["b", 2]]
        assert [offset for _, offset in rows] == [1, 2]
        reader.close()

    def test_growing_table(self, tail_schema, tmp_path):
        db = self._make_db(tmp_path / "t.db", [("a", 1)])
        reader = open_tail(tail_schema, db)
        first = reader.read_new(0)
        with sqlite3.connect(db) as conn:
            conn.execute("INSERT INTO loads VALUES ('c', 3)")
        assert [cells for cells, _ in reader.read_new(first[-1][1])] == [["c", 3]]
        reader.close()

    def test_uri_with_table_option(self, tail_schema, tmp_path):
        db = self._make_db(tmp_path / "t.db", [("a", 1)])
        with sqlite3.connect(db) as conn:
            conn.execute("CREATE TABLE other (x)")
        reader = open_tail(tail_schema, f"sqlite:///{db}?table=loads")
        assert reader.table == "loads"
        reader.close()
        # two tables without a selector is ambiguous
        with pytest.raises(ValueError, match="table="):
            open_tail(tail_schema, db)

    def test_schema_mismatch_rejected(self, tmp_path):
        db = self._make_db(tmp_path / "t.db", [("a", 1)])
        other = Schema([nominal("Z", ["z"])])
        with pytest.raises(ValueError, match="do not match"):
            open_tail(other, db)


class TestOpenTail:
    def test_parquet_cannot_be_tailed(self, tail_schema, tmp_path):
        with pytest.raises(ValueError, match="cannot be tailed"):
            open_tail(tail_schema, tmp_path / "t.parquet")

    def test_format_override_conflict_rejected(self, tail_schema, tmp_path):
        with pytest.raises(ValueError, match="sqlite URI"):
            open_tail(tail_schema, "sqlite:///x.db", format="csv")


# -- drift ------------------------------------------------------------------


class TestDriftTracker:
    CONFIG = DriftConfig(confidence=0.95, baseline_windows=3, sustain_windows=2)

    def test_baseline_windows_never_fire(self):
        tracker = DriftTracker(["A"], self.CONFIG)
        for _ in range(3):
            assert tracker.observe(100, {"A": 90}) == []

    def test_step_change_fires_within_sustain_windows(self):
        tracker = DriftTracker(["A"], self.CONFIG)
        for _ in range(5):
            assert tracker.observe(200, {"A": 4}) == []  # 2% baseline + quiet
        assert tracker.observe(200, {"A": 60}) == []  # first drifted window
        events = tracker.observe(200, {"A": 60})  # second: fires
        assert len(events) == 1
        event = events[0]
        assert event.attribute == "A"
        assert event.direction == "rising"
        assert event.window_rate == pytest.approx(0.3)
        assert event.baseline_rate == pytest.approx(0.02)
        assert event.score > 0

    def test_alarm_fires_once_until_recovery(self):
        tracker = DriftTracker(["A"], self.CONFIG)
        for _ in range(3):
            tracker.observe(200, {"A": 4})
        tracker.observe(200, {"A": 60})
        assert tracker.observe(200, {"A": 60})  # fires
        assert tracker.observe(200, {"A": 60}) == []  # latched
        assert tracker.alarmed_attributes == ("A",)
        tracker.observe(200, {"A": 4})  # recovery clears the latch
        assert tracker.alarmed_attributes == ()
        tracker.observe(200, {"A": 60})
        assert tracker.observe(200, {"A": 60})  # a new excursion fires again

    def test_falling_direction(self):
        tracker = DriftTracker(["A"], self.CONFIG)
        for _ in range(3):
            tracker.observe(400, {"A": 120})
        tracker.observe(400, {"A": 2})
        events = tracker.observe(400, {"A": 2})
        assert [e.direction for e in events] == ["falling"]

    def test_stationary_stream_stays_quiet(self):
        rng = random.Random(5)
        tracker = DriftTracker(["A", "B"], self.CONFIG)
        for _ in range(60):
            counts = {"A": sum(rng.random() < 0.05 for _ in range(200)),
                      "B": sum(rng.random() < 0.01 for _ in range(200))}
            assert tracker.observe(200, counts) == []

    def test_threshold_raises_the_bar(self):
        config = DriftConfig(threshold=0.5, baseline_windows=1, sustain_windows=1)
        tracker = DriftTracker(["A"], config)
        tracker.observe(200, {"A": 4})
        assert tracker.observe(200, {"A": 80}) == []  # separation < 0.5

    def test_serialization_resumes_mid_excursion(self):
        tracker = DriftTracker(["A"], self.CONFIG)
        for _ in range(3):
            tracker.observe(200, {"A": 4})
        tracker.observe(200, {"A": 60})  # one drifted window, not yet fired
        resumed = DriftTracker.from_dict(tracker.to_dict(), ["A"], self.CONFIG)
        assert resumed.windows == tracker.windows
        assert resumed.observe(200, {"A": 60})  # the second window still fires

    def test_reset_forgets_everything(self):
        tracker = DriftTracker(["A"], self.CONFIG)
        for _ in range(5):
            tracker.observe(200, {"A": 4})
        tracker.reset()
        assert tracker.windows == 0
        assert tracker.stats()["attributes"]["A"]["baseline_windows"] == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"confidence": 0.3},
            {"confidence": 1.0},
            {"threshold": -0.1},
            {"baseline_windows": 0},
            {"sustain_windows": 0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            DriftConfig(**kwargs)

    def test_empty_window_rejected(self):
        tracker = DriftTracker(["A"], self.CONFIG)
        with pytest.raises(ValueError):
            tracker.observe(0, {})


# -- MonitorReport ----------------------------------------------------------


class TestMonitorReport:
    def test_extend_requires_contiguity(self, session, stream):
        report = MonitorReport(0.8, schema=session.schema)
        first = session.audit(Table(session.schema, stream.rows[:100]))
        report.extend(first)
        gap = session.audit(Table(session.schema, stream.rows[200:300]))
        with pytest.raises(ValueError, match="contiguous"):
            report.extend(gap.with_row_offset(200))

    def test_extend_requires_same_threshold(self, session):
        report = MonitorReport(0.9)
        window = AuditReport(1, [], [0.0], 0.8)
        with pytest.raises(ValueError, match="threshold"):
            report.extend(window)

    def test_as_audit_report_matches_whole_table(self, session, stream):
        report = MonitorReport(0.8, schema=session.schema)
        for start in range(0, stream.n_rows, 256):
            chunk = Table(session.schema, stream.rows[start : start + 256])
            report.extend(session.audit(chunk).with_row_offset(start))
        oneshot = session.audit(stream)
        merged = report.as_audit_report()
        assert merged.findings == oneshot.findings
        assert merged.record_confidence == oneshot.record_confidence
        assert report.ranked_findings() == oneshot.ranked_findings()
        assert report.n_suspicious == oneshot.n_suspicious

    def test_resumed_report_keeps_counts_but_not_confidences(self, session, stream):
        oneshot = session.audit(Table(session.schema, stream.rows[:256]))
        report = MonitorReport.resumed(0.8, oneshot.findings, 256)
        assert report.n_rows == 256
        assert report.n_findings == len(oneshot.findings)
        with pytest.raises(ValueError, match="resumed"):
            report.as_audit_report()
        # further windows still extend it
        more = session.audit(
            Table(session.schema, stream.rows[256:512])
        ).with_row_offset(256)
        report.extend(more)
        assert report.n_rows == 512


# -- the watcher ------------------------------------------------------------


class TestWatcherCatchUp:
    def test_jsonl_catchup_equals_oneshot(self, session, stream, tmp_path):
        _write_jsonl(stream, tmp_path / "s.jsonl")
        with _watcher(session, tmp_path / "s.jsonl", tmp_path) as watcher:
            report = watcher.run()
        oneshot = session.audit(stream)
        assert report.n_rows == stream.n_rows
        assert _ranked_jsonl(report.ranked_findings()) == _ranked_jsonl(
            oneshot.ranked_findings()
        )
        merged = report.as_audit_report()
        assert merged.findings == oneshot.findings
        assert merged.record_confidence == oneshot.record_confidence

    def test_csv_and_sqlite_backends_agree(self, session, stream, tmp_path):
        _write_jsonl(stream, tmp_path / "s.jsonl")
        write_csv(stream, tmp_path / "s.csv")
        with open_sink(stream.schema, f"sqlite:///{tmp_path}/s.db?table=loads") as sink:
            sink.write(stream)
        outputs = {}
        for name in ("s.jsonl", "s.csv", "s.db"):
            with _watcher(session, tmp_path / name, tmp_path, name=name) as watcher:
                watcher.run()
            outputs[name] = (tmp_path / f"{name}.findings.jsonl").read_bytes()
        assert outputs["s.jsonl"] == outputs["s.csv"] == outputs["s.db"]

    def test_findings_file_is_independent_of_poll_timing(
        self, session, stream, tmp_path
    ):
        """Windows anchor at committed rows, not poll batches: feeding the
        file in ragged increments (with torn tails) yields the same
        findings bytes as one catch-up pass."""
        _write_jsonl(stream, tmp_path / "whole.jsonl")
        with _watcher(session, tmp_path / "whole.jsonl", tmp_path, "w") as watcher:
            watcher.run()
        reference = (tmp_path / "w.findings.jsonl").read_bytes()

        data = (tmp_path / "whole.jsonl").read_bytes()
        ragged = tmp_path / "ragged.jsonl"
        ragged.write_bytes(b"")
        rng = random.Random(13)
        watcher = _watcher(session, ragged, tmp_path, "r")
        written = 0
        while written < len(data):
            step = rng.randint(1, 4000)  # often mid-line: torn tails galore
            with open(ragged, "ab") as handle:
                handle.write(data[written : written + step])
            written += step
            watcher.poll()
        watcher.flush()
        watcher.close()
        assert (tmp_path / "r.findings.jsonl").read_bytes() == reference

    def test_emit_streams_exactly_the_findings_file(self, session, stream, tmp_path):
        _write_jsonl(stream, tmp_path / "s.jsonl")
        chunks = []
        with _watcher(
            session, tmp_path / "s.jsonl", tmp_path, emit=chunks.append
        ) as watcher:
            watcher.run()
        streamed = "".join(chunks).encode("utf-8")
        assert streamed == (tmp_path / "m.findings.jsonl").read_bytes()

    def test_follow_mode_never_flushes_partials(self, session, stream, tmp_path):
        _write_jsonl(Table(session.schema, stream.rows[:300]), tmp_path / "s.jsonl")
        watcher = _watcher(session, tmp_path / "s.jsonl", tmp_path, window_rows=128)
        watcher.poll()
        stop = threading.Event()
        stop.set()  # already-stopped follow run: returns without flushing
        watcher.run(follow=True, stop=stop)
        assert watcher.watermark.rows == 256  # 2 windows; 44 rows stay pending
        assert len(watcher._pending) == 44
        watcher.close()

    def test_unfitted_session_rejected(self, tmp_path, session):
        blank = AuditSession(session.schema)
        with pytest.raises(ValueError, match="fitted"):
            _watcher(blank, tmp_path / "s.jsonl", tmp_path)

    def test_session_monitor_wires_through(self, session, stream, tmp_path):
        _write_jsonl(stream, tmp_path / "s.jsonl")
        watcher = session.monitor(
            tmp_path / "s.jsonl",
            state_path=tmp_path / "m.state",
            findings_path=tmp_path / "m.findings.jsonl",
            window_rows=512,
        )
        assert isinstance(watcher, TableWatcher)
        report = watcher.run()
        watcher.close()
        assert report.n_rows == stream.n_rows
        status = watcher.status()
        assert status["rows"] == stream.n_rows
        assert status["windows"] == 4
        assert status["drift"]["windows"] == 4


class TestWatcherResume:
    def _reference(self, session, stream, tmp_path):
        _write_jsonl(stream, tmp_path / "ref.jsonl")
        with _watcher(session, tmp_path / "ref.jsonl", tmp_path, "ref") as watcher:
            watcher.run()
        return (tmp_path / "ref.findings.jsonl").read_bytes()

    def test_kill_mid_window_resumes_byte_identical(self, session, stream, tmp_path):
        reference = self._reference(session, stream, tmp_path)
        full = (tmp_path / "ref.jsonl").read_bytes()
        lines = full.split(b"\n")
        # first run sees ~last third of a window plus a torn line, follow
        # style (no partial flush), then dies
        partial = b"\n".join(lines[:1100]) + b"\n" + lines[1100][:9]
        source = tmp_path / "grow.jsonl"
        source.write_bytes(partial)
        first = _watcher(session, source, tmp_path, "g")
        while first.poll():
            pass
        assert 0 < first.watermark.rows < stream.n_rows
        assert first._pending  # died holding uncommitted pending rows
        first.close()

        source.write_bytes(full)
        second = _watcher(session, source, tmp_path, "g")
        report = second.run()
        second.close()
        assert report.n_rows == stream.n_rows
        assert (tmp_path / "g.findings.jsonl").read_bytes() == reference

    def test_crash_between_findings_and_watermark(
        self, session, stream, tmp_path, monkeypatch
    ):
        """The hard crash window: findings are on disk, the watermark is
        not. Resume must discard the uncovered findings and regenerate
        them — byte-identically."""
        reference = self._reference(session, stream, tmp_path)
        _write_jsonl(stream, tmp_path / "c.jsonl")
        watcher = _watcher(session, tmp_path / "c.jsonl", tmp_path, "c")

        calls = {"n": 0}
        original = Watermark.save

        def dies_on_fourth_commit(self, path):
            calls["n"] += 1
            if calls["n"] == 4:
                raise KeyboardInterrupt  # killed after the findings fsync
            return original(self, path)

        monkeypatch.setattr(Watermark, "save", dies_on_fourth_commit)
        with pytest.raises(KeyboardInterrupt):
            watcher.run()
        monkeypatch.undo()
        watcher.close()

        state = load_watermark(tmp_path / "c.state")
        assert state.windows == 3  # the fourth window never committed
        findings_file = tmp_path / "c.findings.jsonl"
        assert findings_file.stat().st_size >= state.findings_bytes

        with _watcher(session, tmp_path / "c.jsonl", tmp_path, "c") as watcher:
            report = watcher.run()
        assert report.n_rows == stream.n_rows
        assert findings_file.read_bytes() == reference

    def test_resume_after_clean_catchup_is_a_noop(self, session, stream, tmp_path):
        reference = self._reference(session, stream, tmp_path)
        with _watcher(session, tmp_path / "ref.jsonl", tmp_path, "ref") as watcher:
            report = watcher.run()
        assert report.n_rows == stream.n_rows
        assert (tmp_path / "ref.findings.jsonl").read_bytes() == reference

    def test_resume_with_rewritten_findings_file_is_loud(
        self, session, stream, tmp_path
    ):
        _write_jsonl(stream, tmp_path / "s.jsonl")
        with _watcher(session, tmp_path / "s.jsonl", tmp_path) as watcher:
            watcher.run()
        (tmp_path / "m.findings.jsonl").write_text("")  # operator accident
        with pytest.raises(ValueError, match="cannot resume"):
            _watcher(session, tmp_path / "s.jsonl", tmp_path)

    def test_resume_with_corrupt_state_is_loud(self, session, stream, tmp_path):
        _write_jsonl(stream, tmp_path / "s.jsonl")
        (tmp_path / "m.state").write_text("garbage")
        with pytest.raises(ValueError, match="monitor state"):
            _watcher(session, tmp_path / "s.jsonl", tmp_path)


# -- drift + refit end to end ----------------------------------------------


class TestDriftAndRefit:
    DRIFT = DriftConfig(confidence=0.95, baseline_windows=3, sustain_windows=2)

    def test_step_change_trips_drift_within_bounded_windows(
        self, session, stream, tmp_path
    ):
        _write_jsonl(stream, tmp_path / "s.jsonl")
        with _watcher(session, tmp_path / "s.jsonl", tmp_path, drift=self.DRIFT) as w:
            w.run()
            stats = w.status()["drift"]
        # step at row 1024 = window 8 (128-row windows); detection must
        # land within baseline + sustain + 2 windows of the step
        alarmed = [a for a, s in stats["attributes"].items() if s["alarmed"]]
        assert "B" in alarmed  # the rule-carrying attribute drifted
        assert stats["windows"] == 16

    def test_stationary_stream_does_not_alarm(self, session, tmp_path):
        stationary = _structured_table(2048, seed=77, error_rate=0.02)
        _write_jsonl(stationary, tmp_path / "s.jsonl")
        with _watcher(session, tmp_path / "s.jsonl", tmp_path, drift=self.DRIFT) as w:
            w.run()
            stats = w.status()["drift"]
        assert all(not s["alarmed"] for s in stats["attributes"].values())

    def test_recommend_mode_records_but_does_not_register(
        self, session, stream, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "registry")
        session.save_to_registry(registry, "loads")
        _write_jsonl(stream, tmp_path / "s.jsonl")
        policy = RefitPolicy("recommend", model_name="loads")
        with _watcher(
            session, tmp_path / "s.jsonl", tmp_path, drift=self.DRIFT, refit=policy
        ) as watcher:
            watcher.run()
            status = watcher.status()
        assert status["refits"]
        assert all(r["mode"] == "recommend" for r in status["refits"])
        assert len(registry.versions("loads")) == 1  # nothing registered

    def test_auto_refit_registers_and_moves_latest(self, session, stream, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        version = session.save_to_registry(registry, "loads")
        assert version.version == 1
        _write_jsonl(stream, tmp_path / "s.jsonl")
        policy = RefitPolicy(
            "auto", registry=registry, model_name="loads", refit_rows=1024
        )
        with _watcher(
            session,
            tmp_path / "s.jsonl",
            tmp_path,
            drift=self.DRIFT,
            refit=policy,
            model_ref="loads@v1",
        ) as watcher:
            watcher.run()
            status = watcher.status()

        auto = [r for r in status["refits"] if r["mode"] == "auto"]
        assert auto, "sustained drift must trigger an auto refit"
        assert auto[0]["model_ref"] == "loads@v2"
        assert status["model"] == "loads@v2"
        assert registry.tags("loads")["latest"] == 2  # serving picks this up
        provenance = registry.resolve("loads@v2").provenance
        assert provenance.extra["trigger"] == "drift"
        assert provenance.extra["drift"]["attribute"] == auto[0]["drift"]["attribute"]
        assert provenance.extra["drift"]["window_rate"] > provenance.extra["drift"][
            "baseline_rate"
        ]
        assert provenance.n_rows == 1024
        # the refit and the triggering window committed atomically
        state = load_watermark(tmp_path / "m.state")
        assert state.model_ref == "loads@v2"
        assert [r["mode"] for r in state.refits] == ["auto"]
        # the new baseline was re-established after the reset — against
        # the post-step regime the refreshed model audits, no re-alarm storm
        assert status["drift"]["windows"] < 16

    def test_quis_pollution_step_end_to_end(self, tmp_path):
        """The paper-shaped scenario: a QUIS load stream whose pollution
        rate steps up mid-stream trips drift; auto-refit registers a new
        version whose provenance carries the window statistics."""
        stream, _ = quis_regime_stream([(1280, 0.004), (1280, 0.10)], seed=11)
        train, _ = quis_regime_stream([(1500, 0.004)], seed=12)
        session = AuditSession(
            stream.schema, AuditorConfig(min_error_confidence=0.8)
        ).fit(train)
        registry = ModelRegistry(tmp_path / "registry")
        session.save_to_registry(registry, "quis")
        _write_jsonl(stream, tmp_path / "s.jsonl")
        policy = RefitPolicy(
            "auto", registry=registry, model_name="quis", refit_rows=1280
        )
        with _watcher(
            session,
            tmp_path / "s.jsonl",
            tmp_path,
            window_rows=128,
            drift=DriftConfig(confidence=0.95, baseline_windows=3, sustain_windows=2),
            refit=policy,
            model_ref="quis@v1",
        ) as watcher:
            watcher.run()
            status = watcher.status()
        auto = [r for r in status["refits"] if r["mode"] == "auto"]
        assert auto
        # the step lands at window 10; detection is bounded
        assert auto[0]["drift"]["window"] <= 14
        assert registry.tags("quis")["latest"] == 2

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="registry"):
            RefitPolicy("auto", model_name="x")
        with pytest.raises(ValueError, match="name"):
            RefitPolicy("auto", registry=object().__class__)  # no name given
        with pytest.raises(ValueError, match="mode"):
            RefitPolicy("sometimes")
        with pytest.raises(ValueError, match="refit_rows"):
            RefitPolicy("off", refit_rows=0)


# -- regime stream generator ------------------------------------------------


class TestQuisRegimeStream:
    def test_segments_keep_their_row_counts(self):
        stream, log = quis_regime_stream([(200, 0.0), (300, 0.5)], seed=3)
        assert stream.n_rows == 500
        # a 0.0-rate segment contributes no changes; the dirty segment's
        # changes carry stream-global row indices past the boundary
        assert log.cell_changes
        assert min(c.row for c in log.cell_changes) >= 200
        assert max(c.row for c in log.cell_changes) < 500

    def test_single_segment_is_stationary(self):
        stream, log = quis_regime_stream([(150, 0.01)], seed=4)
        assert stream.n_rows == 150

    def test_validation(self):
        with pytest.raises(ValueError):
            quis_regime_stream([])
        with pytest.raises(ValueError):
            quis_regime_stream([(0, 0.1)])
