"""SQLite backend: audit records directly out of a warehouse table.

The paper's tool checks records where they live; with this backend an
``AuditSession`` reads a SQLite warehouse table in chunked ``fetchmany``
batches (bounded memory, like the CSV stream) and the pipeline's sinks
can land generated / polluted / findings tables back in the database.

Locations
---------
Either a database path (``warehouse.db``, ``data.sqlite``) or a URI
selecting the table explicitly::

    sqlite:///relative/path.db?table=records
    sqlite:////absolute/path.db?table=records

Without ``table=``, a source requires the database to contain exactly
one user table (the unambiguous case); a sink defaults to ``data``.

Schema-driven type mapping
--------------------------
Declared column types follow the attribute kinds — ``TEXT`` for nominal
and date (ISO-8601) attributes — but **numeric columns are declared
without a type** on purpose: SQLite's type affinity would otherwise
rewrite values (``INTEGER`` affinity turns the TEXT form of a >64-bit
integer into a lossy ``REAL``; ``REAL`` affinity forces ints to
floats), while a typeless column has BLOB affinity and stores every
value exactly as bound. Integers beyond SQLite's 64-bit range are bound
as their canonical text form and parsed back through the schema, so
round trips are loss-free for admissible tables. Reads reject
non-finite floats and mistyped cells with errors naming row and
attribute.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Iterator, Optional, Union
from urllib.parse import parse_qsl, urlsplit

from repro.io.base import DEFAULT_CHUNK_SIZE, TableSink, TableSource
from repro.io.cells import coerce_number, convert_row, parse_number
from repro.io.columnar import ColumnBatch, columns_from_rows
from repro.schema.attribute import Attribute
from repro.schema.schema import Schema
from repro.schema.types import AttributeKind, Value
import datetime

__all__ = [
    "SqliteTableSource",
    "SqliteTableSink",
    "parse_sqlite_url",
    "DEFAULT_TABLE",
]

DEFAULT_TABLE = "data"

#: SQLite INTEGER storage is a signed 64-bit word; ints beyond it are
#: bound as text and parsed back through the schema.
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


def parse_sqlite_url(url: str) -> tuple[str, dict[str, str]]:
    """Split ``sqlite:///path?table=name`` into (database path, options).

    Three slashes give a relative path, four an absolute one (the
    SQLAlchemy convention). The only recognized query option is
    ``table``.
    """
    parts = urlsplit(url)
    if parts.scheme != "sqlite":
        raise ValueError(f"not a sqlite URL: {url!r}")
    path = parts.path
    if parts.netloc:  # sqlite://host/… has no meaning for a file database
        raise ValueError(
            f"sqlite URL {url!r} names a network location; "
            f"use sqlite:///relative.db or sqlite:////absolute.db"
        )
    if path.startswith("/") and not path.startswith("//"):
        path = path[1:]  # sqlite:///rel.db → rel.db
    elif path.startswith("//"):
        path = path[1:]  # sqlite:////abs.db → /abs.db
    options = dict(parse_qsl(parts.query))
    unknown = set(options) - {"table"}
    if unknown:
        raise ValueError(f"unknown sqlite URL option(s): {sorted(unknown)!r}")
    if not path:
        raise ValueError(f"sqlite URL {url!r} names no database file")
    return path, options


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


def _user_tables(connection: sqlite3.Connection) -> list[str]:
    rows = connection.execute(
        "SELECT name FROM sqlite_master "
        "WHERE type = 'table' AND name NOT LIKE 'sqlite_%' ORDER BY name"
    ).fetchall()
    return [name for (name,) in rows]


def _column_names(connection: sqlite3.Connection, table: str) -> list[str]:
    return [
        row[1] for row in connection.execute(f"PRAGMA table_info({_quote(table)})")
    ]


def _to_sql(value: Value) -> object:
    if isinstance(value, datetime.date):
        return value.isoformat()
    if isinstance(value, int) and not (_INT64_MIN <= value <= _INT64_MAX):
        return str(value)
    return value


def _from_sql(raw: object, kind: AttributeKind, integer: bool) -> Value:
    if raw is None:
        return None
    if kind is AttributeKind.NOMINAL:
        if not isinstance(raw, str):
            raise ValueError(f"expected text for a nominal cell, got {raw!r}")
        return raw
    if kind is AttributeKind.DATE:
        if not isinstance(raw, str):
            raise ValueError(f"expected an ISO date string, got {raw!r}")
        return datetime.date.fromisoformat(raw)
    if isinstance(raw, str):  # the >64-bit integer text form
        return parse_number(raw, integer)
    if isinstance(raw, (int, float)):
        return coerce_number(raw, integer)
    raise ValueError(f"expected a number for a numeric cell, got {raw!r}")


class SqliteTableSource(TableSource):
    """Chunked ``fetchmany`` reader over one SQLite table.

    Rows are streamed in ``rowid`` order, so auditing a table loaded from
    a CSV export visits records in exactly the export's order — the
    bit-identity bridge between ``--input warehouse.db`` and
    ``--input export.csv``.

    Natively columnar: :meth:`column_batches` converts each ``fetchmany``
    batch column-at-a-time straight off the driver's row tuples (which
    are already schema-ordered by the SELECT), skipping the per-row
    converted lists of the row path.
    """

    supports_columns = True

    def __init__(
        self,
        schema: Schema,
        database: Union[str, Path],
        *,
        table: Optional[str] = None,
    ):
        super().__init__(schema)
        path = Path(database)
        if not path.exists():
            raise FileNotFoundError(f"no such SQLite database: {database}")
        self._connection = sqlite3.connect(path)
        self._fetch_size = DEFAULT_CHUNK_SIZE
        try:
            if table is None:
                tables = _user_tables(self._connection)
                if len(tables) != 1:
                    raise ValueError(
                        f"{database} holds {len(tables)} tables "
                        f"({tables!r}); select one with "
                        f"'sqlite:///{database}?table=NAME'"
                    )
                table = tables[0]
            self.table = table
            columns = _column_names(self._connection, table)
            if not columns:
                raise ValueError(f"{database} has no table named {table!r}")
            if set(columns) != set(schema.names):
                raise ValueError(
                    f"columns of table {table!r} {columns!r} do not match "
                    f"schema attributes {list(schema.names)!r}"
                )
        except Exception:
            self.close()
            raise

    def chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE, *, validate: bool = False):
        self._fetch_size = max(chunk_size, 1)  # align fetchmany with the chunking
        return super().chunks(chunk_size, validate=validate)

    def _converters(self) -> list:
        return [
            lambda raw, kind=a.kind, integer=getattr(a.domain, "integer", False): (
                _from_sql(raw, kind, integer)
            )
            for a in self.schema.attributes
        ]

    def _execute_select(self) -> sqlite3.Cursor:
        select = "SELECT {} FROM {}".format(
            ", ".join(_quote(name) for name in self.schema.names),
            _quote(self.table),
        )
        try:
            return self._connection.execute(select + " ORDER BY rowid")
        except sqlite3.OperationalError:  # WITHOUT ROWID tables
            return self._connection.execute(select)

    def _iter_rows(self) -> Iterator[list[Value]]:
        names = self.schema.names
        converters = self._converters()
        cursor = self._execute_select()
        row_no = 0
        while True:
            batch = cursor.fetchmany(self._fetch_size)
            if not batch:
                return
            for raw_row in batch:
                row_no += 1
                yield convert_row(f"row {row_no}", raw_row, converters, names)

    def _iter_column_batches(self, batch_size: int):
        self._fetch_size = max(batch_size, 1)  # align fetchmany with batches
        names = self.schema.names
        converters = self._converters()
        cursor = self._execute_select()
        row_no = 0
        while True:
            batch = cursor.fetchmany(self._fetch_size)
            if not batch:
                return
            labels = [f"row {row_no + i}" for i in range(1, len(batch) + 1)]
            row_no += len(batch)
            cols = columns_from_rows(batch, labels, names, converters)
            yield ColumnBatch(self.schema, dict(zip(names, cols)), len(batch))

    def close(self) -> None:
        self._connection.close()


class SqliteTableSink(TableSink):
    """Writer landing a table in a SQLite database.

    ``if_exists`` decides what happens when the target table is already
    present: ``"replace"`` (default) drops and recreates it, ``"fail"``
    raises, ``"append"`` keeps it and adds rows.

    Instead of a *database* path the caller may hand in an open
    ``connection`` (opened with ``isolation_level=None`` so the sink's
    explicit transaction works); the sink then commits or rolls back as
    usual but never closes the connection — how the SQL pushdown engine
    stages an in-memory table into its private ``:memory:`` database.
    """

    def __init__(
        self,
        schema: Schema,
        database: Optional[Union[str, Path]] = None,
        *,
        table: Optional[str] = None,
        if_exists: str = "replace",
        connection: Optional[sqlite3.Connection] = None,
    ):
        super().__init__(schema)
        if if_exists not in ("replace", "fail", "append"):
            raise ValueError(
                f"if_exists must be 'replace', 'fail' or 'append', got {if_exists!r}"
            )
        if (database is None) == (connection is None):
            raise ValueError(
                "pass exactly one of database (a path the sink opens and "
                "closes) or connection (an open connection the caller owns)"
            )
        self.table = table or DEFAULT_TABLE
        self.if_exists = if_exists
        # autocommit off, transactions managed explicitly: the DDL and
        # every chunk ride one transaction, so a failed write rolls back
        # whole — Python's sqlite3 would otherwise autocommit DDL and a
        # dying replace-write would destroy the pre-existing table
        if connection is None:
            self._owns_connection = True
            self._connection = sqlite3.connect(database, isolation_level=None)
        else:
            # caller-provided connection (e.g. the SQL pushdown engine's
            # :memory: staging database): committed/rolled back here,
            # closed by the caller; must be in explicit-transaction mode
            self._owns_connection = False
            self._connection = connection
        self._insert = "INSERT INTO {} ({}) VALUES ({})".format(
            _quote(self.table),
            ", ".join(_quote(name) for name in schema.names),
            ", ".join("?" for _ in schema.names),
        )

    @staticmethod
    def _column_decl(attribute: Attribute) -> str:
        # Nominal and date attributes are TEXT; numeric columns carry no
        # declared type so they keep BLOB affinity — INTEGER affinity
        # would degrade >64-bit integer text to lossy REAL and REAL
        # affinity would force ints to floats (see the module docstring).
        if attribute.kind in (AttributeKind.NOMINAL, AttributeKind.DATE):
            return f"{_quote(attribute.name)} TEXT"
        return _quote(attribute.name)

    def _write_header(self) -> None:
        self._connection.execute("BEGIN")
        existing = self.table in _user_tables(self._connection)
        if existing and self.if_exists == "fail":
            raise ValueError(
                f"table {self.table!r} already exists (pass if_exists='replace' "
                f"or 'append' to overwrite or extend it)"
            )
        if existing and self.if_exists == "replace":
            self._connection.execute(f"DROP TABLE {_quote(self.table)}")
            existing = False
        if not existing:
            decls = ", ".join(
                self._column_decl(attribute) for attribute in self.schema.attributes
            )
            self._connection.execute(f"CREATE TABLE {_quote(self.table)} ({decls})")

    def _write_rows(self, rows: list[list[Value]]) -> None:
        self._connection.executemany(
            self._insert, ([_to_sql(value) for value in row] for row in rows)
        )

    def close(self) -> None:
        try:
            self._connection.commit()
        except sqlite3.ProgrammingError:  # already closed
            return
        if self._owns_connection:
            self._connection.close()

    def abort(self) -> None:
        # DDL is transactional in SQLite, so rolling back restores even a
        # dropped pre-existing table — a failed write leaves the
        # warehouse exactly as it was
        try:
            self._connection.rollback()
        except sqlite3.ProgrammingError:  # already closed
            return
        if self._owns_connection:
            self._connection.close()
