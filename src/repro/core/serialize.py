"""Persistence of fitted auditors (the offline/online split of sec. 2.2).

*"Both tasks can run asynchronously. This is useful for an application in
the data cleansing phase during warehouse loading: While the
time-consuming structure induction can be prepared off-line, new data can
be checked for deviations and loaded quickly."*

:func:`auditor_to_dict` captures everything deviation detection needs —
schema, configuration, per-attribute class vocabularies (including fitted
discretizers), and the induced decision trees — as plain JSON types;
:func:`auditor_from_dict` restores a ready-to-audit
:class:`~repro.core.auditor.DataAuditor` without the training table.

Only tree-based classifiers are serializable (they are the production
path); attempting to persist an auditor with other classifier types
raises ``TypeError``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping, Union

import numpy as np

from repro.core.auditor import AuditorConfig, DataAuditor
from repro.mining.dataset import ClassEncoder, Dataset
from repro.mining.intervals import ConfidenceBounds, IntervalMethod
from repro.mining.tree.grow import PruningStrategy, TreeConfig
from repro.mining.tree.node import Leaf, Node, NominalSplit, NumericSplit
from repro.mining.tree_classifier import TreeClassifier
from repro.schema.serialize import schema_from_dict, schema_to_dict

__all__ = [
    "auditor_to_dict",
    "auditor_from_dict",
    "save_auditor",
    "load_auditor",
]


# -- tree nodes ----------------------------------------------------------------


def _node_to_dict(node: Node) -> dict[str, Any]:
    if isinstance(node, Leaf):
        return {"type": "leaf", "counts": [float(c) for c in node.counts]}
    if isinstance(node, NominalSplit):
        return {
            "type": "nominal",
            "attribute": node.attribute,
            "counts": [float(c) for c in node.counts],
            "branches": {str(code): _node_to_dict(child) for code, child in node.branches.items()},
            "fractions": {str(code): fraction for code, fraction in node.fractions.items()},
        }
    if isinstance(node, NumericSplit):
        return {
            "type": "numeric",
            "attribute": node.attribute,
            "counts": [float(c) for c in node.counts],
            "threshold": node.threshold,
            "low": _node_to_dict(node.low),
            "high": _node_to_dict(node.high),
            "low_fraction": node.low_fraction,
        }
    raise TypeError(f"unknown node type: {type(node).__name__}")


def _node_from_dict(payload: Mapping[str, Any]) -> Node:
    counts = np.asarray(payload["counts"], dtype=float)
    node_type = payload["type"]
    if node_type == "leaf":
        return Leaf(counts)
    if node_type == "nominal":
        return NominalSplit(
            counts,
            payload["attribute"],
            {int(code): _node_from_dict(child) for code, child in payload["branches"].items()},
            {int(code): float(f) for code, f in payload["fractions"].items()},
        )
    if node_type == "numeric":
        return NumericSplit(
            counts,
            payload["attribute"],
            float(payload["threshold"]),
            _node_from_dict(payload["low"]),
            _node_from_dict(payload["high"]),
            float(payload["low_fraction"]),
        )
    raise ValueError(f"unknown node type: {node_type!r}")


# -- configs --------------------------------------------------------------------


def _bounds_to_dict(bounds: ConfidenceBounds) -> dict[str, Any]:
    return {"confidence": bounds.confidence, "method": bounds.method.value}


def _bounds_from_dict(payload: Mapping[str, Any]) -> ConfidenceBounds:
    return ConfidenceBounds(payload["confidence"], IntervalMethod(payload["method"]))


def _tree_config_to_dict(config: TreeConfig) -> dict[str, Any]:
    return {
        "min_instances": config.min_instances,
        "min_class_instances": config.min_class_instances,
        "max_depth": config.max_depth,
        "gain_ratio": config.gain_ratio,
        "numeric_penalty": config.numeric_penalty,
        "pruning": config.pruning.value,
        "bounds": _bounds_to_dict(config.bounds),
        "min_detection_confidence": config.min_detection_confidence,
    }


def _tree_config_from_dict(payload: Mapping[str, Any]) -> TreeConfig:
    return TreeConfig(
        min_instances=payload["min_instances"],
        min_class_instances=payload["min_class_instances"],
        max_depth=payload["max_depth"],
        gain_ratio=payload["gain_ratio"],
        numeric_penalty=payload["numeric_penalty"],
        pruning=PruningStrategy(payload["pruning"]),
        bounds=_bounds_from_dict(payload["bounds"]),
        min_detection_confidence=payload.get("min_detection_confidence", 0.8),
    )


# -- auditor ---------------------------------------------------------------------


def auditor_to_dict(auditor: DataAuditor) -> dict[str, Any]:
    """Serialize a fitted (tree-based) auditor to plain JSON types."""
    classifiers: dict[str, Any] = {}
    for class_attr, classifier in auditor.classifiers.items():
        if not isinstance(classifier, TreeClassifier):
            raise TypeError(
                f"cannot serialize classifier of type {type(classifier).__name__} "
                f"for attribute {class_attr!r}; only TreeClassifier is supported"
            )
        if classifier.root is None or classifier.dataset is None:
            raise ValueError(f"classifier for {class_attr!r} is not fitted")
        classifiers[class_attr] = {
            "base_attrs": list(classifier.dataset.base_attrs),
            "class_encoder": classifier.dataset.class_encoder.to_state(),
            "tree": _node_to_dict(classifier.root),
            "tree_config": _tree_config_to_dict(classifier.config),
        }
    config = auditor.config
    return {
        "format": "repro-auditor-v1",
        "schema": schema_to_dict(auditor.schema),
        "config": {
            "min_error_confidence": config.min_error_confidence,
            "bounds": _bounds_to_dict(config.bounds),
            "n_bins": config.n_bins,
            "base_attributes": {k: list(v) for k, v in config.base_attributes.items()},
            "audited_attributes": (
                list(config.audited_attributes)
                if config.audited_attributes is not None
                else None
            ),
            "n_jobs": config.n_jobs,
            # fit_path / fit_n_jobs are deliberately NOT persisted: they
            # are fit-time execution knobs that never change the induced
            # model, and keeping them out makes the serialized document
            # (and hence the registry content address) byte-identical no
            # matter how the model was fitted.
        },
        "classifiers": classifiers,
    }


def auditor_from_dict(payload: Mapping[str, Any]) -> DataAuditor:
    """Restore a ready-to-audit :class:`DataAuditor` (inverse of
    :func:`auditor_to_dict`)."""
    if payload.get("format") != "repro-auditor-v1":
        raise ValueError(f"unsupported model format: {payload.get('format')!r}")
    schema = schema_from_dict(payload["schema"])
    config_payload = payload["config"]
    config = AuditorConfig(
        min_error_confidence=config_payload["min_error_confidence"],
        bounds=_bounds_from_dict(config_payload["bounds"]),
        n_bins=config_payload["n_bins"],
        base_attributes=config_payload["base_attributes"],
        audited_attributes=config_payload["audited_attributes"],
        # absent in models written before the parallel executor existed
        n_jobs=config_payload.get("n_jobs", 1),
    )
    auditor = DataAuditor(schema, config)
    for class_attr, entry in payload["classifiers"].items():
        class_encoder = ClassEncoder.from_state(
            schema.attribute(class_attr), entry["class_encoder"]
        )
        dataset = Dataset.for_prediction(
            schema, class_attr, entry["base_attrs"], class_encoder
        )
        classifier = TreeClassifier(_tree_config_from_dict(entry["tree_config"]))
        classifier.dataset = dataset
        classifier.root = _node_from_dict(entry["tree"])
        auditor.classifiers[class_attr] = classifier
    return auditor


def save_auditor(auditor: DataAuditor, path: Union[str, Path]) -> None:
    """Persist a fitted auditor as JSON, atomically.

    The document is written to a sibling temp file and moved into place
    with :func:`os.replace`, so a crash (or serialization error) mid-save
    can never leave a truncated model at *path* — the online job either
    finds the previous model intact or the complete new one.
    """
    path = Path(path)
    payload = auditor_to_dict(auditor)  # serialize before touching disk
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_auditor(path: Union[str, Path]) -> DataAuditor:
    """Load a fitted auditor persisted by :func:`save_auditor`."""
    with open(path, "r", encoding="utf-8") as handle:
        return auditor_from_dict(json.load(handle))
