"""Parameter sweeps behind the paper's evaluation figures (sec. 6.1).

Each sweep fixes the base configuration and varies one knob:

* :func:`sweep_records` — figure 3 (sensitivity vs. number of records),
* :func:`sweep_rules` — figure 4 (sensitivity vs. number of rules),
* :func:`sweep_pollution_factor` — figure 5 (sensitivity vs. pollution
  factor).

Results come back as ``(x, ExperimentResult)`` pairs so the benches can
print sensitivity (the figures), specificity (the sec. 6.1 "about 99 %"
claim), and correction quality (its reported correlation with
sensitivity) from a single run.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.testenv.experiment import ExperimentConfig, ExperimentResult, TestEnvironment

__all__ = [
    "SweepPoint",
    "sweep_records",
    "sweep_rules",
    "sweep_pollution_factor",
    "format_series",
]

#: One sweep sample: the varied value and the full experiment result.
SweepPoint = tuple[float, ExperimentResult]

#: Default grids, chosen to show the figures' characteristic shapes at
#: laptop-scale runtimes (the benches can pass denser grids).
DEFAULT_RECORD_GRID = (1000, 2000, 4000, 6000, 8000, 10000)
DEFAULT_RULE_GRID = (0, 25, 50, 100, 150, 200)
DEFAULT_FACTOR_GRID = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0)


def _run_series(
    environment: TestEnvironment,
    configs: Sequence[tuple[float, ExperimentConfig]],
) -> list[SweepPoint]:
    return [(x, environment.run(config)) for x, config in configs]


def sweep_records(
    record_grid: Sequence[int] = DEFAULT_RECORD_GRID,
    base: Optional[ExperimentConfig] = None,
    environment: Optional[TestEnvironment] = None,
) -> list[SweepPoint]:
    """Figure 3: influence of the number of records on sensitivity."""
    base = base or ExperimentConfig()
    environment = environment or TestEnvironment()
    configs = [
        (float(n), dataclasses.replace(base, n_records=int(n))) for n in record_grid
    ]
    return _run_series(environment, configs)


def sweep_rules(
    rule_grid: Sequence[int] = DEFAULT_RULE_GRID,
    base: Optional[ExperimentConfig] = None,
    environment: Optional[TestEnvironment] = None,
) -> list[SweepPoint]:
    """Figure 4: influence of the number of rules (structure strength)."""
    base = base or ExperimentConfig()
    environment = environment or TestEnvironment()
    configs = [
        (float(n), dataclasses.replace(base, n_rules=int(n))) for n in rule_grid
    ]
    return _run_series(environment, configs)


def sweep_pollution_factor(
    factor_grid: Sequence[float] = DEFAULT_FACTOR_GRID,
    base: Optional[ExperimentConfig] = None,
    environment: Optional[TestEnvironment] = None,
) -> list[SweepPoint]:
    """Figure 5: influence of the common pollution factor."""
    base = base or ExperimentConfig()
    environment = environment or TestEnvironment()
    configs = [
        (float(f), dataclasses.replace(base, pollution_factor=float(f)))
        for f in factor_grid
    ]
    return _run_series(environment, configs)


def format_series(
    title: str,
    x_label: str,
    points: Sequence[SweepPoint],
) -> str:
    """Render a sweep as the table the paper's figures plot."""
    lines = [title, f"{x_label:>12}  sensitivity  specificity  precision  corr.quality"]
    for x, result in points:
        evaluation = result.evaluation
        lines.append(
            f"{x:>12g}  {evaluation.sensitivity:>11.3f}  "
            f"{evaluation.specificity:>11.4f}  {evaluation.records.precision:>9.3f}  "
            f"{evaluation.correction_quality:>+12.3f}"
        )
    return "\n".join(lines)
