"""Tests for the audit service daemon (``repro.serve``).

Three layers, matching the module split: :class:`AuditService` endpoint
semantics without sockets, the HTTP transport against a real
ephemeral-port server, and the ``repro serve`` process itself
(clean SIGTERM/SIGINT shutdown). The load-bearing assertion throughout:
the JSONL findings the service streams are **byte-identical** to
``repro audit --format jsonl`` on the same model and table."""

import json
import os
import random
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.core import AuditorConfig, AuditSession
from repro.registry import ModelRegistry, model_digest
from repro.core.serialize import auditor_to_dict, save_auditor
from repro.schema import Schema, Table, nominal, numeric, write_csv
from repro.schema.serialize import schema_to_dict
from repro.serve import AuditService, ServiceError, make_server


def _structured_table(n=400, seed=7, error_rate=0.05):
    rng = random.Random(seed)
    rule = {"a": "x", "b": "y", "c": "z"}
    rows = []
    for _ in range(n):
        a = rng.choice(["a", "b", "c"])
        b = rule[a] if rng.random() > error_rate else rng.choice(["x", "y", "z"])
        rows.append([a, b, rng.randint(0, 100)])
    schema = Schema(
        [
            nominal("A", ["a", "b", "c"]),
            nominal("B", ["x", "y", "z"]),
            numeric("N", 0, 100, integer=True),
        ]
    )
    return Table(schema, rows)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """One fitted model in a registry + its training/audit CSVs on disk."""
    root = tmp_path_factory.mktemp("serve")
    train = _structured_table(seed=7)
    load = _structured_table(n=150, seed=99, error_rate=0.2)
    train_csv = root / "train.csv"
    load_csv = root / "load.csv"
    write_csv(train, train_csv)
    write_csv(load, load_csv)
    session = AuditSession(
        train.schema, AuditorConfig(min_error_confidence=0.8)
    ).fit(train)
    registry = ModelRegistry(root / "registry")
    session.save_to_registry(registry, "svc")
    model_file = root / "model.json"
    session.save(model_file)
    return {
        "root": root,
        "schema": train.schema,
        "registry": registry,
        "session": session,
        "train_csv": train_csv,
        "load_csv": load_csv,
        "load": load,
        "model_file": model_file,
    }


@pytest.fixture
def service(corpus):
    return AuditService(corpus["registry"])


def _cli_jsonl(capsys, model, load_csv, extra=()):
    """stdout of ``repro audit --format jsonl`` — the byte baseline."""
    capsys.readouterr()  # drop anything buffered by earlier calls
    assert (
        main(
            ["audit", "--model", str(model), "--input", str(load_csv), "--format", "jsonl"]
            + list(extra)
        )
        == 0
    )
    return capsys.readouterr().out


class TestServiceEndpoints:
    def test_healthz_counts(self, service):
        health = service.healthz()
        assert health["status"] == "ok"
        assert health["models"] == 1
        service.mark_request()
        assert service.healthz()["requests_served"] == 1

    def test_list_and_show(self, service, corpus):
        listing = service.list_models()
        (entry,) = listing["models"]
        assert entry["name"] == "svc"
        assert entry["latest"]["ref"] == "svc@v1"
        shown = service.show_model("svc@v1")
        assert shown["digest"] == model_digest(
            auditor_to_dict(corpus["session"].auditor)
        )
        assert shown["provenance"]["schema_hash"]

    def test_show_unknown_is_404(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.show_model("nope@v1")
        assert excinfo.value.status == 404

    def test_fit_registers_with_provenance(self, corpus):
        service = AuditService(ModelRegistry(corpus["root"] / "fit-registry"))
        version = service.fit(
            {
                "name": "fresh",
                "schema": schema_to_dict(corpus["schema"]),
                "source": str(corpus["train_csv"]),
                "config": {"min_error_confidence": 0.8},
            }
        )
        assert version["ref"] == "fresh@v1"
        prov = version["provenance"]
        assert prov["source"] == str(corpus["train_csv"])
        assert prov["n_rows"] == 400
        assert prov["config"]["min_error_confidence"] == 0.8
        assert prov["schema_hash"] and prov["created_at"]
        # the same fit through the service or the session: same digest
        assert version["digest"] == model_digest(
            auditor_to_dict(corpus["session"].auditor)
        )

    @pytest.mark.parametrize(
        "mutate, status, fragment",
        [
            (lambda p: p.pop("name"), 400, "missing the 'name'"),
            (lambda p: p.pop("source"), 400, "missing the 'source'"),
            (lambda p: p.update(schema={"bad": 1}), 400, "invalid schema"),
            (lambda p: p.update(source="/no/such.csv"), 400, "cannot read source"),
            (lambda p: p.update(config={"polluters": 3}), 400, "unknown config"),
        ],
    )
    def test_fit_rejections(self, corpus, mutate, status, fragment):
        service = AuditService(ModelRegistry(corpus["root"] / "rej-registry"))
        payload = {
            "name": "fresh",
            "schema": schema_to_dict(corpus["schema"]),
            "source": str(corpus["train_csv"]),
        }
        mutate(payload)
        with pytest.raises(ServiceError) as excinfo:
            service.fit(payload)
        assert excinfo.value.status == status
        assert fragment in str(excinfo.value)

    def test_audit_source_summary(self, service, corpus):
        summary, lines = service.audit(
            {"model": "svc", "source": str(corpus["load_csv"])}
        )
        body = "".join(lines)
        assert summary["model"] == "svc@v1"
        assert summary["rows"] == 150
        assert summary["findings"] == body.count("\n") > 0
        first = json.loads(body.splitlines()[0])
        assert {"row", "attribute", "confidence"} <= set(first)

    def test_audit_rows_inline(self, service, corpus):
        rows = [record.to_dict() for record in corpus["load"].records()]
        summary, lines = service.audit({"model": "svc@latest", "rows": rows})
        assert summary["rows"] == 150
        assert summary["findings"] == "".join(lines).count("\n")

    @pytest.mark.parametrize(
        "payload, status, fragment",
        [
            ({"source": "x.csv"}, 400, "missing the 'model'"),
            ({"model": "ghost", "source": "x.csv"}, 404, "no model named"),
            ({"model": "svc"}, 400, "exactly one of"),
            ({"model": "svc", "source": "a", "rows": []}, 400, "exactly one of"),
            ({"model": "svc", "source": "/no/such.csv"}, 400, "cannot audit source"),
            ({"model": "svc", "rows": "nope"}, 400, "must be a list"),
            ({"model": "svc", "rows": [], "chunk_size": 0}, 400, "chunk_size"),
            ({"model": "svc", "rows": [{"A": "q"}]}, 400, "invalid rows payload"),
            ({"model": "svc", "rows": [], "engine": "duckdb"}, 400, "'engine'"),
        ],
    )
    def test_audit_rejections(self, service, payload, status, fragment):
        with pytest.raises(ServiceError) as excinfo:
            service.audit(payload)
        assert excinfo.value.status == status
        assert fragment in str(excinfo.value)

    def test_audit_engine_sql_matches_memory(self, service, corpus):
        from repro.io.sqlite_backend import SqliteTableSink

        database = corpus["root"] / "load.db"
        if not database.exists():
            with SqliteTableSink(corpus["schema"], database, table="loads") as sink:
                sink.write(corpus["load"])
        url = f"sqlite:///{database}?table=loads"
        memory_summary, memory_lines = service.audit({"model": "svc", "source": url})
        sql_summary, sql_lines = service.audit(
            {"model": "svc", "source": url, "engine": "sql"}
        )
        assert "".join(sql_lines) == "".join(memory_lines)
        assert memory_summary["engine"] == "memory"
        assert sql_summary["engine"] == "sql"
        assert "notice" not in sql_summary  # pushdown ran, no fallback

    def test_audit_engine_sql_csv_falls_back_with_notice(self, service, corpus):
        summary, lines = service.audit(
            {"model": "svc", "source": str(corpus["load_csv"]), "engine": "sql"}
        )
        assert summary["engine"] == "memory"
        assert "not SQLite" in summary["notice"]
        assert summary["findings"] == "".join(lines).count("\n")

    def test_model_cache_reuses_loaded_auditor(self, service):
        service.audit({"model": "svc", "rows": []})
        (cached,) = service._model_cache.values()
        service.audit({"model": "svc@v1", "rows": []})
        assert list(service._model_cache.values()) == [cached]


class TestBitIdentity:
    """The acceptance bar: service findings == CLI findings, byte for byte."""

    def test_stream_matches_cli_jsonl(self, service, corpus, capsys):
        baseline = _cli_jsonl(capsys, corpus["model_file"], corpus["load_csv"])
        assert baseline  # the noisy load must produce findings
        _, lines = service.audit({"model": "svc", "source": str(corpus["load_csv"])})
        assert "".join(lines) == baseline

    def test_inline_rows_match_cli_jsonl(self, service, corpus, capsys):
        baseline = _cli_jsonl(capsys, corpus["model_file"], corpus["load_csv"])
        rows = [record.to_dict() for record in corpus["load"].records()]
        _, lines = service.audit({"model": "svc", "rows": rows})
        assert "".join(lines) == baseline

    def test_chunked_source_matches_unchunked_cli(self, service, corpus, capsys):
        baseline = _cli_jsonl(capsys, corpus["model_file"], corpus["load_csv"])
        _, lines = service.audit(
            {"model": "svc", "source": str(corpus["load_csv"]), "chunk_size": 32}
        )
        assert "".join(lines) == baseline


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, dict(resp.headers), resp.read().decode("utf-8")


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as resp:
        return resp.status, dict(resp.headers), resp.read().decode("utf-8")


@pytest.fixture
def http_server(corpus):
    server = make_server(corpus["registry"], port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    server.service.stop_monitors()
    thread.join(timeout=10)


class TestHttpTransport:
    def test_full_round_trip(self, http_server, corpus, capsys):
        status, _, body = _get(f"{http_server}/healthz")
        assert status == 200 and json.loads(body)["status"] == "ok"

        status, _, body = _post(
            f"{http_server}/fit",
            {
                "name": "overhttp",
                "schema": schema_to_dict(corpus["schema"]),
                "source": str(corpus["train_csv"]),
                "config": {"min_error_confidence": 0.8},
            },
        )
        assert status == 201 and json.loads(body)["ref"] == "overhttp@v1"

        status, _, body = _get(f"{http_server}/models")
        assert status == 200
        assert {m["name"] for m in json.loads(body)["models"]} == {"svc", "overhttp"}

        status, _, body = _get(f"{http_server}/models/overhttp@latest")
        assert status == 200 and json.loads(body)["version"] == 1

        status, headers, body = _post(
            f"{http_server}/audit",
            {"model": "overhttp", "source": str(corpus["load_csv"])},
        )
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        assert headers["X-Audit-Model"] == "overhttp@v1"
        assert int(headers["X-Audit-Rows"]) == 150
        assert int(headers["X-Audit-Findings"]) == body.count("\n")
        # over the wire and through chunked decoding: still the CLI bytes
        assert body == _cli_jsonl(
            capsys, corpus["model_file"], corpus["load_csv"]
        )

    def test_errors_are_json_with_status(self, http_server):
        for url, expected in [
            (f"{http_server}/models/ghost", 404),
            (f"{http_server}/nope", 404),
        ]:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(url)
            assert excinfo.value.code == expected
            assert "error" in json.loads(excinfo.value.read().decode("utf-8"))

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{http_server}/audit", {"model": "svc"})
        assert excinfo.value.code == 400

    def test_concurrent_requests(self, http_server, corpus):
        rows = [record.to_dict() for record in corpus["load"].records()]
        results = []

        def hit():
            results.append(_post(f"{http_server}/audit", {"model": "svc", "rows": rows}))

        threads = [threading.Thread(target=hit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(results) == 4
        assert len({body for _, _, body in results}) == 1  # all identical


def _write_stream(table, path):
    from repro.io import open_sink

    with open_sink(table.schema, path) as sink:
        sink.write(table)


def _wait_for(predicate, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


class TestHostedMonitors:
    def _start(self, service, tmp_path, name="m", **overrides):
        stream = _structured_table(n=256, seed=3, error_rate=0.2)
        source = tmp_path / f"{name}.jsonl"
        _write_stream(stream, source)
        payload = {
            "name": name,
            "model": "svc",
            "source": str(source),
            "window_rows": 64,
            "poll_interval": 0.05,
        }
        payload.update(overrides)
        return service.start_monitor(payload), source

    def test_start_progress_and_stop(self, service, tmp_path):
        started, source = self._start(service, tmp_path)
        assert started["name"] == "m"
        assert started["model"] == "svc@v1"
        try:
            assert _wait_for(
                lambda: service.list_monitors()["monitors"][0]["rows"] == 256
            )
            (entry,) = service.list_monitors()["monitors"]
            assert entry["running"] is True
            assert entry["windows"] == 4
            assert entry["findings"] > 0
            assert entry["error"] is None
            assert entry["drift"]["windows"] == 4
            # a producer appending while the monitor runs is picked up
            _write_stream(_structured_table(n=64, seed=8), tmp_path / "more.jsonl")
            with open(source, "ab") as handle:
                handle.write((tmp_path / "more.jsonl").read_bytes())
            assert _wait_for(
                lambda: service.list_monitors()["monitors"][0]["rows"] == 320
            )
        finally:
            service.stop_monitors()
        (entry,) = service.list_monitors()["monitors"]
        assert entry["running"] is False
        # the monitor's state and findings live under the registry root
        monitors_dir = service.registry.root / "monitors"
        assert (monitors_dir / "m.state.json").exists()
        assert (monitors_dir / "m.findings.jsonl").stat().st_size > 0

    def test_duplicate_name_conflicts_while_running(self, service, tmp_path):
        self._start(service, tmp_path, name="dup")
        try:
            with pytest.raises(ServiceError) as excinfo:
                self._start(service, tmp_path, name="dup")
            assert excinfo.value.status == 409
        finally:
            service.stop_monitors()

    def test_bad_requests_are_400(self, service, tmp_path):
        cases = [
            {"model": "svc", "source": "x.jsonl"},  # no name
            {"name": "a/b", "model": "svc", "source": "x.jsonl"},  # bad name
            {"name": "m", "model": "svc"},  # no source
            {"name": "m", "model": "svc", "source": str(tmp_path / "ghost.jsonl")},
            {
                "name": "m",
                "model": "svc",
                "source": str(tmp_path / "ghost.jsonl"),
                "refit": "sometimes",
            },
        ]
        for payload in cases:
            with pytest.raises(ServiceError) as excinfo:
                service.start_monitor(payload)
            assert excinfo.value.status == 400, payload
        assert service.list_monitors() == {"monitors": []}

    def test_unknown_model_is_404(self, service, tmp_path):
        with pytest.raises(ServiceError) as excinfo:
            service.start_monitor(
                {"name": "m", "model": "ghost", "source": str(tmp_path / "s.jsonl")}
            )
        assert excinfo.value.status == 404

    def test_monitors_over_http(self, http_server, tmp_path):
        stream = _structured_table(n=128, seed=5, error_rate=0.2)
        source = tmp_path / "s.jsonl"
        _write_stream(stream, source)
        payload = {
            "name": "overhttp",
            "model": "svc",
            "source": str(source),
            "window_rows": 64,
            "poll_interval": 0.05,
        }
        status, _, body = _post(f"{http_server}/monitors", payload)
        assert status == 201 and json.loads(body)["name"] == "overhttp"

        def caught_up():
            _, _, listing = _get(f"{http_server}/monitors")
            monitors = json.loads(listing)["monitors"]
            return monitors and monitors[0]["rows"] == 128

        assert _wait_for(caught_up)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{http_server}/monitors", payload)
        assert excinfo.value.code == 409


def _spawn_daemon(registry_dir):
    env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--registry", str(registry_dir), "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", line)
    assert match, f"no listen line from the daemon, got: {line!r}"
    return proc, f"http://{match.group(1)}:{match.group(2)}"


class TestDaemonProcess:
    @pytest.mark.parametrize(
        "signum, expected_code",
        [(signal.SIGTERM, 0), (signal.SIGINT, 130)],
    )
    def test_signal_shutdown_is_clean(self, tmp_path, signum, expected_code):
        proc, base = _spawn_daemon(tmp_path / "registry")
        try:
            deadline = time.monotonic() + 10
            while True:  # the socket is bound before the print, so retry briefly
                try:
                    status, _, _ = _get(f"{base}/healthz")
                    break
                except (urllib.error.URLError, ConnectionError):
                    assert time.monotonic() < deadline
                    time.sleep(0.05)
            assert status == 200
            proc.send_signal(signum)
            assert proc.wait(timeout=15) == expected_code
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()
