#!/usr/bin/env python3
"""Continuous auditing: drift detection and registry-backed auto-refit.

The paper audits one load; a warehouse feed is the same table growing
night after night, and nothing guarantees tomorrow's data keeps
yesterday's structure. :mod:`repro.monitor` turns the one-shot audit
into a resident loop:

1. **fit + register** — a QUIS model is induced from history and
   registered as ``quis@v1`` (the paper's offline side);
2. **monitor** — a :class:`~repro.monitor.watcher.TableWatcher` tails
   the growing load file, audits it in fixed 128-row windows, appends
   findings JSONL, and persists a durable watermark after every window
   (kill it anywhere, rerun, and the findings file comes out
   byte-identical);
3. **drift** — midway through the stream the pollution rate steps from
   0.4% to 10%; the per-attribute Wilson-interval tracker notices the
   finding rate separating from its baseline within a couple of
   windows;
4. **auto-refit** — the watcher refits on recent rows and registers
   ``quis@v2`` with ``trigger=drift`` provenance, moving ``latest`` —
   a serving daemon resolving ``quis@latest`` picks the refreshed
   model up on its very next request, no restart.

Run with:  python examples/continuous_audit.py
"""

import tempfile
from pathlib import Path

from repro import AuditSession
from repro.core import AuditorConfig
from repro.io import open_sink
from repro.monitor import DriftConfig, RefitPolicy
from repro.registry import ModelRegistry
from repro.testenv import quis_regime_stream


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-monitor-"))

    # -- offline: induce the structure model, register quis@v1 ----------
    history, _ = quis_regime_stream([(4000, 0.004)], seed=7)
    session = AuditSession(
        history.schema, AuditorConfig(min_error_confidence=0.8)
    ).fit(history)
    registry = ModelRegistry(workdir / "registry")
    v1 = session.save_to_registry(registry, "quis")
    print(f"registered {v1.ref} (digest {v1.digest[:12]})")

    # -- the load stream: clean regime, then a 10% pollution step -------
    stream, _ = quis_regime_stream([(1280, 0.004), (1280, 0.10)], seed=11)
    source = workdir / "loads.jsonl"
    with open_sink(stream.schema, source) as sink:
        sink.write(stream)
    print(
        f"stream: {stream.n_rows} rows, pollution steps 0.4% -> 10% at row 1280"
    )

    # -- the monitor: windowed audit + drift + auto-refit ---------------
    watcher = session.monitor(
        source,
        state_path=workdir / "loads.state",
        findings_path=workdir / "loads.findings.jsonl",
        window_rows=128,
        drift=DriftConfig(confidence=0.95, baseline_windows=3, sustain_windows=2),
        refit=RefitPolicy("auto", registry=registry, model_name="quis",
                          refit_rows=1280),
        model_ref=v1.ref,
    )
    report = watcher.run()  # catch-up pass over everything on disk
    status = watcher.status()
    watcher.close()

    print(
        f"monitored {status['rows']} rows in {status['windows']} windows: "
        f"{status['suspicious']} suspicious records, "
        f"{status['findings']} findings"
    )
    event = status["refits"][0]["drift"]
    print(
        f"drift detected on {event['attribute']} at window {event['window']}: "
        f"finding rate {event['window_rate']:.3f} vs baseline "
        f"{event['baseline_rate']:.3f}"
    )

    # -- the registry moved: latest now serves the refreshed model ------
    latest = registry.resolve("quis@latest")
    provenance = latest.provenance
    print(
        f"auto-refit registered {latest.ref} "
        f"(trigger={provenance.extra['trigger']}, "
        f"fitted on {provenance.n_rows} recent rows)"
    )
    assert latest.version == 2
    assert provenance.extra["trigger"] == "drift"
    assert status["model"] == latest.ref

    # top post-step findings, ranked like a one-shot audit would rank them
    print("top findings:")
    for finding in report.ranked_findings(3):
        print(
            f"  row {finding.row:>5}  {finding.attribute:<8} "
            f"confidence {finding.confidence:.3f}"
        )


if __name__ == "__main__":
    main()
