"""Parquet backend (optional): columnar extracts via ``pyarrow``.

``pyarrow`` is an **optional** dependency — importing this module is
free, and only constructing a source/sink requires the library;
without it both raise an :class:`ImportError` naming the missing
package and the backends that work regardless.

Schema-driven type mapping: nominal → ``string``, date → ``date32``,
numeric → ``int64`` for integer domains and ``float64`` otherwise.
Unlike the CSV/JSONL/SQLite backends, a ``float64`` column has one
physical type, so Python ints stored in a non-integer numeric attribute
come back as floats (and integers beyond 64 bits are rejected by
arrow) — the only documented deviation from the loss-free round trip
the other backends guarantee.

Reads stream record batches (``ParquetFile.iter_batches``), so chunked
audits stay bounded-memory over arbitrarily large extracts.

The columnar fast lane
----------------------
Parquet is the one backend whose storage is *already* column-major, so
its :class:`ArrowColumnBatch` keeps the Arrow record batch itself and
converts columns lazily on first access — the row path's per-batch
``to_pylist()`` of every column is gone. Columns whose physical type is
exactly what :class:`ParquetTableSink` writes (``string`` / ``date32`` /
``int64`` / ``float64``) skip per-cell coercion entirely, and the
encoding caches' :meth:`~ArrowColumnBatch.numeric_view` hook serves
float64 views derived from the Arrow buffers without ever materializing
Python objects for ordered columns. Every fast lane is only taken where
it is provably value-identical to the row path's per-cell conversion
(int64→float64 and date-ordinal arithmetic are exact or identically
rounded); anything else — foreign physical types, non-finite floats —
falls back to the per-cell lane, which replays rows in order so errors
stay byte-identical to the row path.
"""

from __future__ import annotations

import datetime
from pathlib import Path
from typing import Iterator, Optional, Union

import numpy as np

from repro.io.base import DEFAULT_CHUNK_SIZE, TableSink, TableSource
from repro.io.cells import coerce_number, convert_row
from repro.io.columnar import ColumnBatch
from repro.schema.attribute import Attribute
from repro.schema.schema import Schema
from repro.schema.types import AttributeKind, Value

__all__ = ["ParquetTableSource", "ParquetTableSink", "ArrowColumnBatch"]

#: ``date(1970, 1, 1).toordinal()`` — date32 stores days since the Unix
#: epoch, the encoders ordinal days; the shift between them is exact in
#: float64 for any representable date.
_EPOCH_ORDINAL = 719163


def _require_pyarrow():
    try:
        import pyarrow
        import pyarrow.parquet
    except ImportError:
        raise ImportError(
            "the parquet backend needs the optional dependency pyarrow "
            "(pip install pyarrow); the csv, jsonl and sqlite backends "
            "work without it"
        ) from None
    return pyarrow, pyarrow.parquet


def _arrow_type(attribute: Attribute, pa):
    if attribute.kind is AttributeKind.NOMINAL:
        return pa.string()
    if attribute.kind is AttributeKind.DATE:
        return pa.date32()
    if getattr(attribute.domain, "integer", False):
        return pa.int64()
    return pa.float64()


def _coerce(raw: object, kind: AttributeKind, integer: bool) -> Value:
    if raw is None:
        return None
    if kind is AttributeKind.DATE:
        if isinstance(raw, datetime.datetime):
            return raw.date()
        if not isinstance(raw, datetime.date):
            raise ValueError(f"expected a date, got {raw!r}")
        return raw
    if kind is AttributeKind.NOMINAL:
        if not isinstance(raw, str):
            raise ValueError(f"expected a string for a nominal cell, got {raw!r}")
        return raw
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise ValueError(f"expected a number for a numeric cell, got {raw!r}")
    return coerce_number(raw, integer)


def _converters(schema: Schema) -> list:
    return [
        lambda raw, kind=a.kind, integer=getattr(a.domain, "integer", False): (
            _coerce(raw, kind, integer)
        )
        for a in schema.attributes
    ]


class ArrowColumnBatch(ColumnBatch):
    """A :class:`~repro.io.columnar.ColumnBatch` over one retained Arrow
    record batch.

    Columns convert lazily on first :meth:`column` access (and the
    conversion is cached); ordered columns served through
    :meth:`numeric_view` never materialize Python cell values at all.
    ``row_offset`` is the number of rows yielded by earlier batches of
    the same stream, so error labels carry the row path's global row
    numbers.
    """

    __slots__ = ("_batch", "_row_offset", "_index", "_attrs", "_views")

    def __init__(self, schema: Schema, batch, row_offset: int = 0):
        super().__init__(schema, {}, batch.num_rows)
        self._batch = batch
        self._row_offset = row_offset
        self._index = {
            name: batch.schema.get_field_index(name) for name in schema.names
        }
        self._attrs = dict(zip(schema.names, schema.attributes))
        self._views: dict[str, Optional[np.ndarray]] = {}

    def __reduce__(self):
        # dispatching a batch to a worker ships converted columns, not
        # the Arrow buffers (the plain batch is cheap and dependency-free)
        return (
            ColumnBatch,
            (
                self.schema,
                {name: self.column(name) for name in self.schema.names},
                self.n_rows,
            ),
        )

    # -- raw cell values (lazy) ---------------------------------------------

    def column(self, name: str) -> list:
        col = self.columns.get(name)
        if col is None:
            col = self._convert_column(name)
            self.columns[name] = col
        return col

    def _fast_ok(self, arrow_type, kind: AttributeKind, integer: bool) -> bool:
        """True when ``to_pylist`` already yields the row path's converted
        values for every admissible cell of this physical type, so the
        per-cell ``_coerce`` walk can be skipped (see module docstring)."""
        import pyarrow as pa

        if kind is AttributeKind.NOMINAL:
            return pa.types.is_string(arrow_type) or pa.types.is_large_string(
                arrow_type
            )
        if kind is AttributeKind.DATE:
            return pa.types.is_date32(arrow_type)
        # numeric: any int64 cell is admissible as-is (coerce_number is
        # the identity on ints); float64 needs the finiteness check
        return pa.types.is_int64(arrow_type)

    def _convert_column(self, name: str) -> list:
        arr = self._batch.column(self._index[name])
        attribute = self._attrs[name]
        kind = attribute.kind
        integer = getattr(attribute.domain, "integer", False)
        raw = arr.to_pylist()
        try:
            if self._fast_ok(arr.type, kind, integer):
                return raw
            import pyarrow as pa

            if (
                kind is AttributeKind.NUMERIC
                and not integer
                and pa.types.is_floating(arr.type)
            ):
                # float64 fast lane: one vectorized finiteness check
                # replaces n per-cell check_finite calls
                view = self.numeric_view(name)
                if view is not None:
                    return raw
        except Exception:  # pragma: no cover - pyarrow API drift
            pass
        try:
            return [_coerce(v, kind, integer) for v in raw]
        except ValueError:
            self._raise_first_row_error()
            raise  # pragma: no cover - column conversion failed, rows did not

    def _raise_first_row_error(self) -> None:
        """Replay the whole batch row-wise so the raised error names the
        first bad cell in row-major order — byte-identical to the row
        path (a later column may fail on an earlier row)."""
        names = list(self.schema.names)
        converters = _converters(self.schema)
        raws = [self._batch.column(self._index[n]).to_pylist() for n in names]
        for i, raw_row in enumerate(zip(*raws), start=1):
            convert_row(f"row {self._row_offset + i}", raw_row, converters, names)

    # -- accelerator hooks ---------------------------------------------------

    def null_mask(self, name: str) -> np.ndarray:
        mask = self._masks.get(name)
        if mask is None:
            try:
                arr = self._batch.column(self._index[name])
                mask = np.ascontiguousarray(
                    arr.is_null().to_numpy(zero_copy_only=False), dtype=bool
                )
            except Exception:  # pragma: no cover - pyarrow API drift
                values = self.column(name)
                mask = np.fromiter(
                    (v is None for v in values), dtype=bool, count=len(values)
                )
            self._masks[name] = mask
        return mask

    def numeric_view(self, name: str) -> Optional[np.ndarray]:
        if name not in self._views:
            try:
                view = self._compute_view(name)
            except Exception:  # pragma: no cover - pyarrow API drift
                view = None
            self._views[name] = view
        return self._views[name]

    def _compute_view(self, name: str) -> Optional[np.ndarray]:
        """Float64 view of an ordered column straight off the Arrow
        buffers, or ``None`` when no provably-identical lane exists.

        * int64 → float64: both Arrow's cast and Python's ``float(int)``
          round to nearest, so the views agree bit-for-bit even beyond
          2**53;
        * float64: the buffer values *are* the row path's floats, but a
          non-finite non-null cell means the row path would have raised —
          answer ``None`` so the caches fall back to :meth:`column`,
          which raises the identical error;
        * date32 → epoch days + 719163 == ``float(d.toordinal())``,
          exact in float64 for every representable date.
        """
        import pyarrow as pa

        arr = self._batch.column(self._index[name])
        attribute = self._attrs[name]
        if attribute.kind is AttributeKind.DATE:
            if not pa.types.is_date32(arr.type):
                return None
            days = arr.cast(pa.int32()).to_numpy(zero_copy_only=False)
            return days.astype(np.float64) + float(_EPOCH_ORDINAL)
        if attribute.kind is not AttributeKind.NUMERIC:
            return None
        if pa.types.is_int64(arr.type):
            out = arr.to_numpy(zero_copy_only=False)
            # with nulls present pyarrow already hands back float64+NaN
            return out if out.dtype == np.float64 else out.astype(np.float64)
        if pa.types.is_float64(arr.type):
            if getattr(attribute.domain, "integer", False):
                return None  # integralness needs the per-cell walk
            out = arr.to_numpy(zero_copy_only=False)
            if out.dtype != np.float64:  # pragma: no cover - defensive
                return None
            if not np.isfinite(out[~self.null_mask(name)]).all():
                return None  # force the raw lane, which raises
            return out
        return None


class ParquetTableSource(TableSource):
    """Record-batch streaming reader over one Parquet file.

    Natively columnar — and the only backend whose column batches wrap
    the storage's own buffers (:class:`ArrowColumnBatch`) instead of
    converted Python lists.
    """

    supports_columns = True

    #: Rows converted per step of the row-path wrapper — bounds the
    #: transient ``to_pylist`` materialization to a slice of the batch
    #: instead of every column of the whole batch at once.
    _ROW_SLICE = 1024

    def __init__(self, schema: Schema, path: Union[str, Path]):
        super().__init__(schema)
        _, pq = _require_pyarrow()
        self._file = pq.ParquetFile(path)
        self._batch_size = DEFAULT_CHUNK_SIZE
        stored = set(self._file.schema_arrow.names)
        if stored != set(schema.names):
            self._file.close()
            raise ValueError(
                f"parquet columns {sorted(stored)!r} do not match "
                f"schema attributes {list(schema.names)!r}"
            )

    def chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE, *, validate: bool = False):
        self._batch_size = max(chunk_size, 1)  # align arrow batches with chunks
        return super().chunks(chunk_size, validate=validate)

    def _iter_rows(self) -> Iterator[list[Value]]:
        names = list(self.schema.names)
        converters = _converters(self.schema)
        row_no = 0
        for batch in self._file.iter_batches(
            batch_size=self._batch_size, columns=names
        ):
            # convert lazily off the retained Arrow batch, one bounded
            # slice at a time — never every column of the whole batch
            for start in range(0, batch.num_rows, self._ROW_SLICE):
                piece = batch.slice(start, self._ROW_SLICE)
                columns = [
                    piece.column(i).to_pylist() for i in range(piece.num_columns)
                ]
                for raw_row in zip(*columns):
                    row_no += 1
                    yield convert_row(f"row {row_no}", raw_row, converters, names)

    def _iter_column_batches(self, batch_size: int) -> Iterator[ColumnBatch]:
        self._batch_size = max(batch_size, 1)  # align arrow batches
        names = list(self.schema.names)
        row_offset = 0
        for batch in self._file.iter_batches(
            batch_size=self._batch_size, columns=names
        ):
            yield ArrowColumnBatch(self.schema, batch, row_offset)
            row_offset += batch.num_rows

    def close(self) -> None:
        self._file.close()


class ParquetTableSink(TableSink):
    """Writer appending one row group per chunk via ``ParquetWriter``."""

    def __init__(self, schema: Schema, path: Union[str, Path]):
        super().__init__(schema)
        self._pa, self._pq = _require_pyarrow()
        self._path = path
        self._arrow_schema = self._pa.schema(
            [
                (attribute.name, _arrow_type(attribute, self._pa))
                for attribute in schema.attributes
            ]
        )
        self._writer = None

    def _write_header(self) -> None:
        self._writer = self._pq.ParquetWriter(self._path, self._arrow_schema)

    def _write_rows(self, rows: list[list[Value]]) -> None:
        pa = self._pa
        arrays = []
        for position, attribute in enumerate(self.schema.attributes):
            column = [row[position] for row in rows]
            if (
                attribute.kind is AttributeKind.NUMERIC
                and not getattr(attribute.domain, "integer", False)
            ):
                column = [None if v is None else float(v) for v in column]
            arrays.append(pa.array(column, type=self._arrow_schema.field(position).type))
        self._writer.write_table(
            pa.Table.from_arrays(arrays, schema=self._arrow_schema)
        )

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def abort(self) -> None:
        # a parquet file without its footer is unreadable — discard the
        # partial output instead of leaving a corrupt artifact
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            Path(self._path).unlink(missing_ok=True)
