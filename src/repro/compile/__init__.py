"""Model → SQL compilation: push deviation detection into the database.

The audit pipeline normally extracts every row out of the warehouse and
streams it through Python. This package instead compiles the *fitted*
models into SQL — trees path-by-path into nested ``CASE`` routing, 1R
and PRISM rules into disjunctive bucket conditions, naive Bayes into
arithmetic log-posterior scoring — and emits one deviation-screening
query per audited attribute that runs entirely inside SQLite. Only the
rows the screen cannot certify clean come back to Python, where they
are re-audited through the unmodified in-memory code path, so the
resulting :class:`~repro.core.findings.AuditReport` matches the
in-memory engine finding for finding (the contract, its per-family SQL
shapes, and the one documented divergence are specified in
``docs/sql_compilation.md``).

Entry points
------------
* :func:`compilation_plan` — compile a fitted auditor; inspect
  ``plan.compilable`` / ``plan.notice()`` for the fallback decision.
* :func:`audit_sqlite` / :func:`audit_connection` — run the pushdown
  audit against a database file / an open connection.
* :func:`audit_table_sql` — the ``audit(engine="sql")`` path for
  in-memory tables (materialize to ``:memory:``, then push down).
* :class:`NotCompilable` — raised wherever a model, schema, or engine
  has no SQL form; every caller falls back to the in-memory batch path.

Dialects are descriptor-driven (:class:`SqlDialect`); only
:data:`~repro.compile.dialect.SQLITE` is executable today, but the
emitted SQL keeps identifier quoting, placeholders, and limits behind
the descriptor so DuckDB/Postgres can slot in later.
"""

from repro.compile.dialect import SQLITE, SqlDialect
from repro.compile.engine import (
    ALIAS_PREFIX,
    AttributeStatement,
    CompilationPlan,
    audit_connection,
    audit_sqlite,
    audit_table_sql,
    compilation_plan,
    sqlite_location,
)
from repro.compile.screen import FamilyScreen, NotCompilable

__all__ = [
    "SqlDialect",
    "SQLITE",
    "ALIAS_PREFIX",
    "AttributeStatement",
    "CompilationPlan",
    "FamilyScreen",
    "NotCompilable",
    "compilation_plan",
    "audit_connection",
    "audit_sqlite",
    "audit_table_sql",
    "sqlite_location",
]
