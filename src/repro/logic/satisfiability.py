"""Pragmatic satisfiability test and model finding for TDG-formulae.

Implements sec. 4.1.3 of the paper:

1. transform the formula into DNF;
2. the formula is satisfiable iff one disjunct (a conjunction of atoms) is;
3. decide a conjunction by initializing the *current domain range* of every
   attribute from the schema and successively restricting it with each
   atom's constraint. Relational atoms instantiate **links** between
   attributes; the transitive nature of ``<``, ``>``, ``=`` is honoured by
   union-find equality classes and bound propagation along the strict
   ordering edges (a strict cycle is unsatisfiable).

The test is *pragmatic* exactly as in the paper: a reported UNSAT is always
correct, but in rare cases (e.g. pigeonhole-style disequality patterns) a
formula may be believed satisfiable although it is not. Model *finding*
(:meth:`ConjunctionState.solve`) verifies candidate assignments against the
atoms, so a returned model is always a true model.

The same machinery powers the data generator's rule repair (sec. 4.1.4):
``find_model(β, base=record)`` produces an assignment satisfying a violated
consequence while changing as few attributes of the record as possible.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping, Optional, Sequence

from repro.logic.atoms import (
    Atom,
    Eq,
    EqAttr,
    Gt,
    GtAttr,
    IsNotNull,
    IsNull,
    Lt,
    LtAttr,
    Ne,
    NeAttr,
)
from repro.logic.base import Formula
from repro.logic.dnf import to_dnf
from repro.logic.ranges import NominalRange, OrderedRange, range_of_domain
from repro.schema.domain import NominalDomain
from repro.schema.schema import Schema
from repro.schema.types import Value

__all__ = [
    "Conflict",
    "ConjunctionState",
    "is_conjunction_satisfiable",
    "is_satisfiable",
    "find_model",
    "find_conjunction_model",
]


class Conflict(Exception):
    """Internal signal: the conjunction restricts some attribute to ∅."""


class ConjunctionState:
    """Range/link state for one conjunction of atomic TDG-formulae.

    Build with :meth:`integrate`, then call :meth:`check` (pure
    satisfiability) or :meth:`solve` (model construction).
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self._parent: dict[str, str] = {}
        self._ranges: dict[str, object] = {}  # root attr -> NominalRange | OrderedRange
        self._must_null: set[str] = set()
        self._not_null: set[str] = set()
        self._lt_edges: list[tuple[str, str]] = []  # (a, b) meaning a < b, strict
        self._diseq: list[tuple[str, str]] = []
        self._touched: set[str] = set()

    # -- union-find --------------------------------------------------------

    def _find(self, attr: str) -> str:
        parent = self._parent
        if attr not in parent:
            parent[attr] = attr
            self._ranges[attr] = range_of_domain(self.schema.attribute(attr).domain)
            self._touched.add(attr)
            return attr
        root = attr
        while parent[root] != root:
            root = parent[root]
        while parent[attr] != root:
            parent[attr], attr = root, parent[attr]
        return root

    def _union(self, a: str, b: str) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        range_a, range_b = self._ranges[ra], self._ranges[rb]
        if isinstance(range_a, NominalRange) != isinstance(range_b, NominalRange):
            raise Conflict(f"equality link between incompatible kinds: {a} = {b}")
        range_a.intersect(range_b)  # type: ignore[arg-type]
        self._parent[rb] = ra
        del self._ranges[rb]
        if range_a.is_empty:
            raise Conflict(f"empty range for equality class of {a!r}")

    def _range(self, attr: str):
        return self._ranges[self._find(attr)]

    def members(self, attr: str) -> list[str]:
        """All attributes in *attr*'s equality class (incl. itself)."""
        root = self._find(attr)
        return [a for a in self._touched if self._find(a) == root]

    # -- constraint integration ----------------------------------------------

    def _numeric(self, attr: str, value: Value) -> float:
        return self.schema.attribute(attr).domain.to_number(value)

    def _require_value(self, attr: str) -> None:
        """Mark that *attr* must carry a (non-null) value."""
        self._find(attr)
        self._not_null.add(attr)

    def integrate(self, atom: Atom) -> None:
        """Restrict the state by one atomic constraint (raises Conflict)."""
        atom.validate(self.schema)
        if isinstance(atom, IsNull):
            attribute = self.schema.attribute(atom.attribute)
            if not attribute.nullable:
                raise Conflict(f"{atom}: attribute is not nullable")
            self._find(atom.attribute)
            self._must_null.add(atom.attribute)
        elif isinstance(atom, IsNotNull):
            self._require_value(atom.attribute)
        elif isinstance(atom, Eq):
            self._require_value(atom.attribute)
            current = self._range(atom.attribute)
            if isinstance(current, NominalRange):
                current.restrict_eq(atom.value)  # type: ignore[arg-type]
            else:
                current.restrict_eq(self._numeric(atom.attribute, atom.value))
            if current.is_empty:
                raise Conflict(f"{atom}: empty range")
        elif isinstance(atom, Ne):
            self._require_value(atom.attribute)
            current = self._range(atom.attribute)
            if isinstance(current, NominalRange):
                current.restrict_ne(atom.value)  # type: ignore[arg-type]
            else:
                current.restrict_ne(self._numeric(atom.attribute, atom.value))
            if current.is_empty:
                raise Conflict(f"{atom}: empty range")
        elif isinstance(atom, Lt):
            self._require_value(atom.attribute)
            current = self._range(atom.attribute)
            current.restrict_upper(self._numeric(atom.attribute, atom.value), strict=True)
            if current.is_empty:
                raise Conflict(f"{atom}: empty range")
        elif isinstance(atom, Gt):
            self._require_value(atom.attribute)
            current = self._range(atom.attribute)
            current.restrict_lower(self._numeric(atom.attribute, atom.value), strict=True)
            if current.is_empty:
                raise Conflict(f"{atom}: empty range")
        elif isinstance(atom, EqAttr):
            self._require_value(atom.left)
            self._require_value(atom.right)
            self._union(atom.left, atom.right)
        elif isinstance(atom, NeAttr):
            self._require_value(atom.left)
            self._require_value(atom.right)
            self._diseq.append((atom.left, atom.right))
        elif isinstance(atom, LtAttr):
            self._require_value(atom.left)
            self._require_value(atom.right)
            self._lt_edges.append((atom.left, atom.right))
        elif isinstance(atom, GtAttr):
            self._require_value(atom.left)
            self._require_value(atom.right)
            self._lt_edges.append((atom.right, atom.left))
        else:  # pragma: no cover - grammar is closed
            raise TypeError(f"unknown atom type: {type(atom).__name__}")

    def integrate_all(self, atoms: Iterable[Atom]) -> None:
        for atom in atoms:
            self.integrate(atom)

    # -- propagation ------------------------------------------------------------

    def _class_edges(self) -> list[tuple[str, str]]:
        edges = []
        for a, b in self._lt_edges:
            ra, rb = self._find(a), self._find(b)
            if ra == rb:
                raise Conflict(f"strict ordering inside an equality class: {a} < {b}")
            edges.append((ra, rb))
        return edges

    def _topological_order(self, edges: Sequence[tuple[str, str]]) -> list[str]:
        nodes = set(self._ranges)
        indegree = {node: 0 for node in nodes}
        successors: dict[str, list[str]] = {node: [] for node in nodes}
        for u, v in edges:
            successors[u].append(v)
            indegree[v] += 1
        queue = sorted(node for node, deg in indegree.items() if deg == 0)
        order: list[str] = []
        while queue:
            node = queue.pop()
            order.append(node)
            for succ in successors[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
        if len(order) != len(nodes):
            raise Conflict("cycle of strict ordering links")
        return order

    def propagate(self) -> list[str]:
        """Propagate null flags, ordering bounds, and disequalities.

        Returns the topological order of equality classes (used by
        :meth:`solve`). Raises :class:`Conflict` on unsatisfiability.
        """
        conflicting_null = self._must_null & self._not_null
        if conflicting_null:
            raise Conflict(
                f"attributes both null and value-constrained: {sorted(conflicting_null)}"
            )
        edges = self._class_edges()
        order = self._topological_order(edges)
        successors: dict[str, list[str]] = {}
        predecessors: dict[str, list[str]] = {}
        for u, v in edges:
            successors.setdefault(u, []).append(v)
            predecessors.setdefault(v, []).append(u)
        # forward pass: push lower bounds along u < v
        for node in order:
            rng_u = self._ranges[node]
            for succ in successors.get(node, ()):
                rng_v = self._ranges[succ]
                rng_v.restrict_lower(rng_u.low, strict=True)  # type: ignore[union-attr]
        # backward pass: pull upper bounds against u < v
        for node in reversed(order):
            rng_v = self._ranges[node]
            for pred in predecessors.get(node, ()):
                rng_u = self._ranges[pred]
                rng_u.restrict_upper(rng_v.high, strict=True)  # type: ignore[union-attr]
        for root, current in self._ranges.items():
            if all(member in self._must_null for member in self.members(root)):
                continue  # value range irrelevant: every member is forced null
            if current.is_empty:
                raise Conflict(f"empty range for equality class of {root!r}")
        # disequalities between pinned classes
        for a, b in self._diseq:
            ra, rb = self._find(a), self._find(b)
            if ra == rb:
                raise Conflict(f"disequality inside an equality class: {a} ≠ {b}")
            single_a = self._ranges[ra].singleton()
            single_b = self._ranges[rb].singleton()
            if single_a is not None and single_a == single_b:
                raise Conflict(f"{a} ≠ {b} but both are pinned to {single_a!r}")
        return order

    def check(self) -> bool:
        """Pure satisfiability verdict for the integrated conjunction."""
        try:
            self.propagate()
        except Conflict:
            return False
        return True

    # -- model construction --------------------------------------------------

    def solve(
        self,
        rng: random.Random,
        base: Optional[Mapping[str, Value]] = None,
        *,
        max_attempts: int = 8,
    ) -> Optional[dict[str, Value]]:
        """Construct an assignment for all touched attributes.

        With *base* given, attribute values from the base record are kept
        whenever they are consistent with the propagated ranges (minimal
        change, used by rule repair). Returns ``None`` when no model is
        found within *max_attempts* randomized tries.
        """
        try:
            order = self.propagate()
        except Conflict:
            return None
        edges = self._class_edges()
        predecessors: dict[str, list[str]] = {}
        for u, v in edges:
            predecessors.setdefault(v, []).append(u)
        diseq_by_root: dict[str, list[str]] = {}
        for a, b in self._diseq:
            ra, rb = self._find(a), self._find(b)
            diseq_by_root.setdefault(ra, []).append(rb)
            diseq_by_root.setdefault(rb, []).append(ra)

        for _ in range(max_attempts):
            assignment = self._attempt(rng, base, order, predecessors, diseq_by_root)
            if assignment is not None:
                return assignment
        return None

    def _attempt(
        self,
        rng: random.Random,
        base: Optional[Mapping[str, Value]],
        order: Sequence[str],
        predecessors: Mapping[str, Sequence[str]],
        diseq_by_root: Mapping[str, Sequence[str]],
    ) -> Optional[dict[str, Value]]:
        class_value: dict[str, object] = {}  # root -> numeric view or nominal str
        assignment: dict[str, Value] = {}
        for attr in self._must_null:
            assignment[attr] = None
        for root in order:
            members = [m for m in self.members(root) if m not in self._must_null]
            if not members:
                continue
            current = self._ranges[root]
            if isinstance(current, NominalRange):
                forbidden = {
                    class_value[other]
                    for other in diseq_by_root.get(root, ())
                    if other in class_value
                }
                value = self._pick_nominal(rng, current, members, base, forbidden)
                if value is None:
                    return None
                class_value[root] = value
                for member in members:
                    assignment[member] = value
            else:
                feasible = current.copy()
                for pred in predecessors.get(root, ()):
                    if pred in class_value:
                        feasible.restrict_lower(float(class_value[pred]), strict=True)
                forbidden = {
                    float(class_value[other])
                    for other in diseq_by_root.get(root, ())
                    if other in class_value
                }
                number = self._pick_number(rng, feasible, members, base, forbidden)
                if number is None:
                    return None
                class_value[root] = number
                for member in members:
                    domain = self.schema.attribute(member).domain
                    assignment[member] = domain.from_number(number)
        if self._verify(assignment):
            return assignment
        return None

    def _pick_nominal(
        self,
        rng: random.Random,
        current: NominalRange,
        members: Sequence[str],
        base: Optional[Mapping[str, Value]],
        forbidden: set,
    ) -> Optional[str]:
        if base is not None:
            for member in members:
                candidate = base.get(member)
                if (
                    isinstance(candidate, str)
                    and current.contains(candidate)
                    and candidate not in forbidden
                ):
                    return candidate
        return current.sample(rng, forbidden)

    def _pick_number(
        self,
        rng: random.Random,
        feasible: OrderedRange,
        members: Sequence[str],
        base: Optional[Mapping[str, Value]],
        forbidden: set,
    ) -> Optional[float]:
        if base is not None:
            for member in members:
                candidate = base.get(member)
                if candidate is None:
                    continue
                try:
                    number = self.schema.attribute(member).domain.to_number(candidate)
                except (TypeError, AttributeError):
                    continue
                if feasible.contains(number) and number not in forbidden:
                    return number
        return feasible.sample(rng, forbidden)

    def _verify(self, assignment: Mapping[str, Value]) -> bool:
        """Check the candidate assignment against every integrated atom."""
        record = dict(assignment)
        for attr in self._touched:
            record.setdefault(attr, None)
        return all(atom.evaluate(record) for atom in self._atoms_for_verification())

    def _atoms_for_verification(self) -> list[Atom]:
        atoms: list[Atom] = []
        for attr in self._must_null:
            atoms.append(IsNull(attr))
        for attr in self._not_null:
            atoms.append(IsNotNull(attr))
        for a, b in self._lt_edges:
            atoms.append(LtAttr(a, b))
        for a, b in self._diseq:
            atoms.append(NeAttr(a, b))
        for attr in self._touched:
            if attr in self._must_null:
                continue
            root = self._find(attr)
            # range membership is checked indirectly: values were sampled
            # from the propagated ranges, and equality classes share one value
            for other in self.members(root):
                if other != attr and other not in self._must_null:
                    atoms.append(EqAttr(attr, other))
        return atoms


def _build_state(atoms: Iterable[Atom], schema: Schema) -> Optional[ConjunctionState]:
    state = ConjunctionState(schema)
    try:
        state.integrate_all(atoms)
    except Conflict:
        return None
    return state


def is_conjunction_satisfiable(atoms: Sequence[Atom], schema: Schema) -> bool:
    """Pragmatic satisfiability of a conjunction of atoms."""
    state = _build_state(atoms, schema)
    return state is not None and state.check()


def is_satisfiable(formula: Formula, schema: Schema) -> bool:
    """Pragmatic satisfiability of an arbitrary TDG-formula (via DNF)."""
    return any(
        is_conjunction_satisfiable(conjunct, schema) for conjunct in to_dnf(formula)
    )


def find_conjunction_model(
    atoms: Sequence[Atom],
    schema: Schema,
    rng: random.Random,
    base: Optional[Mapping[str, Value]] = None,
) -> Optional[dict[str, Value]]:
    """Find an assignment satisfying a conjunction of atoms (or ``None``)."""
    state = _build_state(atoms, schema)
    if state is None:
        return None
    return state.solve(rng, base)


def _changes_needed(conjunct: Sequence[Atom], base: Mapping[str, Value]) -> int:
    """How many atoms of *conjunct* the base record currently falsifies."""
    return sum(0 if atom.evaluate(base) else 1 for atom in conjunct)


def _nulls_introduced(conjunct: Sequence[Atom], base: Mapping[str, Value]) -> int:
    """How many ``isnull`` atoms of *conjunct* would null a non-null base
    cell. Used as a tie-breaker so rule repair does not gratuitously erase
    values (satisfying ``A ≠ v`` is as cheap as nulling ``A`` — but keeps
    the record informative)."""
    return sum(
        1
        for atom in conjunct
        if isinstance(atom, IsNull) and base.get(atom.attribute) is not None
    )


def find_model(
    formula: Formula,
    schema: Schema,
    rng: random.Random,
    base: Optional[Mapping[str, Value]] = None,
) -> Optional[dict[str, Value]]:
    """Find an assignment satisfying *formula*.

    With *base*, DNF disjuncts are tried in order of how few of their atoms
    the base record falsifies, so the returned model tends to change as few
    attributes as possible — the behaviour the rule-repairing data
    generator needs.
    """
    disjuncts = to_dnf(formula)
    rng.shuffle(disjuncts)
    if base is not None:
        disjuncts.sort(
            key=lambda conj: (
                _changes_needed(conj, base),
                _nulls_introduced(conj, base),
            )
        )
    for conjunct in disjuncts:
        model = find_conjunction_model(conjunct, schema, rng, base)
        if model is not None:
            return model
    return None
