"""Compilation planning and in-database execution of audits.

The pushdown engine runs the whole deviation screen inside SQLite and
re-checks only the returned *candidate* rows in Python, through the
exact code path of the in-memory audit
(:meth:`DataAuditor.audit_attribute
<repro.core.auditor.DataAuditor.audit_attribute>`): raw cells are
converted by the same schema-driven converters the SQLite source uses,
encoded by the fitted encoders, predicted with ``predict_batch``, and
scored with :func:`~repro.mining.confidence.error_confidence_batch`.
Every primitive in that chain is per-row independent, so evaluating the
candidate *subset* yields bitwise the values the full in-memory audit
computes for those rows — all confidences are recomputed Python-side,
never trusted from SQL floats.

One statement is emitted per audited attribute::

    SELECT rn, <columns> FROM (
      ... layered aliases over SELECT ROW_NUMBER() - 1, obs, dirty ...
    ) WHERE (dirty OR suspect) ORDER BY rn

where *dirty* catches any cell whose storage the SQLite reader would
not convert losslessly (those rows must reach the Python converter,
which raises or handles them exactly as an in-memory read would) and
*suspect* is the model family's compiled screen. Rows certified clean
by the screen provably score below the audit threshold, so dropping
them inside the database loses no finding.

The emitted report matches the in-memory
:class:`~repro.core.findings.AuditReport` finding for finding —
same ranked findings, same suspicious-row ranking. The only documented
divergence: per-record confidences of rows *no* classifier flags may be
reported lower than in memory (a screened-out row keeps confidence
0.0), which cannot reorder the suspicious ranking because any
confidence able to overtake a flagged one would itself be at or above
the threshold and therefore flagged.

Anything without a SQL form — a kNN classifier, an over-deep tree, a
statement exceeding the parameter cap, a ``WITHOUT ROWID`` table — ends
in :class:`~repro.compile.screen.NotCompilable`, and callers fall back
to the in-memory batch path (see ``docs/sql_compilation.md``).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.compile.bayes import compile_naive_bayes
from repro.compile.dialect import SQLITE, SqlDialect
from repro.compile.expressions import SqlBuilder, clean_expr, observed_class_expr
from repro.compile.rules import compile_one_r, compile_prism
from repro.compile.screen import NotCompilable
from repro.compile.tree import compile_tree
from repro.core.findings import AuditReport, Finding
from repro.io.cells import convert_row
from repro.io.sqlite_backend import (
    SqliteTableSink,
    _column_names,
    _from_sql,
    _user_tables,
    parse_sqlite_url,
)
from repro.mining.confidence import error_confidence_batch
from repro.mining.naive_bayes import NaiveBayesClassifier
from repro.mining.rule_induction import OneRClassifier, PrismClassifier
from repro.mining.tree_classifier import TreeClassifier
from repro.schema.table import Table

__all__ = [
    "AttributeStatement",
    "CompilationPlan",
    "compilation_plan",
    "audit_connection",
    "audit_sqlite",
    "audit_table_sql",
    "sqlite_location",
]

#: Reserved prefix of every SELECT-list alias the engine introduces;
#: schemas whose attribute names collide with it are not compilable.
ALIAS_PREFIX = "__audit_"

#: Placeholder the quoted table name is spliced into at execution time
#: (statements are planned before a concrete table is known; the
#: control characters cannot appear in a planned statement).
_TABLE_TOKEN = "\x1ftable\x1f"

#: Model family → compiler. Exact types only: a subclass may override
#: ``predict_batch``, invalidating the compiled screen's parity.
_COMPILERS = {
    TreeClassifier: compile_tree,
    OneRClassifier: compile_one_r,
    PrismClassifier: compile_prism,
    NaiveBayesClassifier: compile_naive_bayes,
}


@dataclass(frozen=True)
class AttributeStatement:
    """One audited attribute's compiled candidate query."""

    attribute: str
    template: str  # contains _TABLE_TOKEN where the table name goes
    params: tuple

    def sql(self, quoted_table: str) -> str:
        """The executable statement against *quoted_table*."""
        return self.template.replace(_TABLE_TOKEN, quoted_table)


@dataclass(frozen=True)
class CompilationPlan:
    """The outcome of compiling a fitted auditor against a dialect.

    ``compilable`` is all-or-nothing: if any audited attribute lacks a
    SQL form, the whole audit falls back to the in-memory path — a
    hybrid split would make the two engines' reports incomparable.
    """

    dialect: SqlDialect
    statements: tuple[AttributeStatement, ...] = ()
    reasons: dict[str, str] = field(default_factory=dict)

    @property
    def compilable(self) -> bool:
        """Whether every audited attribute compiled."""
        return not self.reasons

    def notice(self) -> Optional[str]:
        """A one-line operator notice when the plan is not compilable
        (``None`` when it is)."""
        if self.compilable:
            return None
        attribute, reason = next(iter(self.reasons.items()))
        shown = reason if attribute == "*" else f"{attribute}: {reason}"
        more = len(self.reasons) - 1
        if more > 0:
            shown += f" (+{more} more)"
        return f"SQL pushdown unavailable ({shown}); auditing in memory"


def compilation_plan(auditor, dialect: SqlDialect = SQLITE) -> CompilationPlan:
    """Compile *auditor*'s fitted classifiers into per-attribute
    candidate statements.

    Returns a :class:`CompilationPlan`; inspect ``plan.compilable`` /
    ``plan.notice()`` before executing. Statements are emitted in the
    auditor's classifier order, so the executed audit folds findings in
    the same order as the in-memory loop.
    """
    if not auditor.classifiers:
        raise RuntimeError("auditor is not fitted")
    colliding = [
        name for name in auditor.schema.names if name.startswith(ALIAS_PREFIX)
    ]
    if colliding:
        return CompilationPlan(
            dialect,
            reasons={
                "*": f"attribute names {colliding!r} collide with the "
                f"engine's {ALIAS_PREFIX!r} alias prefix"
            },
        )
    statements: list[AttributeStatement] = []
    reasons: dict[str, str] = {}
    for class_attr, classifier in auditor.classifiers.items():
        compiler = _COMPILERS.get(type(classifier))
        if compiler is None:
            reasons[class_attr] = (
                f"{type(classifier).__name__} does not compile to SQL"
            )
            continue
        try:
            statements.append(
                _compile_attribute(auditor, class_attr, classifier, compiler, dialect)
            )
        except NotCompilable as exc:
            reasons[class_attr] = str(exc)
    if reasons:
        return CompilationPlan(dialect, reasons=reasons)
    return CompilationPlan(dialect, statements=tuple(statements))


def _compile_attribute(
    auditor, class_attr: str, classifier, compiler, dialect: SqlDialect
) -> AttributeStatement:
    dataset = classifier.dataset
    if dataset is None:
        raise NotCompilable("classifier is not fitted")
    builder = SqlBuilder(dialect)
    quote = dialect.quote
    schema = auditor.schema
    obs_ref = quote("__audit_obs")
    # the dirty guard spans EVERY schema attribute, not just this
    # classifier's inputs: an in-memory audit converts the whole table,
    # so a row with any unconvertible cell must reach the Python
    # converter to fail (or convert) identically
    dirty_sql = "NOT (" + " AND ".join(
        clean_expr(builder, attribute) for attribute in schema.attributes
    ) + ")"
    obs_sql = observed_class_expr(
        builder, schema.attribute(class_attr), dataset.class_encoder
    )
    screen = compiler(builder, classifier, auditor.config, obs_ref)
    cols = ", ".join(quote(name) for name in schema.names)
    level0 = [
        ("__audit_rn", "ROW_NUMBER() OVER (ORDER BY rowid) - 1"),
        ("__audit_obs", obs_sql),
        ("__audit_dirty", dirty_sql),
    ]
    defs0 = ", ".join(f"{sql} AS {quote(name)}" for name, sql in level0)
    statement = f"SELECT {defs0}, {cols} FROM {_TABLE_TOKEN}"
    for layer in screen.levels:
        defs = ", ".join(f"{sql} AS {quote(name)}" for name, sql in layer)
        statement = f"SELECT *, {defs} FROM ({statement})"
    candidate = f"({quote('__audit_dirty')} OR {screen.suspect_sql})"
    rn = quote("__audit_rn")
    statement = (
        f"SELECT {rn}, {cols} FROM ({statement})"
        f" WHERE {candidate} ORDER BY {rn}"
    )
    if len(builder.params) > dialect.max_parameters:
        raise NotCompilable(
            f"statement needs {len(builder.params)} bound parameters, over "
            f"the {dialect.name} cap of {dialect.max_parameters}"
        )
    return AttributeStatement(class_attr, statement, tuple(builder.params))


def audit_connection(
    auditor,
    connection: sqlite3.Connection,
    *,
    table: Optional[str] = None,
    plan: Optional[CompilationPlan] = None,
) -> AuditReport:
    """Audit one table of an open SQLite *connection* in-database.

    Without *table* the database must hold exactly one user table (the
    same unambiguity rule as :class:`~repro.io.SqliteTableSource`).
    Raises :class:`~repro.compile.screen.NotCompilable` when the plan
    (or the engine at runtime — e.g. a ``WITHOUT ROWID`` table, a
    parameter-limit rebuild) cannot run the pushdown; callers fall back
    to the in-memory path.
    """
    if plan is None:
        plan = compilation_plan(auditor)
    if not plan.compilable:
        raise NotCompilable(plan.notice() or "plan is not compilable")
    if plan.dialect.name != "sqlite":
        raise NotCompilable(
            f"dialect {plan.dialect.name!r} has no execution engine yet"
        )
    if table is None:
        tables = _user_tables(connection)
        if len(tables) != 1:
            raise ValueError(
                f"database holds {len(tables)} tables ({tables!r}); "
                f"select one with table="
            )
        table = tables[0]
    columns = _column_names(connection, table)
    if not columns:
        raise ValueError(f"database has no table named {table!r}")
    if set(columns) != set(auditor.schema.names):
        raise ValueError(
            f"columns of table {table!r} {columns!r} do not match "
            f"schema attributes {list(auditor.schema.names)!r}"
        )
    getlimit = getattr(connection, "getlimit", None)
    if getlimit is not None:
        cap = getlimit(sqlite3.SQLITE_LIMIT_VARIABLE_NUMBER)
        worst = max((len(s.params) for s in plan.statements), default=0)
        if worst > cap:
            raise NotCompilable(
                f"statement needs {worst} bound parameters, over this "
                f"connection's limit of {cap}"
            )
    quoted = plan.dialect.quote(table)
    names = list(auditor.schema.names)
    converters = [
        lambda raw, kind=a.kind, integer=getattr(a.domain, "integer", False): (
            _from_sql(raw, kind, integer)
        )
        for a in auditor.schema.attributes
    ]
    try:
        n_rows = connection.execute(f"SELECT COUNT(*) FROM {quoted}").fetchone()[0]
        record_confidence = np.zeros(n_rows, dtype=float)
        findings: list[Finding] = []
        for statement in plan.statements:
            rows = connection.execute(
                statement.sql(quoted), statement.params
            ).fetchall()
            confidences, attr_findings, candidate_rows = _recheck_candidates(
                auditor, statement.attribute, rows, converters, names
            )
            if candidate_rows.size:
                record_confidence[candidate_rows] = np.maximum(
                    record_confidence[candidate_rows], confidences
                )
            findings.extend(attr_findings)
    except sqlite3.OperationalError as exc:
        # e.g. ROW_NUMBER over a WITHOUT ROWID table — fall back cleanly
        raise NotCompilable(f"SQL pushdown failed at runtime: {exc}") from exc
    return AuditReport(
        n_rows,
        findings,
        record_confidence.tolist(),
        auditor.config.min_error_confidence,
        schema=auditor.schema,
    )


def _recheck_candidates(
    auditor, class_attr: str, rows, converters, names
) -> tuple[np.ndarray, list[Finding], np.ndarray]:
    """Re-audit the candidate rows through the in-memory code path.

    Mirrors :meth:`DataAuditor.audit_attribute
    <repro.core.auditor.DataAuditor.audit_attribute>` on the candidate
    subset; row labels match the full sequential read, so a bad cell
    raises the identical error an extract would.
    """
    classifier = auditor.classifiers[class_attr]
    dataset = classifier.dataset
    assert dataset is not None
    config = auditor.config
    candidate_rows = np.asarray([row[0] for row in rows], dtype=np.int64)
    if candidate_rows.size == 0:
        return np.zeros(0, dtype=float), [], candidate_rows
    converted = [
        convert_row(f"row {row[0] + 1}", row[1:], converters, names)
        for row in rows
    ]
    index_of = {name: position for position, name in enumerate(names)}
    columns = {
        name: dataset.encoders[name].encode_column(
            [cells[index_of[name]] for cells in converted]
        )
        for name in dataset.base_attrs
    }
    class_values = [cells[index_of[class_attr]] for cells in converted]
    observed_codes = dataset.class_encoder.encode_column(class_values)
    batch = classifier.predict_batch(columns, n_rows=len(converted))
    confidences = error_confidence_batch(
        batch.probabilities, batch.support, observed_codes, config.bounds
    )
    findings: list[Finding] = []
    flagged = np.flatnonzero(confidences >= config.min_error_confidence)
    if flagged.size:
        labels = dataset.class_encoder.labels
        predicted_codes = np.argmax(batch.probabilities[flagged], axis=1)
        proposals = {
            code: dataset.class_encoder.proposal_for(labels[code])
            for code in set(predicted_codes.tolist())
        }
        for candidate, predicted in zip(flagged.tolist(), predicted_codes.tolist()):
            findings.append(
                Finding(
                    row=int(candidate_rows[candidate]),
                    attribute=class_attr,
                    observed_label=labels[int(observed_codes[candidate])],
                    observed_value=class_values[candidate],
                    predicted_label=labels[predicted],
                    confidence=float(confidences[candidate]),
                    support=float(batch.support[candidate]),
                    proposal=proposals[predicted],
                )
            )
    return confidences, findings, candidate_rows


def audit_sqlite(
    auditor,
    database: Union[str, Path],
    *,
    table: Optional[str] = None,
    plan: Optional[CompilationPlan] = None,
) -> AuditReport:
    """Audit one table of a SQLite *database* file in-database.

    The file-path face of :func:`audit_connection` — what
    ``repro audit --engine sql --input sqlite:///wh.db?table=loads``
    runs. Raises :class:`~repro.compile.screen.NotCompilable` when the
    pushdown cannot run (callers fall back to the in-memory path) and
    :class:`FileNotFoundError` for a missing database, like the SQLite
    source.
    """
    path = Path(database)
    if not path.exists():
        raise FileNotFoundError(f"no such SQLite database: {database}")
    connection = sqlite3.connect(path)
    try:
        return audit_connection(auditor, connection, table=table, plan=plan)
    finally:
        connection.close()


def audit_table_sql(auditor, table: Table) -> AuditReport:
    """Audit an in-memory :class:`~repro.schema.table.Table` through the
    SQL engine.

    What ``DataAuditor.audit(table, engine="sql")`` runs: the table is
    materialized into a private ``:memory:`` SQLite database through the
    standard sink (insertion order = ``rowid`` order, so row indices
    match the in-memory audit) and pushed down. Raises
    :class:`~repro.compile.screen.NotCompilable` when the model has no
    SQL form.
    """
    if table.schema != auditor.schema:
        raise ValueError("table schema does not match the auditor's schema")
    plan = compilation_plan(auditor)
    if not plan.compilable:
        raise NotCompilable(plan.notice() or "plan is not compilable")
    connection = sqlite3.connect(":memory:", isolation_level=None)
    try:
        with SqliteTableSink(
            auditor.schema, None, table="data", connection=connection
        ) as sink:
            sink.write(table)
        return audit_connection(auditor, connection, table="data", plan=plan)
    finally:
        connection.close()


def sqlite_location(source) -> Optional[tuple[str, Optional[str]]]:
    """``(database, table)`` when *source* names a SQLite database — a
    ``sqlite:///…?table=…`` URI or a ``.db``/``.sqlite``/``.sqlite3``
    path — else ``None``. The engine-selection probe used by
    :meth:`AuditSession.audit_source
    <repro.core.session.AuditSession.audit_source>` and the CLI."""
    if not isinstance(source, (str, Path)):
        return None
    text = str(source)
    if text.startswith("sqlite:"):
        database, options = parse_sqlite_url(text)
        return database, options.get("table")
    from repro.io.registry import detect_format

    try:
        detected = detect_format(text)
    except ValueError:
        return None
    if detected != "sqlite":
        return None
    return text, None
