"""The classifier interface of the multiple classification / regression
approach.

Sec. 5: *"For each attribute in the relation to be audited, a classifier
is induced that describes the dependency of this class attribute from the
other attributes."* And sec. 5.2: *"the error confidence measure can be
used with each classifier that both outputs a predicted class distribution
and the number of training instances this prediction is based on."*

:class:`Prediction` is exactly that pair (distribution, support);
:class:`AttributeClassifier` is the pluggable strategy the auditor
composes — the tree-based production classifier and the alternatives the
paper evaluated (instance-based, naive Bayes, rule inducers) all implement
it.

The protocol is **batch-first**: the auditor's hot path hands each
classifier whole encoded column arrays at once and receives a
:class:`BatchPrediction` back. The batch contract, precisely:

* **distribution matrix** — ``probabilities`` has shape
  ``(n_rows, n_labels)`` where ``n_labels`` is the fitted dataset's
  class-vocabulary size (:attr:`ClassEncoder.n_labels
  <repro.mining.dataset.ClassEncoder.n_labels>`, which always includes
  the null and unknown labels). Row ``r`` is the predicted class
  distribution of record ``r``; each row sums to 1 (a proper
  distribution), and label order is exactly
  :attr:`ClassEncoder.labels <repro.mining.dataset.ClassEncoder>`.
* **support semantics** — ``support[r]`` is the (possibly *weighted*)
  number of training instances behind record ``r``'s prediction: a leaf
  count for trees (fractional when C4.5's missing-value handling
  distributed records over branches), the training-set size for naive
  Bayes, ``k`` for kNN. It feeds Def. 7's error confidence, which
  shrinks toward zero as support does — a prediction backed by few
  instances can never yield a confident deviation.
* **fallback behavior** — classifiers that only implement the
  per-record :meth:`AttributeClassifier.predict_encoded` inherit
  :meth:`AttributeClassifier.predict_batch` as a row loop over a
  reusable :class:`ArrayRowView`; the built-in classifiers override it
  with vectorized paths that must produce bit-identical distributions
  and supports. Batch and row paths are therefore interchangeable in
  semantics, never in speed.

For the multi-core audit executor (:mod:`repro.core.parallel`),
:meth:`AttributeClassifier.prediction_payload` names the object shipped
to worker processes — by default the classifier itself (training state
included, always sufficient), overridden by classifiers that can
dispatch a leaner clone.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

import numpy as np

from repro.mining.dataset import Dataset
from repro.schema.types import Value

__all__ = [
    "Prediction",
    "BatchPrediction",
    "ArrayRowView",
    "AttributeClassifier",
    "batch_length",
]


@dataclass
class Prediction:
    """A predicted class distribution plus its training support.

    ``probabilities[c]`` is the predicted probability of class-label code
    ``c`` (codes index :attr:`labels`); ``n`` is the (possibly weighted)
    number of training instances the prediction is based on.
    """

    probabilities: np.ndarray
    n: float
    labels: tuple[str, ...]

    @property
    def predicted_code(self) -> int:
        """Code of the most probable class (``ĉ``)."""
        return int(np.argmax(self.probabilities))

    @property
    def predicted_label(self) -> str:
        return self.labels[self.predicted_code]

    def probability_of(self, code: int) -> float:
        return float(self.probabilities[code])

    def __repr__(self) -> str:
        return (
            f"Prediction({self.predicted_label!r}, "
            f"p={self.probability_of(self.predicted_code):.3f}, n={self.n:g})"
        )


@dataclass
class BatchPrediction:
    """Predicted class distributions for a whole batch of records.

    ``probabilities[r, c]`` is the predicted probability of class-label
    code ``c`` for record ``r``; ``support[r]`` is the (possibly weighted)
    number of training instances record *r*'s prediction is based on.
    """

    probabilities: np.ndarray
    support: np.ndarray
    labels: tuple[str, ...]

    @property
    def n_rows(self) -> int:
        return int(self.probabilities.shape[0])

    @property
    def predicted_codes(self) -> np.ndarray:
        """Per-record code of the most probable class (``ĉ``)."""
        return np.argmax(self.probabilities, axis=1)

    def prediction_at(self, row: int) -> Prediction:
        """The single-record :class:`Prediction` view of one batch row."""
        return Prediction(self.probabilities[row], float(self.support[row]), self.labels)

    def __repr__(self) -> str:
        return f"BatchPrediction(rows={self.n_rows}, labels={len(self.labels)})"


class ArrayRowView(Mapping):
    """A zero-copy record view over pre-encoded column arrays.

    Prediction only touches the attributes along a tree path, so building
    a dict per row per classifier would dominate a row-at-a-time audit;
    the batch fallback loop reuses one view and just moves :attr:`index`.
    """

    __slots__ = ("columns", "index")

    def __init__(self, columns: Mapping[str, np.ndarray], index: int = 0):
        self.columns = columns
        self.index = index

    def __getitem__(self, name: str):
        return self.columns[name][self.index]

    def __iter__(self) -> Iterator[str]:
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)


def batch_length(columns: Mapping[str, np.ndarray], n_rows: Optional[int]) -> int:
    """Resolve the row count of an encoded-column batch."""
    if n_rows is not None:
        return int(n_rows)
    for column in columns.values():
        return len(column)
    raise ValueError("cannot infer batch length: no columns given and n_rows is None")


class AttributeClassifier(ABC):
    """A dependency model of one class attribute given base attributes."""

    def __init__(self) -> None:
        self.dataset: Optional[Dataset] = None

    @abstractmethod
    def fit(self, dataset: Dataset) -> None:
        """Induce the dependency model from an encoded dataset."""

    @abstractmethod
    def predict_encoded(self, encoded: Mapping[str, float]) -> Prediction:
        """Predict from an already-encoded record (see
        :meth:`Dataset.encode_record`)."""

    def predict(self, record: Mapping[str, Value]) -> Prediction:
        """Predict the class distribution for a raw record."""
        if self.dataset is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted")
        return self.predict_encoded(self.dataset.encode_record(record))

    def predict_batch(
        self,
        columns: Mapping[str, np.ndarray],
        *,
        n_rows: Optional[int] = None,
    ) -> BatchPrediction:
        """Predict class distributions for a whole batch of encoded records.

        *columns* maps base-attribute names to encoded column arrays (see
        :meth:`~repro.mining.dataset.BaseEncoder.encode_column`); all
        arrays share one length, which *n_rows* may state explicitly when
        the classifier uses no base attributes.

        This base implementation is the compatibility fallback: it loops
        :meth:`predict_encoded` over a reusable :class:`ArrayRowView`.
        The built-in classifiers override it with vectorized paths that
        produce the same distributions and supports.
        """
        dataset = self._require_fitted()
        length = batch_length(columns, n_rows)
        n_labels = dataset.class_encoder.n_labels
        probabilities = np.empty((length, n_labels), dtype=float)
        support = np.empty(length, dtype=float)
        view = ArrayRowView(columns)
        for row in range(length):
            view.index = row
            prediction = self.predict_encoded(view)
            probabilities[row] = prediction.probabilities
            support[row] = prediction.n
        return BatchPrediction(probabilities, support, dataset.class_encoder.labels)

    def fit_state(self) -> dict:
        """The complete fitted state as plain JSON types.

        This is the canonical *serialized form* of the model:
        ``json.dumps(classifier.fit_state(), sort_keys=True)`` is the
        byte fingerprint the fit-parity suite compares across encoding
        paths (``fit_path="columns"`` vs ``"rows"``) and worker counts —
        two fits are considered identical exactly when these bytes match.
        Implementations must therefore emit *every* value prediction can
        depend on (class vocabulary, fitted tables/trees/rules,
        discretizer cuts, subsampled training data) in a deterministic
        order.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose its fitted state"
        )

    def prediction_payload(self) -> "AttributeClassifier":
        """The object a parallel audit dispatches to worker processes.

        Workers only ever call :meth:`predict_batch` /
        :meth:`predict_encoded`, so a classifier whose predictions never
        consult the training columns may return a clone holding a
        column-less :meth:`Dataset.prediction_view
        <repro.mining.dataset.Dataset.prediction_view>` (the tree does).
        This base implementation returns ``self`` — the full fitted
        state, which is always sufficient and required by instance-based
        classifiers such as kNN. The returned object must be picklable.
        """
        return self

    def _require_fitted(self) -> Dataset:
        if self.dataset is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted")
        return self.dataset
