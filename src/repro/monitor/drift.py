"""Per-attribute finding-rate drift detection over audit windows.

The fitted rules describe the data regime they were trained on; when the
stream's regime shifts (a feed starts mis-coding a column, an upstream
default changes), the symptom visible to the monitor is a change in the
**finding rate** — the fraction of rows the auditor flags — for the
affected attributes. :class:`DriftTracker` watches that rate window by
window and raises a :class:`DriftEvent` when a sustained, statistically
significant departure from the baseline appears.

The statistics reuse the Wilson score intervals the miners already use
for rule confidence (:mod:`repro.mining.intervals`): a window has
drifted when its Wilson interval and the baseline's interval *separate*,
i.e. ``wilson_lower(window) − wilson_upper(baseline)`` (or the mirrored
difference for a falling rate) exceeds ``threshold``. Interval
separation rather than a raw rate difference is what keeps stationary
streams quiet: small windows get wide intervals and must show a
proportionally larger swing before they can alarm.

The baseline is the mean finding rate over the first
``baseline_windows`` windows after (re)start or reset — the stream as
it looked when the current model was adopted. A single drifted window
is noise; ``sustain_windows`` *consecutive* drifted windows fire the
event, once per excursion (an alarmed attribute stays silent until its
rate recovers or :meth:`DriftTracker.reset` is called after a refit).

The tracker serializes to a plain dict (:meth:`DriftTracker.to_dict`)
so the watcher can persist it inside the watermark — drift detection
resumes mid-excursion exactly where the killed monitor left off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.mining.intervals import wilson_lower, wilson_upper

__all__ = ["DriftConfig", "DriftEvent", "DriftTracker"]


@dataclass(frozen=True)
class DriftConfig:
    """Tuning knobs for :class:`DriftTracker`.

    ``confidence`` sets the Wilson interval level; ``threshold`` is the
    extra interval separation (in rate units) required on top of mere
    non-overlap; ``baseline_windows`` windows establish the reference
    rate; ``sustain_windows`` consecutive drifted windows raise the
    event.
    """

    confidence: float = 0.95
    threshold: float = 0.0
    baseline_windows: int = 3
    sustain_windows: int = 2

    def __post_init__(self) -> None:
        if not 0.5 <= self.confidence < 1.0:
            raise ValueError(
                f"drift confidence must be in [0.5, 1), got {self.confidence}"
            )
        if self.threshold < 0:
            raise ValueError(f"drift threshold must be >= 0, got {self.threshold}")
        if self.baseline_windows < 1:
            raise ValueError(
                f"baseline_windows must be >= 1, got {self.baseline_windows}"
            )
        if self.sustain_windows < 1:
            raise ValueError(
                f"sustain_windows must be >= 1, got {self.sustain_windows}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "confidence": self.confidence,
            "threshold": self.threshold,
            "baseline_windows": self.baseline_windows,
            "sustain_windows": self.sustain_windows,
        }


@dataclass(frozen=True)
class DriftEvent:
    """One sustained departure of an attribute's finding rate."""

    attribute: str
    window: int  #: 1-based index of the window that completed the excursion
    direction: str  #: "rising" or "falling"
    score: float  #: Wilson interval separation beyond overlap, in rate units
    window_rate: float
    baseline_rate: float
    window_rows: int
    baseline_rows: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "attribute": self.attribute,
            "window": self.window,
            "direction": self.direction,
            "score": self.score,
            "window_rate": self.window_rate,
            "baseline_rate": self.baseline_rate,
            "window_rows": self.window_rows,
            "baseline_rows": self.baseline_rows,
        }


class _AttributeState:
    """Baseline + excursion state for one audited attribute."""

    __slots__ = (
        "baseline_findings",
        "baseline_rows",
        "baseline_windows",
        "consecutive",
        "alarmed",
    )

    def __init__(self) -> None:
        self.baseline_findings = 0
        self.baseline_rows = 0
        self.baseline_windows = 0
        self.consecutive = 0
        self.alarmed = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "baseline_findings": self.baseline_findings,
            "baseline_rows": self.baseline_rows,
            "baseline_windows": self.baseline_windows,
            "consecutive": self.consecutive,
            "alarmed": self.alarmed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "_AttributeState":
        state = cls()
        for name in cls.__slots__:
            if name in payload:
                setattr(state, name, payload[name])
        return state


class DriftTracker:
    """Windowed finding-rate drift detection (see module docstring)."""

    def __init__(self, attributes: Iterable[str], config: Optional[DriftConfig] = None):
        self.attributes = tuple(attributes)
        if not self.attributes:
            raise ValueError("DriftTracker needs at least one audited attribute")
        self.config = config or DriftConfig()
        self.windows = 0
        self._states = {name: _AttributeState() for name in self.attributes}

    def observe(
        self, n_rows: int, findings_per_attribute: Mapping[str, int]
    ) -> list[DriftEvent]:
        """Record one completed audit window; return newly fired events.

        ``n_rows`` is the window size; ``findings_per_attribute`` maps
        attribute name → findings in that window (absent names count as
        zero). Baseline windows accumulate silently; after that each
        window is scored against the frozen baseline.
        """
        if n_rows <= 0:
            raise ValueError(f"drift window must hold rows, got n_rows={n_rows}")
        self.windows += 1
        cfg = self.config
        events: list[DriftEvent] = []
        for name in self.attributes:
            state = self._states[name]
            count = int(findings_per_attribute.get(name, 0))
            if state.baseline_windows < cfg.baseline_windows:
                state.baseline_findings += count
                state.baseline_rows += n_rows
                state.baseline_windows += 1
                continue
            window_rate = count / n_rows
            baseline_rate = state.baseline_findings / state.baseline_rows
            rising = wilson_lower(
                window_rate, n_rows, cfg.confidence
            ) - wilson_upper(baseline_rate, state.baseline_rows, cfg.confidence)
            falling = wilson_lower(
                baseline_rate, state.baseline_rows, cfg.confidence
            ) - wilson_upper(window_rate, n_rows, cfg.confidence)
            score = max(rising, falling)
            if score > cfg.threshold:
                state.consecutive += 1
                if state.consecutive >= cfg.sustain_windows and not state.alarmed:
                    state.alarmed = True
                    events.append(
                        DriftEvent(
                            attribute=name,
                            window=self.windows,
                            direction="rising" if rising >= falling else "falling",
                            score=score,
                            window_rate=window_rate,
                            baseline_rate=baseline_rate,
                            window_rows=n_rows,
                            baseline_rows=state.baseline_rows,
                        )
                    )
            else:
                state.consecutive = 0
                state.alarmed = False
        return events

    def reset(self) -> None:
        """Forget baselines and excursions — called after a refit, when
        the new model defines a new normal."""
        self.windows = 0
        self._states = {name: _AttributeState() for name in self.attributes}

    @property
    def alarmed_attributes(self) -> tuple[str, ...]:
        return tuple(n for n in self.attributes if self._states[n].alarmed)

    def stats(self) -> dict[str, Any]:
        """JSON-able snapshot for status endpoints and logs."""
        per_attribute = {}
        for name in self.attributes:
            state = self._states[name]
            entry: dict[str, Any] = {
                "baseline_windows": state.baseline_windows,
                "consecutive_drifted": state.consecutive,
                "alarmed": state.alarmed,
            }
            if state.baseline_rows:
                entry["baseline_rate"] = state.baseline_findings / state.baseline_rows
            per_attribute[name] = entry
        return {
            "windows": self.windows,
            "config": self.config.to_dict(),
            "attributes": per_attribute,
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "windows": self.windows,
            "states": {n: s.to_dict() for n, s in self._states.items()},
        }

    @classmethod
    def from_dict(
        cls,
        payload: Mapping[str, Any],
        attributes: Sequence[str],
        config: Optional[DriftConfig] = None,
    ) -> "DriftTracker":
        tracker = cls(attributes, config)
        tracker.windows = int(payload.get("windows", 0))
        for name, state in payload.get("states", {}).items():
            if name in tracker._states:
                tracker._states[name] = _AttributeState.from_dict(state)
        return tracker
