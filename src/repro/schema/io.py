"""CSV serialization for tables.

Cells are rendered according to the attribute kind:

* nominal — the raw string,
* numeric — ``repr`` of the int/float,
* date — ISO format (``YYYY-MM-DD``),
* null — a configurable marker (default: empty field).

Reading is schema-driven: the schema decides how each field is parsed, so a
round trip through CSV is loss-free for admissible tables.
"""

from __future__ import annotations

import csv
import datetime
import io as _io
from pathlib import Path
from typing import Iterator, TextIO, Union

from repro.schema.schema import Schema
from repro.schema.table import Table
from repro.schema.types import AttributeKind, Value

__all__ = [
    "write_csv",
    "read_csv",
    "read_csv_chunks",
    "table_to_csv_text",
    "table_from_csv_text",
]

_DEFAULT_NULL = ""


def _render(value: Value, kind: AttributeKind, null_marker: str) -> str:
    if value is None:
        return null_marker
    if kind is AttributeKind.DATE:
        return value.isoformat()  # type: ignore[union-attr]
    if kind is AttributeKind.NUMERIC:
        if isinstance(value, int):
            return str(value)
        return repr(float(value))
    return str(value)


def _parse(text: str, kind: AttributeKind, null_marker: str, integer: bool) -> Value:
    if text == null_marker:
        return None
    if kind is AttributeKind.NOMINAL:
        return text
    if kind is AttributeKind.DATE:
        return datetime.date.fromisoformat(text)
    if integer:
        return int(text)
    number = float(text)
    return int(number) if number.is_integer() and "." not in text and "e" not in text.lower() else number


def write_csv(table: Table, target: Union[str, Path, TextIO], *, null_marker: str = _DEFAULT_NULL) -> None:
    """Write *table* (with a header row) to a path or text stream."""
    if isinstance(target, (str, Path)):
        with open(target, "w", newline="", encoding="utf-8") as handle:
            _write(table, handle, null_marker)
    else:
        _write(table, target, null_marker)


def _write(table: Table, handle: TextIO, null_marker: str) -> None:
    writer = csv.writer(handle)
    writer.writerow(table.schema.names)
    kinds = [a.kind for a in table.schema.attributes]
    for row in table.rows:
        writer.writerow([_render(v, k, null_marker) for v, k in zip(row, kinds)])


def read_csv(
    schema: Schema,
    source: Union[str, Path, TextIO],
    *,
    null_marker: str = _DEFAULT_NULL,
    validate: bool = False,
) -> Table:
    """Read a table of *schema* from a path or text stream.

    The header row must name exactly the schema attributes; column order in
    the file may differ from schema order.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", newline="", encoding="utf-8") as handle:
            return _read(schema, handle, null_marker, validate)
    return _read(schema, source, null_marker, validate)


def _parsed_rows(
    schema: Schema, handle: TextIO, null_marker: str
) -> Iterator[list[Value]]:
    """Header-checked, schema-ordered cell lists, one per CSV data row."""
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("CSV input is empty (missing header row)") from None
    if set(header) != set(schema.names):
        raise ValueError(
            f"CSV header {header!r} does not match schema attributes {list(schema.names)!r}"
        )
    order = [header.index(name) for name in schema.names]
    kinds = [a.kind for a in schema.attributes]
    integers = [
        getattr(a.domain, "integer", False) for a in schema.attributes
    ]
    for line_no, fields in enumerate(reader, start=2):
        if len(fields) != len(header):
            raise ValueError(f"line {line_no}: expected {len(header)} fields, got {len(fields)}")
        yield [
            _parse(fields[src], kind, null_marker, integer)
            for src, kind, integer in zip(order, kinds, integers)
        ]


def _read(schema: Schema, handle: TextIO, null_marker: str, validate: bool) -> Table:
    table = Table(schema)
    table.rows.extend(_parsed_rows(schema, handle, null_marker))
    if validate:
        table.validate()
    return table


def read_csv_chunks(
    schema: Schema,
    source: Union[str, Path, TextIO],
    *,
    chunk_size: int = 8192,
    null_marker: str = _DEFAULT_NULL,
    validate: bool = False,
) -> Iterator[Table]:
    """Read a CSV file as a stream of tables of at most *chunk_size* rows.

    Rows are parsed lazily, so peak memory is bounded by the chunk size
    rather than the file size — the substrate for
    :meth:`AuditSession.audit_csv_stream
    <repro.core.session.AuditSession.audit_csv_stream>`. An input with a
    valid header but no data rows yields no chunks.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    if isinstance(source, (str, Path)):
        with open(source, "r", newline="", encoding="utf-8") as handle:
            yield from _read_chunks(schema, handle, chunk_size, null_marker, validate)
    else:
        yield from _read_chunks(schema, source, chunk_size, null_marker, validate)


def _read_chunks(
    schema: Schema, handle: TextIO, chunk_size: int, null_marker: str, validate: bool
) -> Iterator[Table]:
    chunk = Table(schema)
    for cells in _parsed_rows(schema, handle, null_marker):
        chunk.rows.append(cells)
        if len(chunk.rows) >= chunk_size:
            if validate:
                chunk.validate()
            yield chunk
            chunk = Table(schema)
    if chunk.rows:
        if validate:
            chunk.validate()
        yield chunk


def table_to_csv_text(table: Table, *, null_marker: str = _DEFAULT_NULL) -> str:
    """Render *table* as a CSV string."""
    buffer = _io.StringIO()
    write_csv(table, buffer, null_marker=null_marker)
    return buffer.getvalue()


def table_from_csv_text(
    schema: Schema, text: str, *, null_marker: str = _DEFAULT_NULL, validate: bool = False
) -> Table:
    """Parse a table of *schema* from a CSV string."""
    return read_csv(schema, _io.StringIO(text), null_marker=null_marker, validate=validate)
