"""Content-addressed, versioned on-disk model registry (``repro.registry``).

The persistence layer of the audit *service*: structure models stored
by digest of their canonical serialized form, addressed by
human-readable refs (``loads@v3``, ``loads@prod``, ``loads@latest``),
each version carrying a provenance record (schema hash, training
source, config, row count, fit wall time, creation time). See
:mod:`repro.registry.store` for the on-disk format and the
concurrency contract, and ``repro models`` for the CLI face.
"""

from repro.registry.store import (
    ModelRegistry,
    ModelVersion,
    Provenance,
    RegistryError,
    model_digest,
    parse_ref,
    schema_digest,
)

__all__ = [
    "ModelRegistry",
    "ModelVersion",
    "Provenance",
    "RegistryError",
    "model_digest",
    "schema_digest",
    "parse_ref",
]
