"""Shared-memory column transport for the parallel executors.

The pickle dispatch path of :mod:`repro.core.parallel` ships the whole
table to every worker (via fork's copy-on-write or spawn's pickled
initargs) and each worker then *re-encodes* every column it touches into
its own private cache — O(workers × columns) encoding work and, under
``spawn``, O(workers × table bytes) serialization.

This module publishes the parent's encode-once arrays through POSIX
shared memory (:mod:`multiprocessing.shared_memory`) instead: the parent
encodes each column exactly once, copies the arrays into named segments,
and workers attach **read-only views** — no pickled column payloads, no
per-worker re-encoding, one physical copy of the encoded table no matter
the worker count. Workers only ever consume what the dispatch caches
serve, so only those arrays are shared:

* audit mode — the base-encoded columns and the per-class-attribute
  observed-code columns (:class:`SharedAuditColumns` →
  :class:`SharedAuditCache`);
* fit mode — the base-encoded columns, the class-code vectors and the
  fitted class encoders (pickled descriptors, a few hundred bytes each;
  :class:`SharedFitColumns` → :class:`SharedFitCache`). Null masks are
  parent-side intermediates (class codes and base columns already embed
  them) and are deliberately not shipped.

A worker's :meth:`SharedAuditCache.observed_value` answers ``None`` —
raw cell values never cross the process boundary; the dispatcher
rehydrates findings parent-side from its own raw columns
(:func:`repro.core.parallel._audit_table_shared`).

Lifecycle
---------
Segments are created by the parent under spawn-safe collision-resistant
names (``repro-shm-<pid>-<seq>-<random>``), owned by one
:class:`SharedColumnStore`, and unlinked in its ``finally`` path — a
context manager backed by a ``weakref.finalize`` guard, so even an
abandoned store reclaims its segments at garbage collection. One
resource tracker serves the whole process tree (its pipe fd is
inherited under both fork and spawn), so a worker's attach-time
re-registration is a harmless set no-op and workers never unregister or
unlink anything. If the parent dies uncleanly (SIGKILL), that tracker
reclaims the registered segments — nothing leaks into ``/dev/shm``
(pinned by the shm leak suite).

:func:`shared_memory_available` is the capability probe behind
``dispatch="auto"``: it creates and removes one tiny segment, caches the
answer, and honors the ``REPRO_DISABLE_SHM`` environment variable (any
non-empty value forces the pickle path fleet-wide).
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import pickle
import secrets
import weakref
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from repro.mining.dataset import BaseEncoder, ClassEncoder, Dataset
from repro.schema.schema import Schema

__all__ = [
    "shared_memory_available",
    "ArrayRef",
    "SharedColumnStore",
    "attach_array",
    "SharedAuditColumns",
    "SharedAuditCache",
    "publish_audit_columns",
    "SharedFitColumns",
    "SharedFitCache",
    "publish_fit_columns",
]

#: Segment-name prefix — the shm leak suite polls ``/dev/shm`` for it.
SEGMENT_PREFIX = "repro-shm"

_segment_counter = itertools.count()

_available: Optional[bool] = None

#: Segments attached by this (worker) process, kept mapped for the
#: process lifetime — a numpy view's buffer must outlive the view, and
#: pool workers exit shortly after their tasks anyway.
_ATTACHED: list = []


def shared_memory_available() -> bool:
    """Probe whether shared-memory dispatch can work here (cached).

    ``False`` when the platform lacks POSIX shared memory, when creating
    a segment fails (e.g. a locked-down ``/dev/shm``), or when
    ``REPRO_DISABLE_SHM`` is set.
    """
    global _available
    if os.environ.get("REPRO_DISABLE_SHM"):
        return False
    if _available is None:
        try:
            segment = _create_segment(1)
            segment.close()
            segment.unlink()
            _available = True
        except Exception:
            _available = False
    return _available


def _create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """One named segment with a collision-resistant name.

    The pid + sequence number make names unique within a parent; the
    random suffix guards against a recycled pid racing a stale segment.
    """
    while True:
        name = (
            f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_segment_counter)}"
            f"-{secrets.token_hex(4)}"
        )
        try:
            return shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        except FileExistsError:  # pragma: no cover - needs a name collision
            continue


@dataclasses.dataclass(frozen=True)
class ArrayRef:
    """Descriptor of one published array — everything a worker needs to
    attach it (a few dozen bytes, the *entire* per-column payload)."""

    name: str
    dtype: str
    shape: tuple


def _cleanup_segments(segments: list) -> None:
    for segment in segments:
        try:
            segment.close()
        except Exception:  # pragma: no cover - close is best-effort
            pass
        try:
            segment.unlink()
        except Exception:  # pragma: no cover - already unlinked
            pass
    segments.clear()


class SharedColumnStore:
    """Parent-side owner of a set of published segments.

    ``with SharedColumnStore() as store: ...`` guarantees every segment
    created through :meth:`share` is closed and unlinked on exit — on
    the success path, on worker failure, and (via the ``weakref``
    finalizer) even if the store is abandoned without exiting.
    """

    def __init__(self):
        self._segments: list = []
        self._closed = False
        self._finalizer = weakref.finalize(self, _cleanup_segments, self._segments)

    def share(self, array: np.ndarray) -> ArrayRef:
        """Copy *array* into a fresh segment; returns its descriptor."""
        if self._closed:
            raise RuntimeError("SharedColumnStore is closed")
        array = np.ascontiguousarray(array)
        segment = _create_segment(max(array.nbytes, 1))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        self._segments.append(segment)
        return ArrayRef(segment.name, array.dtype.str, array.shape)

    def close(self) -> None:
        """Close and unlink every owned segment (idempotent)."""
        if not self._closed:
            self._closed = True
            self._finalizer.detach()
            _cleanup_segments(self._segments)

    def __enter__(self) -> "SharedColumnStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def attach_array(ref: ArrayRef) -> np.ndarray:
    """Worker-side: attach one published array as a read-only view.

    Attaching re-registers the segment with the resource tracker on
    Python ≤ 3.11, but the whole process tree shares one tracker (its
    pipe fd is inherited under both fork and spawn) and registration is
    set-based, so the duplicate is a no-op. Workers must NOT unregister:
    that would strip the parent's crash-recovery registration from the
    shared tracker and make the parent's own ``unlink`` warn.
    """
    segment = shared_memory.SharedMemory(name=ref.name)
    _ATTACHED.append(segment)  # keep the mapping alive for the view
    array: np.ndarray = np.ndarray(
        ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf
    )
    array.flags.writeable = False
    return array


# -- audit mode -------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SharedAuditColumns:
    """The audit dispatch descriptor: where every worker-consumed array
    lives. Pickles to descriptors only — no column data."""

    schema: Schema
    n_rows: int
    encoded: dict  # base attribute name -> ArrayRef
    observed: dict  # class attribute name -> ArrayRef (class codes)


def publish_audit_columns(auditor, cache, store: SharedColumnStore) -> SharedAuditColumns:
    """Encode once through *cache* and publish exactly the arrays
    :meth:`DataAuditor.audit_attribute
    <repro.core.auditor.DataAuditor.audit_attribute>` reads."""
    encoded: dict = {}
    observed: dict = {}
    for class_attr, classifier in auditor.classifiers.items():
        dataset = classifier.dataset
        for name in dataset.base_attrs:
            if name not in encoded:
                encoded[name] = store.share(
                    cache.encoded(name, dataset.encoders[name])
                )
        observed[class_attr] = store.share(
            cache.observed_codes(class_attr, dataset.class_encoder)
        )
    return SharedAuditColumns(cache.schema, cache.n_rows, encoded, observed)


class SharedAuditCache:
    """Worker-side stand-in for :class:`~repro.core.auditor.ColumnCache`
    over attached shared arrays.

    Serves the exact surface :meth:`DataAuditor.audit_attribute` reads.
    ``observed_value`` answers ``None`` — raw cells never cross the
    process boundary; the dispatcher rehydrates findings parent-side.
    """

    def __init__(self, shared: SharedAuditColumns):
        self._shared = shared
        self._encoded: dict = {}
        self._observed: dict = {}

    @property
    def n_rows(self) -> int:
        return self._shared.n_rows

    @property
    def schema(self) -> Schema:
        return self._shared.schema

    def encoded(self, name: str, encoder) -> np.ndarray:
        if name not in self._encoded:
            self._encoded[name] = attach_array(self._shared.encoded[name])
        return self._encoded[name]

    def observed_codes(self, name: str, class_encoder) -> np.ndarray:
        if name not in self._observed:
            self._observed[name] = attach_array(self._shared.observed[name])
        return self._observed[name]

    def observed_value(self, name: str, row: int):
        return None  # rehydrated parent-side from the parent's raw columns


# -- fit mode ---------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SharedFitColumns:
    """The fit dispatch descriptor (column fit path only)."""

    schema: Schema
    n_rows: int
    n_bins: int
    base: dict  # attribute name -> ArrayRef (base-encoded column)
    class_codes: dict  # class attribute name -> ArrayRef (class codes)
    class_encoders: dict  # class attribute name -> pickled ClassEncoder


def publish_fit_columns(auditor, cache, store: SharedColumnStore) -> SharedFitColumns:
    """Encode once through *cache* (a
    :class:`~repro.core.auditor.FitColumnCache`) and publish exactly
    what :meth:`FitColumnCache.dataset_for` assembles per classifier."""
    attrs = auditor.audited_attributes()
    needed: list = []
    for class_attr in attrs:
        for name in auditor.base_attributes_for(class_attr):
            if name not in needed:
                needed.append(name)
    base = {name: store.share(cache.base_column(name)) for name in needed}
    class_codes = {
        class_attr: store.share(cache.class_codes(class_attr))
        for class_attr in attrs
    }
    class_encoders = {
        class_attr: pickle.dumps(
            cache.class_encoder(class_attr), protocol=pickle.HIGHEST_PROTOCOL
        )
        for class_attr in attrs
    }
    return SharedFitColumns(
        cache.schema, cache.n_rows, cache.n_bins, base, class_codes, class_encoders
    )


class SharedFitCache:
    """Worker-side stand-in for
    :class:`~repro.core.auditor.FitColumnCache` over attached arrays.

    Base encoders are rebuilt locally (deterministic per schema
    attribute, a dict comprehension each); class encoders arrive pickled
    because their discretizers were *fitted* on the parent's data and
    must match bit-for-bit.
    """

    def __init__(self, shared: SharedFitColumns):
        self._shared = shared
        self._encoders: dict = {}
        self._columns: dict = {}
        self._class_encoders: dict = {}
        self._codes: dict = {}

    @property
    def n_rows(self) -> int:
        return self._shared.n_rows

    @property
    def schema(self) -> Schema:
        return self._shared.schema

    def base_encoder(self, name: str) -> BaseEncoder:
        if name not in self._encoders:
            self._encoders[name] = BaseEncoder(self._shared.schema.attribute(name))
        return self._encoders[name]

    def base_column(self, name: str) -> np.ndarray:
        if name not in self._columns:
            self._columns[name] = attach_array(self._shared.base[name])
        return self._columns[name]

    def class_encoder(self, name: str) -> ClassEncoder:
        if name not in self._class_encoders:
            self._class_encoders[name] = pickle.loads(
                self._shared.class_encoders[name]
            )
        return self._class_encoders[name]

    def class_codes(self, name: str) -> np.ndarray:
        if name not in self._codes:
            self._codes[name] = attach_array(self._shared.class_codes[name])
        return self._codes[name]

    def dataset_for(self, class_attr: str, base_attrs) -> Dataset:
        """One classifier's training view over the attached arrays —
        the same assembly as :meth:`FitColumnCache.dataset_for
        <repro.core.auditor.FitColumnCache.dataset_for>`."""
        return Dataset.from_shared(
            class_attr,
            base_attrs,
            encoders={name: self.base_encoder(name) for name in base_attrs},
            columns={name: self.base_column(name) for name in base_attrs},
            class_encoder=self.class_encoder(class_attr),
            y=self.class_codes(class_attr),
            n_rows=self._shared.n_rows,
        )
