"""Local Outlier Factor — the distance-based outlier baseline.

Paper sec. 7: *"Much literature deals with definitions and detection
algorithms for data outliers […] However, these approaches usually require
the definition of a distance function between two data items, which is not
an easy task for databases with mainly nominal attributes."* (Citing
Breunig et al., LOF, SIGMOD 2000.)

A faithful from-scratch LOF over a Gower-style mixed distance (0/1 for
nominal mismatches, span-normalized absolute difference for ordered
attributes, distance 1 against nulls). The benchmark uses it to
demonstrate the paper's point: on mostly-nominal relational data the
distance degenerates into few discrete levels and LOF separates seeded
errors poorly.

The auditor wrapper mirrors :class:`repro.core.DataAuditor`'s ``fit`` /
``audit`` interface; records are flagged when their LOF score exceeds
``threshold`` (LOF ≈ 1 means "as dense as the neighbourhood"; > 1 means
outlying).
"""

from __future__ import annotations

import random
import time
from typing import Optional

import numpy as np

from repro.core.findings import AuditReport, Finding
from repro.schema.domain import NominalDomain
from repro.schema.schema import Schema
from repro.schema.table import Table

__all__ = ["lof_scores", "LofAuditor"]

#: pseudo-attribute name used in record-level findings (LOF judges whole
#: records; it cannot attribute suspicion to a cell)
RECORD_ATTRIBUTE = "<record>"


def _encode(table: Table) -> tuple[list[np.ndarray], list[bool]]:
    """Per-attribute arrays: nominal → code ints (−1 null), ordered →
    span-normalized floats (NaN null)."""
    columns: list[np.ndarray] = []
    is_nominal: list[bool] = []
    for attribute in table.schema.attributes:
        values = table.column(attribute.name)
        if isinstance(attribute.domain, NominalDomain):
            mapping = {v: i for i, v in enumerate(attribute.domain.values)}
            encoded = np.asarray(
                [mapping.get(v, -2) if v is not None else -1 for v in values],
                dtype=np.int64,
            )
            is_nominal.append(True)
        else:
            numeric = []
            for v in values:
                try:
                    numeric.append(
                        attribute.domain.to_number(v) if v is not None else np.nan
                    )
                except (TypeError, AttributeError, ValueError):
                    numeric.append(np.nan)
            encoded = np.asarray(numeric, dtype=float)
            finite = encoded[~np.isnan(encoded)]
            span = float(finite.max() - finite.min()) if finite.size else 1.0
            encoded = (encoded - (finite.min() if finite.size else 0.0)) / (
                span if span > 0 else 1.0
            )
            is_nominal.append(False)
        columns.append(encoded)
    return columns, is_nominal


def _distance_matrix(columns: list[np.ndarray], is_nominal: list[bool]) -> np.ndarray:
    n = len(columns[0])
    total = np.zeros((n, n), dtype=float)
    for column, nominal in zip(columns, is_nominal):
        if nominal:
            missing = column < 0
            mismatch = (column[:, None] != column[None, :]).astype(float)
            mismatch[missing, :] = 1.0
            mismatch[:, missing] = 1.0
            np.fill_diagonal(mismatch, 0.0)
            total += mismatch
        else:
            missing = np.isnan(column)
            filled = np.where(missing, 0.0, column)
            diff = np.abs(filled[:, None] - filled[None, :])
            diff = np.minimum(diff, 1.0)
            diff[missing, :] = 1.0
            diff[:, missing] = 1.0
            np.fill_diagonal(diff, 0.0)
            total += diff
    return total / len(columns)


def lof_scores(table: Table, k: int = 10) -> np.ndarray:
    """Classic LOF (Breunig et al. 2000) for every row of *table*.

    O(n²) time and memory — callers should subsample large tables (the
    auditor wrapper does).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    n = table.n_rows
    if n <= k + 1:
        return np.ones(n, dtype=float)
    columns, is_nominal = _encode(table)
    distances = _distance_matrix(columns, is_nominal)
    order = np.argsort(distances, axis=1, kind="stable")
    # skip self (column 0 after sorting: distance 0)
    neighbours = order[:, 1 : k + 1]
    k_distance = distances[np.arange(n), order[:, k]]
    # reachability distance: max(k_distance(o), d(p, o))
    reach = np.maximum(
        k_distance[neighbours], distances[np.arange(n)[:, None], neighbours]
    )
    lrd = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)
    lof = (lrd[neighbours].mean(axis=1)) / lrd
    return lof


class LofAuditor:
    """Record-level outlier flagging via LOF, with the auditor interface."""

    def __init__(
        self,
        schema: Schema,
        *,
        k: int = 10,
        threshold: float = 1.5,
        max_rows: Optional[int] = 4000,
        seed: int = 0,
    ):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.schema = schema
        self.k = k
        self.threshold = threshold
        self.max_rows = max_rows
        self.seed = seed
        self.fit_seconds = 0.0

    def fit(self, table: Table) -> "LofAuditor":
        """LOF is lazy — scoring happens against the audited table itself."""
        self.fit_seconds = 0.0
        return self

    def audit(self, table: Table) -> AuditReport:
        started = time.perf_counter()
        n = table.n_rows
        if self.max_rows is not None and n > self.max_rows:
            rng = random.Random(self.seed)
            chosen = sorted(rng.sample(range(n), self.max_rows))
            scores_subset = lof_scores(table.select(chosen), self.k)
            scores = np.ones(n, dtype=float)
            for index, row in enumerate(chosen):
                scores[row] = scores_subset[index]
        else:
            scores = lof_scores(table, self.k)
        self.fit_seconds = time.perf_counter() - started
        # map LOF (≥ ~1) onto a [0, 1] confidence-like scale for reporting
        confidence = np.clip((scores - 1.0) / max(self.threshold - 1.0, 1e-9), 0.0, 1.0)
        findings = [
            Finding(
                row=row,
                attribute=RECORD_ATTRIBUTE,
                observed_label="outlier",
                observed_value=None,
                predicted_label="inlier",
                confidence=float(confidence[row]),
                support=float(self.k),
                proposal=None,
            )
            for row in range(n)
            if scores[row] >= self.threshold
        ]
        return AuditReport(n, findings, confidence.tolist(), 1.0)
