"""Audit findings: suspicious cells, record rankings, and corrections.

Sec. 5.2–5.3: each classifier contributes an error confidence per record;
the record's overall error confidence is the maximum (Def. 8); suspicious
records are ranked by it (the QUIS case study: "These records were ranked
according to their associated error confidence"); and the correction
proposal replaces the suspicious value "according to the prediction of the
classifier with the highest error confidence".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.schema.attribute import numeric, text
from repro.schema.schema import Schema
from repro.schema.table import Table
from repro.schema.types import Value

__all__ = [
    "Finding",
    "Correction",
    "AuditReport",
    "findings_schema",
    "findings_to_table",
]


@dataclass(frozen=True)
class Finding:
    """One classifier's deviation verdict for one record."""

    row: int
    attribute: str
    observed_label: str
    observed_value: Value
    predicted_label: str
    confidence: float
    support: float
    proposal: Value

    def describe(self) -> str:
        return (
            f"row {self.row}: {self.attribute} = {self.observed_value!r} "
            f"deviates (expected {self.predicted_label}, "
            f"confidence {self.confidence:.2%}, n={self.support:g})"
        )


@dataclass(frozen=True)
class Correction:
    """The proposed replacement for one suspicious record (sec. 5.3)."""

    row: int
    attribute: str
    old_value: Value
    new_value: Value
    confidence: float


def findings_schema() -> Schema:
    """The relational shape of a findings export.

    Findings are themselves table-shaped, so they flow through the same
    storage backends (:mod:`repro.io`) as the data they describe — one
    code path writes findings as CSV, JSONL, or a SQLite table. String
    columns use :class:`~repro.schema.domain.TextDomain` (open
    vocabulary); ``observed`` and ``proposal`` are the canonical text
    forms of the cell values (null stays null).
    """
    return Schema(
        [
            numeric("row", 0, 2**63 - 1, integer=True, nullable=False),
            text("attribute", nullable=False),
            text("observed"),
            text("observed_label", nullable=False),
            text("expected", nullable=False),
            numeric("confidence", 0.0, 1.0, nullable=False),
            numeric("support", 0.0, float("1e308")),
            text("proposal"),
        ]
    )


def _value_text(value: Value) -> Optional[str]:
    return None if value is None else str(value)


def findings_to_table(findings: Iterable[Finding]) -> Table:
    """Materialize findings as a :class:`Table` of :func:`findings_schema`.

    The bridge between audit reports and the pluggable storage layer:
    ``repro audit --findings-out x.jsonl`` is
    ``write_table(findings_to_table(...), "x.jsonl")``.
    """
    table = Table(findings_schema())
    for finding in findings:
        table.rows.append(
            [
                finding.row,
                finding.attribute,
                _value_text(finding.observed_value),
                finding.observed_label,
                finding.predicted_label,
                finding.confidence,
                finding.support,
                _value_text(finding.proposal),
            ]
        )
    return table


class AuditReport:
    """Outcome of one deviation-detection run.

    Contains *all* findings above the auditor's minimal error confidence,
    plus the Def. 8 record confidences for every row (zero for records no
    classifier objected to).
    """

    def __init__(
        self,
        n_rows: int,
        findings: Iterable[Finding],
        record_confidence: Sequence[float],
        min_error_confidence: float,
        row_offset: int = 0,
        *,
        schema: Optional[Schema] = None,
    ):
        self.n_rows = n_rows
        self.findings: list[Finding] = sorted(
            findings, key=lambda f: (-f.confidence, f.row, f.attribute)
        )
        self.record_confidence = list(record_confidence)
        if len(self.record_confidence) != n_rows:
            raise ValueError("record_confidence must cover every row")
        self.min_error_confidence = min_error_confidence
        #: index of this report's first row within the audited stream —
        #: non-zero for the incremental chunk reports of
        #: :meth:`AuditSession.audit_chunks
        #: <repro.core.session.AuditSession.audit_chunks>`, whose finding
        #: rows are stream-global while ``record_confidence`` still covers
        #: only the chunk's own ``n_rows`` records
        self.row_offset = row_offset
        #: schema of the audited table when the report came out of a
        #: :class:`~repro.core.auditor.DataAuditor` (None for hand-built
        #: reports); :meth:`merge` refuses to concatenate reports whose
        #: schemas differ
        self.schema = schema
        self._by_row: dict[int, list[Finding]] = {}
        for finding in self.findings:
            self._by_row.setdefault(finding.row, []).append(finding)

    # -- queries -----------------------------------------------------------

    @property
    def n_suspicious(self) -> int:
        return len(self._by_row)

    def confidence_of(self, row: int) -> float:
        """The Def.-8 record confidence of one (stream-global) row."""
        index = row - self.row_offset
        if index < 0:  # guard Python's negative indexing: loud, not wrong
            raise IndexError(
                f"row {row} precedes this report's rows "
                f"[{self.row_offset}, {self.row_offset + self.n_rows})"
            )
        return self.record_confidence[index]

    def suspicious_rows(self) -> list[int]:
        """Rows flagged at the configured minimal error confidence, ranked
        by descending record confidence."""
        return sorted(
            self._by_row, key=lambda row: (-self.confidence_of(row), row)
        )

    def is_flagged(self, row: int) -> bool:
        return row in self._by_row

    def findings_for_row(self, row: int) -> list[Finding]:
        """All deviations of one record (useful in interactive correction:
        "the predicted distributions of all classifiers that indicate a
        data error can be useful in finding the true reason")."""
        return list(self._by_row.get(row, ()))

    def ranked_findings(self, limit: Optional[int] = None) -> list[Finding]:
        """Findings sorted by descending confidence."""
        return self.findings[: limit if limit is not None else len(self.findings)]

    # -- composition (streaming audits) -----------------------------------

    def with_row_offset(self, offset: int) -> "AuditReport":
        """A copy with all row indices shifted by *offset* — how a chunked
        audit (see :class:`~repro.core.session.AuditSession`) maps
        chunk-local rows to their global position in the stream."""
        if offset == 0:
            return self
        findings = [
            dataclasses.replace(finding, row=finding.row + offset)
            for finding in self.findings
        ]
        return AuditReport(
            self.n_rows,
            findings,
            self.record_confidence,
            self.min_error_confidence,
            row_offset=self.row_offset + offset,
            schema=self.schema,
        )

    @classmethod
    def merge(cls, reports: Sequence["AuditReport"]) -> "AuditReport":
        """Combine incremental chunk reports into one whole-stream report.

        The inputs must share one minimal error confidence, come from one
        schema (reports that carry a schema and disagree are rejected —
        silently concatenating audits of different relations would
        produce a report whose findings mix vocabularies), and form a
        contiguous stream (each report's :attr:`row_offset` continues
        where the previous one ended) — exactly what
        :meth:`AuditSession.audit_chunks <repro.core.session.AuditSession.audit_chunks>`
        yields, in order. Merging the chunk reports of any chunking of a
        table reproduces the whole-table audit exactly: findings, ranking,
        and record confidences.
        """
        reports = list(reports)
        if not reports:
            raise ValueError("cannot merge an empty sequence of reports")
        threshold = reports[0].min_error_confidence
        if any(r.min_error_confidence != threshold for r in reports):
            raise ValueError("cannot merge reports with different thresholds")
        schema: Optional[Schema] = None
        for report in reports:
            if report.schema is None:
                continue
            if schema is None:
                schema = report.schema
            elif report.schema != schema:
                raise ValueError(
                    f"cannot merge audit reports of different schemas: "
                    f"{list(schema.names)!r} vs {list(report.schema.names)!r} "
                    f"(chunks of one stream must come from one relation)"
                )
        expected_offset = reports[0].row_offset
        findings: list[Finding] = []
        record_confidence: list[float] = []
        for report in reports:
            if report.row_offset != expected_offset:
                raise ValueError(
                    f"reports are not stream-contiguous: expected a chunk "
                    f"starting at row {expected_offset}, got {report.row_offset} "
                    f"(shift chunk reports with with_row_offset first)"
                )
            findings.extend(report.findings)
            record_confidence.extend(report.record_confidence)
            expected_offset += report.n_rows
        return cls(
            len(record_confidence),
            findings,
            record_confidence,
            threshold,
            row_offset=reports[0].row_offset,
            schema=schema,
        )

    # -- corrections (sec. 5.3) ------------------------------------------------

    def corrections(self) -> list[Correction]:
        """One proposal per suspicious record: the prediction of the
        classifier with the highest error confidence."""
        proposals = []
        for row, row_findings in sorted(self._by_row.items()):
            best = max(row_findings, key=lambda f: f.confidence)
            proposals.append(
                Correction(
                    row=row,
                    attribute=best.attribute,
                    old_value=best.observed_value,
                    new_value=best.proposal,
                    confidence=best.confidence,
                )
            )
        return proposals

    def apply_corrections(self, table: Table) -> Table:
        """A copy of *table* with all proposals applied.

        Findings that do not address a real column (record-level detectors
        such as LOF report a pseudo-attribute) are skipped — they carry no
        cell proposal.
        """
        corrected = table.copy()
        for correction in self.corrections():
            if correction.attribute not in table.schema:
                continue
            corrected.set_cell(correction.row, correction.attribute, correction.new_value)
        return corrected

    def __repr__(self) -> str:
        return (
            f"AuditReport(rows={self.n_rows}, findings={len(self.findings)}, "
            f"suspicious={self.n_suspicious}, "
            f"min_conf={self.min_error_confidence:.0%})"
        )
