"""Related-work baselines (paper sec. 7): Hipp et al.'s association-rule
data quality mining and LOF-style distance-based outlier detection.

Both implement the ``fit`` / ``audit`` interface of
:class:`repro.core.DataAuditor` so the test environment can evaluate them
with the same sec.-4.3 metrics — the comparison benchmark demonstrates the
limitations the paper cites when arguing for the multiple
classification / regression approach.
"""

from repro.baselines.association import (
    AprioriMiner,
    AssociationRule,
    AssociationRuleAuditor,
)
from repro.baselines.lof import LofAuditor, lof_scores

__all__ = [
    "AprioriMiner",
    "AssociationRule",
    "AssociationRuleAuditor",
    "LofAuditor",
    "lof_scores",
]
