"""Tests for TDG-rules (Def. 3) and the naturalness restrictions (Defs. 4–6).

Includes the paper's own counterexamples from sec. 4.1.2:
contradictory (``A = v₁ → A = v₂``), hidden-contradiction
(``A = v₁ ∧ A = v₂ → …``), tautological (``A = v₁ → A ≠ v₂``),
mutually contradictory rule pairs, and redundancy-introducing pairs.
"""

import pytest
from hypothesis import given, settings

from repro.logic import (
    And,
    Eq,
    Gt,
    IsNotNull,
    IsNull,
    Lt,
    Ne,
    Or,
    Rule,
    can_extend_rule_set,
    is_natural_formula,
    is_natural_rule,
    is_natural_rule_set,
    rule_pair_is_natural,
)

from tests import strategies as tst


class TestRule:
    def test_violation_semantics(self):
        rule = Rule(Eq("A", "a"), Eq("B", "x"))
        assert rule.violated_by({"A": "a", "B": "y"})
        assert not rule.violated_by({"A": "a", "B": "x"})
        assert not rule.violated_by({"A": "b", "B": "y"})  # premise false

    def test_vacuous_satisfaction(self):
        rule = Rule(Eq("A", "a"), Eq("B", "x"))
        assert rule.satisfied_by({"A": None, "B": None})
        assert rule.applicable({"A": "a", "B": None})

    def test_attributes(self):
        rule = Rule(And(Eq("A", "a"), Lt("N", 2)), Eq("B", "x"))
        assert rule.attributes() == frozenset({"A", "N", "B"})

    def test_str(self):
        assert str(Rule(Eq("A", "a"), Eq("B", "x"))) == "A = 'a' → B = 'x'"

    def test_equality_hash(self):
        r1 = Rule(Eq("A", "a"), Eq("B", "x"))
        r2 = Rule(Eq("A", "a"), Eq("B", "x"))
        assert r1 == r2 and hash(r1) == hash(r2)

    def test_type_check(self):
        with pytest.raises(TypeError):
            Rule("A = a", Eq("B", "x"))

    def test_validate(self, tiny_schema):
        Rule(Eq("A", "a"), Eq("B", "x")).validate(tiny_schema)
        with pytest.raises(ValueError):
            Rule(Eq("A", "zzz"), Eq("B", "x")).validate(tiny_schema)


class TestNaturalFormula:
    def test_satisfiable_atom_is_natural(self, tiny_schema):
        assert is_natural_formula(Eq("A", "a"), tiny_schema)

    def test_unsatisfiable_conjunction_not_natural(self, tiny_schema):
        assert not is_natural_formula(And(Eq("A", "a"), Eq("A", "b")), tiny_schema)

    def test_redundant_conjunct_not_natural(self, tiny_schema):
        # N < 2 already implies N < 3
        assert not is_natural_formula(And(Lt("N", 2), Lt("N", 3)), tiny_schema)

    def test_independent_conjunction_natural(self, tiny_schema):
        assert is_natural_formula(And(Eq("A", "a"), Eq("B", "x")), tiny_schema)

    def test_redundant_disjunct_not_natural(self, tiny_schema):
        # N < 2 is absorbed by N < 3
        assert not is_natural_formula(Or(Lt("N", 2), Lt("N", 3)), tiny_schema)

    def test_independent_disjunction_natural(self, tiny_schema):
        assert is_natural_formula(Or(Eq("A", "a"), Eq("B", "x")), tiny_schema)

    def test_nested(self, tiny_schema):
        f = And(Or(Eq("A", "a"), Eq("A", "b")), Eq("B", "x"))
        assert is_natural_formula(f, tiny_schema)

    def test_eq_with_notnull_redundant(self, tiny_schema):
        assert not is_natural_formula(And(Eq("A", "a"), IsNotNull("A")), tiny_schema)


class TestNaturalRule:
    def test_plain_dependency_is_natural(self, tiny_schema):
        assert is_natural_rule(Rule(Eq("A", "a"), Eq("B", "x")), tiny_schema)

    def test_paper_contradictory_rule(self, tiny_schema):
        # A = Val1 → A = Val2 : premise ∧ consequence unsatisfiable
        assert not is_natural_rule(Rule(Eq("A", "a"), Eq("A", "b")), tiny_schema)

    def test_paper_unsatisfiable_premise(self, tiny_schema):
        # A = Val1 ∧ A = Val2 → B = Val1 : premise not natural
        assert not is_natural_rule(
            Rule(And(Eq("A", "a"), Eq("A", "b")), Eq("B", "x")), tiny_schema
        )

    def test_paper_tautological_rule(self, tiny_schema):
        # A = Val1 → A ≠ Val2 : premise implies consequence
        assert not is_natural_rule(Rule(Eq("A", "a"), Ne("A", "b")), tiny_schema)

    def test_numeric_tautology_rejected(self, tiny_schema):
        assert not is_natural_rule(Rule(Lt("N", 2), Lt("N", 3)), tiny_schema)

    def test_numeric_dependency_natural(self, tiny_schema):
        assert is_natural_rule(Rule(Lt("N", 2), Gt("M", 1)), tiny_schema)


class TestNaturalRuleSet:
    def test_paper_mutually_contradictory_pair(self, tiny_schema):
        # A = v → B = x and A = v → B = y: premises equal, consequences clash
        r1 = Rule(Eq("A", "a"), Eq("B", "x"))
        r2 = Rule(Eq("A", "a"), Eq("B", "y"))
        assert not rule_pair_is_natural(r1, r2, tiny_schema)
        assert not is_natural_rule_set([r1, r2], tiny_schema)

    def test_paper_redundant_pair(self, tiny_schema):
        # A=a ∧ B=x → N=1 adds nothing in the presence of A=a → N=1
        specific = Rule(And(Eq("A", "a"), Eq("B", "x")), Eq("N", 1))
        general = Rule(Eq("A", "a"), Eq("N", 1))
        assert not rule_pair_is_natural(specific, general, tiny_schema)
        # order of the pair must not matter
        assert not rule_pair_is_natural(general, specific, tiny_schema)

    def test_refining_consequence_is_allowed(self, tiny_schema):
        # a more specific premise may *refine* the weaker consequence
        general = Rule(Eq("A", "a"), Lt("N", 3))
        specific = Rule(And(Eq("A", "a"), Eq("B", "x")), Lt("N", 2))
        assert rule_pair_is_natural(general, specific, tiny_schema)
        assert is_natural_rule_set([general, specific], tiny_schema)

    def test_unrelated_premises_always_pass_pairwise(self, tiny_schema):
        r1 = Rule(Eq("A", "a"), Eq("N", 1))
        r2 = Rule(Eq("B", "x"), Eq("M", 2))
        assert rule_pair_is_natural(r1, r2, tiny_schema)

    def test_duplicate_rules_rejected(self, tiny_schema):
        r = Rule(Eq("A", "a"), Eq("B", "x"))
        assert not is_natural_rule_set([r, r], tiny_schema)
        assert not can_extend_rule_set([r], r, tiny_schema)

    def test_can_extend(self, tiny_schema):
        r1 = Rule(Eq("A", "a"), Eq("B", "x"))
        ok = Rule(Eq("A", "b"), Eq("B", "y"))
        clash = Rule(Eq("A", "a"), Eq("B", "y"))
        assert can_extend_rule_set([r1], ok, tiny_schema)
        assert not can_extend_rule_set([r1], clash, tiny_schema)

    def test_natural_rule_set_accepts_consistent_rules(self, tiny_schema):
        rules = [
            Rule(Eq("A", "a"), Eq("B", "x")),
            Rule(Eq("A", "b"), Eq("B", "y")),
            Rule(Eq("B", "y"), Gt("N", 0)),
        ]
        assert is_natural_rule_set(rules, tiny_schema)


class TestRandomizedNaturalness:
    @settings(max_examples=60, deadline=None)
    @given(tst.formulas())
    def test_natural_formulas_are_satisfiable(self, formula):
        if is_natural_formula(formula, tst.TINY):
            assert any(formula.evaluate(r) for r in tst.all_records())

    @settings(max_examples=60, deadline=None)
    @given(tst.rules())
    def test_natural_rules_are_informative(self, rule):
        if is_natural_rule(rule, tst.TINY):
            records = list(tst.all_records())
            # premise satisfiable together with consequence …
            assert any(
                rule.premise.evaluate(r) and rule.consequence.evaluate(r)
                for r in records
            )
            # … and the rule can actually be violated (not a tautology)
            assert any(
                rule.premise.evaluate(r) and not rule.consequence.evaluate(r)
                for r in records
            )
