"""Command-line interface: the paper's pipeline as shell commands.

The stages of the fig.-2 test environment and the fig.-1 workflow map to
subcommands over portable artifacts (tables in any registered storage
format, JSON schemas / models / logs):

=============  ================================================================
``schema``     write a schema JSON (the base-profile schema or the QUIS one)
``generate``   artificial rule-compliant data (sec. 4.1) → table (+ schema)
``pollute``    controlled corruption (sec. 4.2) → dirty table + ground-truth log
``fit``        structure induction (sec. 5) → persisted model JSON and/or a
               registry version (``--register NAME``)
``audit``      deviation detection → ranked findings (any format or stdout);
               ``--model`` takes a model file or a registry ref (``name@v3``)
``evaluate``   sec. 4.3 metrics of a model against a logged corruption
``models``     the registry face: ``list`` / ``show`` / ``tag`` / ``rm``
``monitor``    continuous auditing of a growing table: tail + windowed audits
               with durable watermarks, drift detection, optional auto-refit
``serve``      the long-running audit daemon (HTTP fit/list/audit/monitors)
=============  ================================================================

Every table argument (``--input``, ``--output``, ``--out``, ``--clean``,
``--dirty``, ``--findings-out``) accepts any format the registry
(:mod:`repro.io`) knows: the format is inferred from the extension
(``.csv``, ``.jsonl``/``.ndjson``, ``.db``/``.sqlite``/``.sqlite3``,
``.parquet``/``.pq``) or a ``sqlite:///db?table=t`` URI, defaults to CSV
for unrecognized names, and can be forced with ``--input-format`` /
``--output-format``. Example session::

    repro generate --records 5000 --rules 80 --out clean.csv --schema-out schema.json
    repro pollute  --schema schema.json --input clean.csv \
                   --output warehouse.db --log-out truth.json
    repro fit      --schema schema.json --input warehouse.db --model-out model.json
    repro audit    --model model.json --input warehouse.db --top 10
    repro evaluate --schema schema.json --clean clean.csv --dirty warehouse.db \
                   --log truth.json --model model.json

``repro audit --chunk-size N`` streams the input (any backend) through
an :class:`~repro.core.session.AuditSession` in N-row chunks (sec. 2.2's
online load check: memory stays bounded by the chunk size plus the
findings retained for ranking, not by the load's row count);
``--format jsonl`` emits machine-readable findings; ``--jobs N`` runs
the deviation check on N worker processes (per column for whole-table
audits, per chunk when combined with ``--chunk-size``) with bit-identical
output — including across storage backends: auditing a SQLite table is
bit-identical to auditing the equivalent CSV export.
``--io-path {auto,columns,rows}`` on ``fit`` and ``audit`` selects the
ingest representation: ``columns`` reads the backend's native column
batches (:mod:`repro.io.columnar` — no row objects on the hot path),
``rows`` keeps the row-major parity oracle, and ``auto`` (the default)
negotiates per backend; models and findings are byte-identical. See
``docs/architecture.md`` for the execution model and the README for a
full flag reference.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import random
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro import __version__
from repro.core.auditor import AuditorConfig, DataAuditor
from repro.core.findings import Finding, findings_to_table
from repro.core.serialize import save_auditor
from repro.core.session import AuditSession, ModelPersistenceError
from repro.generator.profiles import base_profile, base_schema
from repro.io.columnar import IO_PATHS, resolve_io_path
from repro.io.jsonl_backend import JsonlTableSink
from repro.io.registry import (
    available_formats,
    detect_format,
    open_sink,
    open_source,
)
from repro.pollution.log import PollutionLog
from repro.pollution.pipeline import PollutionPipeline, default_polluters
from repro.quis.simulator import quis_schema
from repro.schema.serialize import schema_from_dict, schema_to_dict
from repro.schema.table import Table
from repro.testenv.metrics import evaluate_audit

__all__ = ["main", "build_parser"]

_FORMAT_NAMES = tuple(spec.name for spec in available_formats())
#: findings formats that can be written to stdout (text streams)
_STDOUT_FORMATS = ("jsonl",)
#: environment fallback for every --registry flag
_REGISTRY_ENV = "REPRO_REGISTRY"


def _registry_default() -> Optional[str]:
    return os.environ.get(_REGISTRY_ENV) or None


def _open_registry(registry_dir: Optional[str], *, flag: str = "--registry"):
    """A :class:`~repro.registry.ModelRegistry` for a CLI flag value, or a
    clear error when neither the flag nor ``$REPRO_REGISTRY`` is set."""
    from repro.registry import ModelRegistry

    if not registry_dir:
        raise SystemExit(
            f"error: this command needs a model registry; pass {flag} DIR "
            f"or set ${_REGISTRY_ENV}"
        )
    return ModelRegistry(registry_dir)


def _resolve_format(location: str, override: Optional[str]) -> str:
    """The registry format for a CLI table argument.

    Explicit ``--*-format`` wins; otherwise the extension/URI decides;
    unrecognized names keep the historical CSV behavior.
    """
    if override:
        return override
    try:
        return detect_format(location)
    except ValueError:
        return "csv"


def _table_options(fmt: str, null_marker: Optional[str]) -> dict:
    """Per-format open options (the null marker only means something to CSV)."""
    if fmt == "csv" and null_marker is not None:
        return {"null_marker": null_marker}
    return {}


def _open_input(schema, location: str, override: Optional[str], null_marker: Optional[str] = None):
    fmt = _resolve_format(location, override)
    return open_source(schema, location, format=fmt, **_table_options(fmt, null_marker))


def _read_input(
    schema,
    location: str,
    override: Optional[str],
    null_marker: Optional[str] = None,
    io_path: str = "rows",
):
    """Materialize a CLI table argument.

    ``io_path="columns"`` (or ``"auto"`` on a columnar-capable backend)
    returns the backend's native :class:`~repro.io.ColumnBatch` instead
    of a row-major :class:`Table` — fit and audit accept either with
    byte-identical results.
    """
    with _open_input(schema, location, override, null_marker) as source:
        if resolve_io_path(source, io_path) == "columns":
            return source.read_columns()
        return source.read()


def _write_output(table: Table, location: str, override: Optional[str], null_marker: Optional[str] = None) -> None:
    fmt = _resolve_format(location, override)
    with open_sink(table.schema, location, format=fmt, **_table_options(fmt, null_marker)) as sink:
        sink.write(table)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (one subcommand per pipeline stage)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Data auditing tools (VLDB 2003 reproduction): "
        "generate, pollute, fit, audit, evaluate.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_schema = sub.add_parser("schema", help="write a schema JSON")
    p_schema.add_argument("--kind", choices=("base", "quis"), default="base")
    p_schema.add_argument("--out", required=True, type=Path)

    p_generate = sub.add_parser("generate", help="generate artificial test data")
    p_generate.add_argument("--records", type=int, default=5000)
    p_generate.add_argument("--rules", type=int, default=100)
    p_generate.add_argument("--seed", type=int, default=42)
    p_generate.add_argument("--data-seed", type=int, default=1)
    p_generate.add_argument(
        "--out",
        required=True,
        help="output table (any registered format, inferred from the extension)",
    )
    p_generate.add_argument(
        "--output-format",
        choices=_FORMAT_NAMES,
        help="force the output format instead of inferring it from --out",
    )
    p_generate.add_argument("--schema-out", type=Path)
    p_generate.add_argument(
        "--schema",
        type=Path,
        help="generate against this schema JSON instead of the base profile "
        "(requires --rules-file)",
    )
    p_generate.add_argument(
        "--rules-file",
        type=Path,
        help="text file with one TDG-rule per line "
        "(e.g. \"BRV = '404' -> GBM = '901'\"); used with --schema",
    )

    p_pollute = sub.add_parser("pollute", help="apply controlled corruption")
    p_pollute.add_argument("--schema", required=True, type=Path)
    p_pollute.add_argument("--input", required=True, help="clean table (any format)")
    p_pollute.add_argument("--output", required=True, help="dirty table (any format)")
    p_pollute.add_argument(
        "--input-format", choices=_FORMAT_NAMES, help="force the input format"
    )
    p_pollute.add_argument(
        "--output-format", choices=_FORMAT_NAMES, help="force the output format"
    )
    p_pollute.add_argument(
        "--null-marker",
        default="",
        help="CSV text standing for null on both ends (default: empty field)",
    )
    p_pollute.add_argument("--log-out", type=Path)
    p_pollute.add_argument("--factor", type=float, default=1.0)
    p_pollute.add_argument("--seed", type=int, default=2)

    p_fit = sub.add_parser("fit", help="induce and persist the structure model")
    p_fit.add_argument("--schema", required=True, type=Path)
    p_fit.add_argument("--input", required=True, help="training table (any format)")
    p_fit.add_argument(
        "--input-format", choices=_FORMAT_NAMES, help="force the input format"
    )
    p_fit.add_argument(
        "--null-marker",
        default="",
        help="CSV text standing for null (default: empty field)",
    )
    p_fit.add_argument(
        "--model-out",
        type=Path,
        help="write the fitted model to this JSON file "
        "(and/or register it with --register)",
    )
    p_fit.add_argument("--min-confidence", type=float, default=0.8)
    p_fit.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for structure induction — one attribute's "
        "classifier per task (default 1 = serial; -1 = all cores); the "
        "fitted model is byte-identical regardless of job count",
    )
    p_fit.add_argument(
        "--fit-path",
        choices=("columns", "rows"),
        default="columns",
        help="encoding path for fitting: 'columns' (vectorized NumPy "
        "column encoding, the default) or 'rows' (legacy per-cell path, "
        "kept as the parity oracle); both produce byte-identical models",
    )
    p_fit.add_argument(
        "--io-path",
        choices=IO_PATHS,
        default="auto",
        help="ingest representation: 'columns' reads the backend's native "
        "column batches (no row objects on the hot path), 'rows' reads a "
        "row-major table, 'auto' (default) picks columns whenever the "
        "backend supports them; models are byte-identical either way",
    )
    p_fit.add_argument(
        "--register",
        metavar="NAME",
        help="store the fitted model as the next version of NAME in the "
        "registry (records provenance: schema hash, training source, "
        "config, row count, fit time)",
    )
    p_fit.add_argument(
        "--registry",
        default=_registry_default(),
        help=f"registry directory for --register (default: ${_REGISTRY_ENV})",
    )

    p_audit = sub.add_parser("audit", help="detect deviations with a fitted model")
    p_audit.add_argument(
        "--model",
        required=True,
        help="a model JSON file, or a registry reference such as "
        "loads, loads@v3, loads@latest, or loads@<tag> (needs --registry)",
    )
    p_audit.add_argument(
        "--registry",
        default=_registry_default(),
        help=f"registry directory for registry --model references "
        f"(default: ${_REGISTRY_ENV})",
    )
    p_audit.add_argument(
        "--input",
        required=True,
        help="table to audit (any registered format, e.g. load.csv, "
        "events.jsonl, warehouse.db, sqlite:///wh.db?table=loads)",
    )
    p_audit.add_argument(
        "--input-format", choices=_FORMAT_NAMES, help="force the input format"
    )
    p_audit.add_argument(
        "--null-marker",
        default="",
        help="CSV text standing for null (default: empty field)",
    )
    p_audit.add_argument(
        "--findings-out", help="write all findings to this table (any format)"
    )
    p_audit.add_argument("--top", type=int, default=10)
    p_audit.add_argument(
        "--chunk-size",
        type=int,
        help="stream the input in chunks of this many rows (bounded memory)",
    )
    p_audit.add_argument(
        "--format",
        choices=_FORMAT_NAMES,
        help="findings output format (default: inferred from --findings-out, "
        "csv if unrecognized); jsonl without --findings-out writes one "
        "JSON object per finding to stdout",
    )
    p_audit.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the deviation check (default 1 = serial; "
        "-1 = all cores); output is identical regardless of job count",
    )
    p_audit.add_argument(
        "--io-path",
        choices=IO_PATHS,
        default="auto",
        help="ingest representation: 'columns' streams the backend's native "
        "column batches into the audit, 'rows' streams row-major chunks, "
        "'auto' (default) picks columns whenever the backend supports "
        "them; findings are byte-identical either way",
    )
    p_audit.add_argument(
        "--engine",
        choices=("memory", "sql"),
        default="memory",
        help="execution engine: 'memory' extracts and audits in-process "
        "(default); 'sql' compiles the fitted model to SQL and screens "
        "deviations inside the SQLite --input itself — same ranked "
        "findings, with a one-line notice and clean fallback to memory "
        "when the input is not SQLite or the model (e.g. kNN) has no "
        "SQL form",
    )

    p_evaluate = sub.add_parser(
        "evaluate", help="sec. 4.3 metrics against a pollution log"
    )
    p_evaluate.add_argument("--schema", required=True, type=Path)
    p_evaluate.add_argument("--clean", required=True, help="pre-pollution table")
    p_evaluate.add_argument("--dirty", required=True, help="polluted table")
    p_evaluate.add_argument(
        "--input-format",
        choices=_FORMAT_NAMES,
        help="force the format of --clean and --dirty",
    )
    p_evaluate.add_argument("--log", required=True, type=Path)
    p_evaluate.add_argument("--model", required=True, type=Path)

    p_models = sub.add_parser(
        "models", help="inspect and manage the versioned model registry"
    )
    p_models.add_argument(
        "--registry",
        default=_registry_default(),
        help=f"registry directory (default: ${_REGISTRY_ENV})",
    )
    models_sub = p_models.add_subparsers(dest="models_command", required=True)
    models_sub.add_parser("list", help="all registered names with versions/tags")
    p_models_show = models_sub.add_parser(
        "show", help="one resolved version with full provenance"
    )
    p_models_show.add_argument("ref", help="name, name@vN, name@latest, name@tag")
    p_models_tag = models_sub.add_parser(
        "tag", help="point a tag at a version (e.g. pin prod to loads@v3)"
    )
    p_models_tag.add_argument("ref", help="the version to tag (name[@ref])")
    p_models_tag.add_argument("tag", help="the tag to (re)point")
    p_models_rm = models_sub.add_parser(
        "rm", help="remove one version (name@ref) or a whole name"
    )
    p_models_rm.add_argument("ref", help="name or name@ref to remove")

    p_monitor = sub.add_parser(
        "monitor", help="continuously audit a growing table (tail + drift + refit)"
    )
    p_monitor.add_argument(
        "source",
        help="growing table to tail: a CSV/JSONL path being appended to, a "
        "SQLite database, or sqlite:///wh.db?table=loads",
    )
    p_monitor.add_argument(
        "--model",
        required=True,
        help="a model JSON file or a registry reference (name@v3, name@latest)",
    )
    p_monitor.add_argument(
        "--registry",
        default=_registry_default(),
        help=f"registry directory for registry --model references and "
        f"--refit auto (default: ${_REGISTRY_ENV})",
    )
    p_monitor.add_argument(
        "--input-format",
        choices=("csv", "jsonl", "sqlite"),
        help="force the source format instead of inferring it",
    )
    p_monitor.add_argument(
        "--null-marker",
        default="",
        help="CSV text standing for null (default: empty field)",
    )
    p_monitor.add_argument(
        "--state",
        type=Path,
        help="watermark state file; resuming with the same --state continues "
        "exactly where the previous run stopped "
        "(default: FINDINGS_OUT + '.state')",
    )
    p_monitor.add_argument(
        "--findings-out",
        type=Path,
        help="durable findings JSONL, appended window by window "
        "(default: SOURCE + '.findings.jsonl'; required for sqlite sources)",
    )
    p_monitor.add_argument(
        "--ranked-out",
        help="after a catch-up run, also write the globally ranked findings "
        "(any format) — byte-identical to 'repro audit' of the same rows",
    )
    p_monitor.add_argument(
        "--follow",
        action="store_true",
        help="keep polling for appended rows until SIGTERM/Ctrl-C "
        "(default: catch up with the source and exit)",
    )
    p_monitor.add_argument("--poll-interval", type=float, default=1.0)
    p_monitor.add_argument(
        "--window-rows",
        type=int,
        default=256,
        help="rows per audit window — the commit/drift granularity "
        "(default 256)",
    )
    p_monitor.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per window audit (default 1 = serial)",
    )
    p_monitor.add_argument(
        "--drift-threshold",
        type=float,
        default=0.0,
        help="extra Wilson-interval separation (in finding-rate units) a "
        "window must show before it counts as drifted (default 0)",
    )
    p_monitor.add_argument(
        "--drift-confidence",
        type=float,
        default=0.95,
        help="confidence level of the drift intervals (default 0.95)",
    )
    p_monitor.add_argument(
        "--baseline-windows",
        type=int,
        default=3,
        help="windows that establish the per-attribute baseline rate",
    )
    p_monitor.add_argument(
        "--sustain-windows",
        type=int,
        default=2,
        help="consecutive drifted windows before the drift event fires",
    )
    p_monitor.add_argument(
        "--refit",
        choices=("off", "recommend", "auto"),
        default="off",
        help="response to sustained drift: log only, record a recommendation, "
        "or refit on recent rows and register the new version (moves "
        "@latest; needs --registry and a registry --model or --refit-name)",
    )
    p_monitor.add_argument(
        "--refit-name",
        help="registry name auto-refits register under "
        "(default: the name part of a registry --model reference)",
    )
    p_monitor.add_argument(
        "--refit-rows",
        type=int,
        default=4096,
        help="recent rows buffered as the auto-refit training set",
    )

    p_serve = sub.add_parser(
        "serve", help="run the long-running audit service daemon (HTTP)"
    )
    p_serve.add_argument(
        "--registry",
        default=_registry_default(),
        help=f"model registry directory backing the service "
        f"(default: ${_REGISTRY_ENV})",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=8181,
        help="listen port (0 picks an ephemeral port, printed at start-up)",
    )
    p_serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="default worker processes per audit request (requests may "
        "override per call); 1 = serial, -1 = all cores",
    )

    return parser


def _load_schema(path: Path):
    with open(path, "r", encoding="utf-8") as handle:
        return schema_from_dict(json.load(handle))


def _cmd_schema(args: argparse.Namespace) -> int:
    schema = quis_schema() if args.kind == "quis" else base_schema()
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(schema_to_dict(schema), handle, indent=2)
    print(f"wrote {args.kind} schema ({len(schema)} attributes) to {args.out}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if (args.schema is None) != (args.rules_file is None):
        raise SystemExit("--schema and --rules-file must be used together")
    if args.schema is not None:
        from repro.generator.datagen import TestDataGenerator
        from repro.logic.parse import parse_rules

        schema = _load_schema(args.schema)
        rules = parse_rules(args.rules_file.read_text(encoding="utf-8"), schema)
        generator = TestDataGenerator(schema, rules)
        n_rules = len(rules)
        out_schema = schema
    else:
        profile = base_profile(n_rules=args.rules, seed=args.seed)
        generator = profile.build_generator()
        n_rules = len(profile.rules)
        out_schema = profile.schema
    table = generator.generate(args.records, random.Random(args.data_seed))
    _write_output(table, args.out, args.output_format)
    print(f"generated {table.n_rows} records over {n_rules} rules to {args.out}")
    if args.schema_out:
        with open(args.schema_out, "w", encoding="utf-8") as handle:
            json.dump(schema_to_dict(out_schema), handle, indent=2)
        print(f"wrote schema to {args.schema_out}")
    return 0


def _cmd_pollute(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    table = _read_input(schema, args.input, args.input_format, args.null_marker)
    pipeline = PollutionPipeline(default_polluters(), factor=args.factor)
    dirty, log = pipeline.apply(table, random.Random(args.seed))
    _write_output(dirty, args.output, args.output_format, args.null_marker)
    print(
        f"polluted {table.n_rows} → {dirty.n_rows} records "
        f"({log.n_cell_changes} cell changes, {log.n_duplicated} duplicates, "
        f"{log.n_deleted} deletions) to {args.output}"
    )
    if args.log_out:
        with open(args.log_out, "w", encoding="utf-8") as handle:
            json.dump(log.to_dict(), handle)
        print(f"wrote ground-truth log to {args.log_out}")
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    if args.jobs == 0:
        raise SystemExit("error: --jobs must not be 0 (use 1 for serial, -1 for all cores)")
    if args.model_out is None and args.register is None:
        raise SystemExit(
            "error: pass --model-out FILE, --register NAME, or both — "
            "a fit with neither destination would be discarded"
        )
    schema = _load_schema(args.schema)
    table = _read_input(
        schema, args.input, args.input_format, args.null_marker, io_path=args.io_path
    )
    auditor = DataAuditor(
        schema,
        AuditorConfig(
            min_error_confidence=args.min_confidence,
            fit_n_jobs=args.jobs,
            fit_path=args.fit_path,
        ),
    )
    auditor.fit(table)
    if args.model_out is not None:
        save_auditor(auditor, args.model_out)
        print(
            f"induced structure model from {table.n_rows} records "
            f"in {auditor.fit_seconds:.1f}s → {args.model_out}"
        )
    if args.register is not None:
        from repro.registry import Provenance, RegistryError

        registry = _open_registry(args.registry)
        try:
            version = registry.put(
                auditor,
                args.register,
                provenance=Provenance(
                    source=str(args.input),
                    source_format=_resolve_format(args.input, args.input_format),
                    config={
                        "min_error_confidence": args.min_confidence,
                        "fit_n_jobs": args.jobs,
                        "fit_path": args.fit_path,
                        "io_path": args.io_path,
                    },
                    n_rows=table.n_rows,
                    fit_seconds=auditor.fit_seconds,
                ),
            )
        except RegistryError as exc:
            raise SystemExit(f"error: {exc}") from exc
        print(
            f"registered {version.ref} (digest {version.digest[:12]}) "
            f"in {registry.root}"
        )
    return 0


def _load_model(path, registry_dir: Optional[str] = None) -> DataAuditor:
    """Load a persisted auditor, turning the many ways a model file can be
    broken (missing, not JSON, wrong format, truncated payload, unfitted)
    into one clear CLI error instead of a traceback. The translation
    itself lives in :meth:`AuditSession.load
    <repro.core.session.AuditSession.load>`, so parallel-mode model
    configs get the same one-line errors everywhere.

    A *path* containing ``@`` is a registry reference (``name@v3``) and
    resolves through the :mod:`repro.registry` store named by
    *registry_dir* / ``$REPRO_REGISTRY``; a bare name also falls through
    to the registry when it is not a file on disk but a registry is
    configured."""
    text = str(path)
    use_registry = "@" in text or (
        registry_dir is not None and not Path(text).exists()
    )
    try:
        if use_registry:
            registry = _open_registry(registry_dir)
            return AuditSession.load_from_registry(registry, text).auditor
        return AuditSession.load(path).auditor
    except ModelPersistenceError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _write_findings(findings: list[Finding], args: argparse.Namespace) -> None:
    """Findings leave through the same :class:`TableSink` layer as data
    tables — one code path whether they land in CSV, JSONL, a SQLite
    table, or (jsonl only) on stdout."""
    table = findings_to_table(findings)
    if args.findings_out:
        _write_output(table, args.findings_out, args.format)
        print(f"wrote all findings to {args.findings_out}")
    elif args.format == "jsonl":
        with JsonlTableSink(table.schema, sys.stdout) as sink:
            sink.write(table)


def _cmd_audit(args: argparse.Namespace) -> int:
    # flag validation first — don't pay a model load to report a bad flag
    if args.jobs == 0:
        raise SystemExit("error: --jobs must not be 0 (use 1 for serial, -1 for all cores)")
    if args.chunk_size is not None and args.chunk_size < 1:
        raise SystemExit("error: --chunk-size must be at least 1")
    # without --findings-out, jsonl streams to stdout and csv (the
    # historical default) is a no-op — only the file-only formats need
    # the output path
    if (
        args.format is not None
        and args.format not in ("csv",) + _STDOUT_FORMATS
        and not args.findings_out
    ):
        raise SystemExit(
            f"error: --format {args.format} needs --findings-out "
            f"(only {', '.join(_STDOUT_FORMATS)} can stream to stdout)"
        )
    auditor = _load_model(args.model, args.registry)
    quiet = args.format == "jsonl" and not args.findings_out
    # engine selection: 'sql' holds only when the input is SQLite AND
    # every audited attribute's model compiles — otherwise print the
    # one-line notice and audit in memory (identical findings either way)
    engine = args.engine
    if engine == "sql":
        from repro.compile import compilation_plan

        if _resolve_format(args.input, args.input_format) != "sqlite":
            print(
                "note: --engine sql needs a SQLite --input; auditing in memory",
                file=sys.stderr,
            )
            engine = "memory"
        else:
            plan = compilation_plan(auditor)
            if not plan.compilable:
                print(f"note: {plan.notice()}", file=sys.stderr)
                engine = "memory"
    if args.chunk_size is not None:
        # keep only the findings across chunks (the output), never the
        # per-row confidences — peak memory must not grow with row count
        session = AuditSession(auditor=auditor)
        collected: list[Finding] = []
        n_rows = 0
        n_chunks = 0

        def _consume(chunk_reports) -> None:
            nonlocal n_rows, n_chunks
            for chunk_report in chunk_reports:
                n_chunks += 1
                n_rows += chunk_report.n_rows
                collected.extend(chunk_report.findings)
                if not quiet:
                    print(
                        f"  chunk {n_chunks}: {chunk_report.n_rows} records, "
                        f"{chunk_report.n_suspicious} suspicious"
                    )

        if engine == "sql":
            # hand the raw location through so the session can push the
            # audit into the database (one whole-table report) instead
            # of opening an extraction stream
            _consume(
                session.audit_source(
                    args.input,
                    chunk_size=args.chunk_size,
                    n_jobs=args.jobs,
                    engine="sql",
                )
            )
        else:
            with _open_input(
                auditor.schema, args.input, args.input_format, args.null_marker
            ) as source:
                _consume(
                    session.audit_source(
                        source,
                        chunk_size=args.chunk_size,
                        n_jobs=args.jobs,
                        io_path=args.io_path,
                    )
                )
        findings = sorted(collected, key=lambda f: (-f.confidence, f.row, f.attribute))
    else:
        report = None
        if engine == "sql":
            from repro.compile import NotCompilable, audit_sqlite, sqlite_location

            database, sql_table = sqlite_location(args.input) or (args.input, None)
            try:
                report = audit_sqlite(auditor, database, table=sql_table)
            except NotCompilable as exc:
                print(f"note: {exc}; auditing in memory", file=sys.stderr)
        if report is None:
            table = _read_input(
                auditor.schema,
                args.input,
                args.input_format,
                args.null_marker,
                io_path=args.io_path,
            )
            report = auditor.audit(table, n_jobs=args.jobs)
        findings = report.findings
        n_rows = report.n_rows
    n_suspicious = len({finding.row for finding in findings})
    if not quiet:
        print(
            f"audited {n_rows} records: {n_suspicious} suspicious, "
            f"{len(findings)} findings at ≥ "
            f"{auditor.config.min_error_confidence:.0%} confidence"
        )
        for finding in findings[: args.top]:
            print(f"  {finding.describe()}")
    _write_findings(findings, args)
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    schema = _load_schema(args.schema)
    clean = _read_input(schema, args.clean, args.input_format)
    dirty = _read_input(schema, args.dirty, args.input_format)
    with open(args.log, "r", encoding="utf-8") as handle:
        log = PollutionLog.from_dict(json.load(handle))
    auditor = _load_model(args.model)
    report = auditor.audit(dirty)
    result = evaluate_audit(report, log, clean, dirty)
    print(result.records.to_table())
    print()
    print(result.summary())
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    from repro.registry import RegistryError

    registry = _open_registry(args.registry)
    try:
        if args.models_command == "list":
            names = registry.list()
            if not names:
                print(f"registry {registry.root} holds no models")
                return 0
            print(f"{'NAME':20} {'VERSIONS':>8}  {'LATEST':24} TAGS")
            for name in names:
                versions = registry.versions(name)
                latest = versions[-1]
                tags = ", ".join(
                    f"{t}→v{v}" for t, v in sorted(registry.tags(name).items())
                )
                print(
                    f"{name:20} {len(versions):>8}  "
                    f"{latest.digest[:12] + ' ' + latest.provenance.created_at:24} "
                    f"{tags}"
                )
        elif args.models_command == "show":
            version = registry.resolve(args.ref)
            print(json.dumps(
                {
                    "name": version.name,
                    "version": version.version,
                    "ref": version.ref,
                    "digest": version.digest,
                    "provenance": version.provenance.to_dict(),
                },
                indent=2,
            ))
        elif args.models_command == "tag":
            version = registry.tag(args.ref, args.tag)
            print(f"tagged {version.ref} as {version.name}@{args.tag}")
        elif args.models_command == "rm":
            removed = registry.delete(args.ref)
            print(f"removed {removed} version(s) of {args.ref}")
    except RegistryError as exc:
        raise SystemExit(f"error: {exc}") from exc
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.monitor.drift import DriftConfig
    from repro.monitor.refit import RefitPolicy
    from repro.registry import RegistryError

    # findings JSONL and stdout are the output; progress and drift events
    # go to stderr through the repro.monitor logger
    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )

    # resolve the model — a registry reference also names the default
    # refit target and the concrete version recorded in the watermark
    text = str(args.model)
    use_registry = "@" in text or (
        args.registry is not None and not Path(text).exists()
    )
    registry = None
    model_name = None
    try:
        if use_registry:
            registry = _open_registry(args.registry)
            version = registry.resolve(text)
            session = AuditSession(auditor=registry.get_version(version))
            model_ref = version.ref
            model_name = version.name
        else:
            session = AuditSession.load(args.model)
            model_ref = text
    except (ModelPersistenceError, RegistryError) as exc:
        raise SystemExit(f"error: {exc}") from exc

    findings_path = args.findings_out
    if findings_path is None:
        if str(args.source).startswith("sqlite:") or args.input_format == "sqlite":
            raise SystemExit(
                "error: --findings-out is required for SQLite sources "
                "(there is no file path to derive it from)"
            )
        findings_path = Path(str(args.source) + ".findings.jsonl")
    state_path = args.state or Path(str(findings_path) + ".state")

    try:
        drift = DriftConfig(
            confidence=args.drift_confidence,
            threshold=args.drift_threshold,
            baseline_windows=args.baseline_windows,
            sustain_windows=args.sustain_windows,
        )
        if args.refit == "auto" and registry is None:
            registry = _open_registry(args.registry)
        refit_name = args.refit_name or model_name
        if args.refit == "auto" and not refit_name:
            raise SystemExit(
                "error: --refit auto needs --refit-name (or a registry "
                "--model reference to take the name from)"
            )
        refit = RefitPolicy(
            args.refit,
            registry=registry if args.refit == "auto" else None,
            model_name=refit_name,
            refit_rows=args.refit_rows,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc

    def _emit(text_block: str) -> None:
        sys.stdout.write(text_block)
        sys.stdout.flush()

    try:
        watcher = session.monitor(
            args.source,
            state_path=state_path,
            findings_path=findings_path,
            format=args.input_format,
            null_marker=args.null_marker,
            window_rows=args.window_rows,
            poll_interval=args.poll_interval,
            n_jobs=args.jobs,
            drift=drift,
            refit=refit,
            model_ref=model_ref,
            emit=_emit,
        )
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from exc

    try:
        if args.follow:
            stop = threading.Event()

            def _terminate(signum: int, frame) -> None:
                stop.set()

            previous = signal.signal(signal.SIGTERM, _terminate)
            try:
                report = watcher.run(follow=True, stop=stop)
            finally:
                signal.signal(signal.SIGTERM, previous)
        else:
            report = watcher.run()
        status = watcher.status()
        print(
            f"monitored {status['rows']} rows in {status['windows']} windows: "
            f"{status['suspicious']} suspicious, {status['findings']} findings "
            f"(model {status['model']}, state {state_path})",
            file=sys.stderr,
        )
        if args.ranked_out:
            _write_output(
                findings_to_table(report.ranked_findings()), args.ranked_out, None
            )
            print(f"wrote ranked findings to {args.ranked_out}", file=sys.stderr)
    finally:
        watcher.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import serve

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    registry = _open_registry(args.registry)
    return serve(registry, args.host, args.port, n_jobs=args.jobs)


_COMMANDS = {
    "schema": _cmd_schema,
    "generate": _cmd_generate,
    "pollute": _cmd_pollute,
    "fit": _cmd_fit,
    "audit": _cmd_audit,
    "evaluate": _cmd_evaluate,
    "models": _cmd_models,
    "monitor": _cmd_monitor,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Interactive failure modes exit cleanly instead of with a traceback:
    Ctrl-C returns 130 (the shell convention for SIGINT) and a
    downstream consumer closing the pipe early (``repro audit … |
    head``) returns 0 — the truncation was the consumer's choice, not
    an error.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # stdout is gone; stop Python's exit-time flush from raising a
        # second (noisy) BrokenPipeError by pointing the fd at /dev/null
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        except (OSError, ValueError, AttributeError):
            pass  # stdout is not a real fd (test harness); nothing to silence
        return 0


if __name__ == "__main__":
    sys.exit(main())
