"""Abstract base class of TDG-formulae.

The test-data-generator logic (paper sec. 4.1.1) defines *TDG-formulae*
inductively: atomic formulas (Def. 1) closed under finite conjunction and
disjunction (Def. 2). There is deliberately **no negation connective**; the
paper instead associates a *TDG-negation* ``α̃`` with every formula
(Table 1, implemented in :mod:`repro.logic.negation`).

Evaluation semantics on records with nulls: every atom except ``isnull`` /
``isnotnull`` evaluates to *false* when an operand is null. (This is forced
by Table 1, e.g. the negation of ``A = a`` is ``A ≠ a ∨ A isnull``.)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Mapping

from repro.schema.types import Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.schema.schema import Schema

__all__ = ["Formula"]


class Formula(ABC):
    """A TDG-formula (atomic, conjunction, or disjunction)."""

    __slots__ = ()

    @abstractmethod
    def evaluate(self, record: Mapping[str, Value]) -> bool:
        """Evaluate this formula on a record (mapping attribute → value)."""

    @abstractmethod
    def attributes(self) -> frozenset[str]:
        """The set of attribute names occurring in this formula."""

    @abstractmethod
    def validate(self, schema: "Schema") -> None:
        """Raise ``ValueError`` if this formula is ill-typed for *schema*.

        Checks attribute existence, operand kinds (ordering atoms need
        ordered attributes, Def. 1 restricts ``<``/``>`` to numerical
        attributes — we additionally admit dates), and that constants lie
        in the attribute's domain.
        """

    @property
    def is_atomic(self) -> bool:
        """Whether this formula is an atomic TDG-formula."""
        return False

    # Formulas are immutable value objects; concrete classes implement
    # __eq__ / __hash__ over their fields so rule generators can
    # deduplicate and tests can compare structurally.
