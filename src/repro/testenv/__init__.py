"""The test environment (paper sec. 4, fig. 2): metrics, the
generate→pollute→audit→evaluate pipeline, the figure sweeps, and the
fig.-1 calibration loop."""

from repro.testenv.artifacts import (
    load_experiment_tables,
    save_experiment_artifacts,
)
from repro.testenv.calibration import (
    CalibrationOutcome,
    Candidate,
    calibrate,
    default_candidates,
)
from repro.testenv.experiment import (
    ExperimentConfig,
    ExperimentResult,
    TestEnvironment,
    run_experiment,
)
from repro.testenv.metrics import (
    ConfusionMatrix,
    CorrectionMatrix,
    EvaluationResult,
    evaluate_audit,
)
from repro.testenv.streams import quis_regime_stream
from repro.testenv.sweeps import (
    SweepPoint,
    format_series,
    sweep_pollution_factor,
    sweep_records,
    sweep_rules,
)

__all__ = [
    "ConfusionMatrix",
    "CorrectionMatrix",
    "EvaluationResult",
    "evaluate_audit",
    "ExperimentConfig",
    "ExperimentResult",
    "TestEnvironment",
    "run_experiment",
    "SweepPoint",
    "sweep_records",
    "sweep_rules",
    "sweep_pollution_factor",
    "format_series",
    "Candidate",
    "CalibrationOutcome",
    "calibrate",
    "default_candidates",
    "save_experiment_artifacts",
    "load_experiment_tables",
    "quis_regime_stream",
]
