"""Tests for the fig.-2 experiment pipeline, sweeps, and calibration."""

import dataclasses

import pytest

from repro.core import AuditorConfig
from repro.testenv import (
    Candidate,
    ExperimentConfig,
    TestEnvironment,
    calibrate,
    format_series,
    run_experiment,
    sweep_pollution_factor,
    sweep_records,
    sweep_rules,
)

#: small but non-trivial settings keeping the whole module < ~1 min
SMALL = ExperimentConfig(n_records=800, n_rules=25, profile_seed=5, data_seed=6)


@pytest.fixture(scope="module")
def small_result():
    return run_experiment(SMALL)


class TestRunExperiment:
    def test_pipeline_produces_consistent_tables(self, small_result):
        result = small_result
        assert result.clean.n_rows == SMALL.n_records
        # duplicator may add/remove rows
        assert abs(result.dirty.n_rows - result.clean.n_rows) <= 50
        assert result.log.row_origins is not None

    def test_some_corruption_and_detection(self, small_result):
        result = small_result
        assert result.log.n_cell_changes > 0
        assert 0.0 <= result.sensitivity <= 1.0
        assert result.specificity > 0.9

    def test_timings_recorded(self, small_result):
        result = small_result
        assert result.generate_seconds > 0
        assert result.fit_seconds > 0
        assert result.audit_seconds > 0

    def test_summary_readable(self, small_result):
        text = result = small_result.summary()
        assert "sensitivity=" in text and "specificity=" in text

    def test_deterministic_in_seeds(self):
        first = run_experiment(SMALL)
        second = run_experiment(SMALL)
        assert first.sensitivity == second.sensitivity
        assert first.log.n_cell_changes == second.log.n_cell_changes


class TestEnvironmentCaching:
    def test_profile_cache_reused(self):
        environment = TestEnvironment()
        p1 = environment.profile_for(10, 3)
        p2 = environment.profile_for(10, 3)
        assert p1 is p2
        assert environment.profile_for(11, 3) is not p1


class TestSweeps:
    def test_record_sweep_varies_only_records(self):
        environment = TestEnvironment()
        points = sweep_records([300, 600], base=SMALL, environment=environment)
        assert [x for x, _ in points] == [300.0, 600.0]
        assert points[0][1].clean.n_rows == 300
        assert points[1][1].clean.n_rows == 600

    def test_rule_sweep_zero_rules_supported(self):
        environment = TestEnvironment()
        points = sweep_rules([0], base=dataclasses.replace(SMALL, n_records=300), environment=environment)
        (x, result), = points
        assert x == 0.0
        # with no rules there is no structure: (almost) nothing detectable
        assert result.sensitivity <= 0.2

    def test_factor_sweep_increases_corruption(self):
        environment = TestEnvironment()
        points = sweep_pollution_factor([0.5, 3.0], base=SMALL, environment=environment)
        low, high = points[0][1], points[1][1]
        assert high.log.n_cell_changes > low.log.n_cell_changes

    def test_format_series(self):
        environment = TestEnvironment()
        points = sweep_records([300], base=SMALL, environment=environment)
        text = format_series("Figure 3", "records", points)
        assert "Figure 3" in text and "sensitivity" in text
        assert "300" in text


class TestCalibration:
    def test_ranks_candidates(self):
        candidates = [
            Candidate("strict", AuditorConfig(min_error_confidence=0.95)),
            Candidate("lenient", AuditorConfig(min_error_confidence=0.6)),
        ]
        outcomes = calibrate(candidates, base=SMALL, specificity_floor=0.9)
        assert len(outcomes) == 2
        assert outcomes[0].specificity >= 0.9
        names = {o.candidate.name for o in outcomes}
        assert names == {"strict", "lenient"}

    def test_custom_score(self):
        candidates = [
            Candidate("a", AuditorConfig(min_error_confidence=0.9)),
            Candidate("b", AuditorConfig(min_error_confidence=0.8)),
        ]
        outcomes = calibrate(
            candidates,
            base=SMALL,
            score=lambda outcome: 1.0 if outcome.candidate.name == "b" else 0.0,
        )
        assert outcomes[0].candidate.name == "b"

    def test_summary(self):
        candidates = [Candidate("only", AuditorConfig())]
        (outcome,) = calibrate(candidates, base=SMALL)
        assert "only" in outcome.summary()


class TestModelPinning:
    """Registering an experiment's model and re-running against the
    pinned registry version (the reproducibility hand-over)."""

    def test_register_then_pin_reproduces_the_audit(self, tmp_path):
        env = TestEnvironment()
        registered = env.run(
            dataclasses.replace(
                SMALL,
                registry_dir=str(tmp_path / "registry"),
                register_model_as="bench",
            )
        )
        pinned = env.run(
            dataclasses.replace(
                SMALL,
                registry_dir=str(tmp_path / "registry"),
                model_ref="bench@v1",
            )
        )
        # same data + the exact registered model → the identical audit
        assert pinned.fit_seconds == 0.0
        assert pinned.report.findings == registered.report.findings
        assert pinned.evaluation.sensitivity == registered.evaluation.sensitivity

    def test_registered_provenance_names_the_experiment(self, tmp_path):
        from repro.registry import ModelRegistry

        TestEnvironment().run(
            dataclasses.replace(
                SMALL,
                registry_dir=str(tmp_path / "registry"),
                register_model_as="bench",
            )
        )
        version = ModelRegistry(tmp_path / "registry").resolve("bench@latest")
        assert version.provenance.source.startswith("testenv://experiment/")
        assert version.provenance.schema_hash
        assert version.provenance.n_rows and version.provenance.fit_seconds

    def test_pinning_requires_a_registry(self):
        with pytest.raises(ValueError, match="registry_dir"):
            TestEnvironment().run(dataclasses.replace(SMALL, model_ref="bench"))
        with pytest.raises(ValueError, match="registry_dir"):
            TestEnvironment().run(
                dataclasses.replace(SMALL, register_model_as="bench")
            )

    def test_pinned_model_must_match_the_profile_schema(self, tmp_path):
        from repro.core import AuditSession
        from repro.schema import Schema, Table, nominal

        schema = Schema([nominal("X", ["p", "q"])])
        other = AuditSession(schema).fit(
            Table(schema, [["p"]] * 40 + [["q"]] * 40)
        )
        other.save_to_registry(tmp_path / "registry", "alien")
        with pytest.raises(ValueError, match="different schema"):
            TestEnvironment().run(
                dataclasses.replace(
                    SMALL,
                    registry_dir=str(tmp_path / "registry"),
                    model_ref="alien",
                )
            )
