"""E15 — stream monitor throughput and drift-detection latency.

The continuous monitor (`repro monitor`) is the deployed form of the
paper's repeated-audit loop: the same model, applied to a growing load
stream, forever. Two operational numbers decide whether that loop can
sit in a nightly warehouse pipeline:

* **sustained throughput** — rows/s through a catch-up monitor run
  (tail-read, windowed audit, findings JSONL append + fsync, watermark
  replace — the full durable path), compared against the in-process
  one-shot ``AuditSession.audit`` on the same rows, which bounds what
  the durability machinery costs;
* **drift-detection latency** — a QUIS stream whose pollution rate
  steps from 0.4% to 8% mid-stream; how many windows (and rows) after
  the step does the Wilson-interval tracker raise its first
  recommendation?

The parity guarantee is asserted here too: the monitor's cumulative
ranked findings must be byte-identical to the one-shot audit of the
stream. Results land in ``benchmarks/results/E15_stream_monitor.txt``.
"""

import io
import time

from repro.core import AuditorConfig, AuditSession
from repro.core.findings import findings_schema, findings_to_table
from repro.io import open_sink
from repro.io.jsonl_backend import JsonlTableSink
from repro.monitor import DriftConfig, RefitPolicy
from repro.quis import generate_quis_sample
from repro.testenv import quis_regime_stream

FIT_RECORDS = 10_000
CLEAN_ROWS = 8_192  # pre-step regime (error rate 0.4%)
DIRTY_ROWS = 8_192  # post-step regime (error rate 8%)
WINDOW_ROWS = 256
DRIFT = DriftConfig(confidence=0.95, baseline_windows=3, sustain_windows=2)


def _ranked_jsonl(findings) -> str:
    buffer = io.StringIO()
    with JsonlTableSink(findings_schema(), buffer) as sink:
        sink.write(findings_to_table(findings))
    return buffer.getvalue()


def test_stream_monitor(tmp_path, record_table):
    sample = generate_quis_sample(FIT_RECORDS, seed=2003)
    session = AuditSession(
        sample.schema, AuditorConfig(min_error_confidence=0.8)
    ).fit(sample.dirty)
    stream, _ = quis_regime_stream(
        [(CLEAN_ROWS, 0.004), (DIRTY_ROWS, 0.08)], seed=15
    )
    source = tmp_path / "stream.jsonl"
    with open_sink(stream.schema, source) as sink:
        sink.write(stream)

    # the in-process ceiling: one-shot audit of the whole stream
    started = time.perf_counter()
    oneshot = session.audit(stream)
    oneshot_seconds = time.perf_counter() - started

    # the full durable path: tail-read + windowed audit + findings
    # fsync + watermark replace per window, drift tracking on
    watcher = session.monitor(
        source,
        state_path=tmp_path / "m.state",
        findings_path=tmp_path / "m.findings.jsonl",
        window_rows=WINDOW_ROWS,
        drift=DRIFT,
        refit=RefitPolicy("recommend", model_name="quis"),
    )
    started = time.perf_counter()
    report = watcher.run()
    monitor_seconds = time.perf_counter() - started
    status = watcher.status()
    watcher.close()

    assert report.n_rows == stream.n_rows
    assert _ranked_jsonl(report.ranked_findings()) == _ranked_jsonl(
        oneshot.ranked_findings()
    )

    recommendations = status["refits"]
    assert recommendations, "the pollution step must trip drift detection"
    step_window = CLEAN_ROWS // WINDOW_ROWS
    first = min(r["drift"]["window"] for r in recommendations)
    latency_windows = first - step_window
    # detection needs >= sustain_windows post-step windows; it must not
    # drag far beyond that
    assert 0 < latency_windows <= DRIFT.sustain_windows + 4

    total = stream.n_rows
    lines = [
        "E15 — stream monitor throughput and drift-detection latency "
        f"(QUIS model fitted on {FIT_RECORDS} rows)",
        "",
        f"stream: {CLEAN_ROWS} rows at 0.4% error, then {DIRTY_ROWS} rows "
        f"at 8% (step at window {step_window}); window = {WINDOW_ROWS} rows",
        "",
        f"{'path':>28} {'rows/s':>10} {'seconds':>9}",
        f"{'one-shot audit (in-proc)':>28} {total / oneshot_seconds:>10.0f} "
        f"{oneshot_seconds:>9.2f}",
        f"{'monitor catch-up (durable)':>28} {total / monitor_seconds:>10.0f} "
        f"{monitor_seconds:>9.2f}",
        "",
        f"windows committed: {status['windows']}; findings: "
        f"{status['findings']}; cumulative ranked findings byte-identical "
        f"to the one-shot audit: yes",
        f"drift first recommended at window {first} — latency "
        f"{latency_windows} windows ({latency_windows * WINDOW_ROWS} rows) "
        f"after the step (baseline {DRIFT.baseline_windows} windows, "
        f"sustain {DRIFT.sustain_windows})",
        f"alarmed attributes: "
        f"{', '.join(sorted(set(r['drift']['attribute'] for r in recommendations)))}",
    ]
    record_table("E15_stream_monitor", "\n".join(lines))
