"""Decision-tree induction: ID3/C4.5 with the paper's auditing adjustments.

Implements sec. 5.1 (information gain, gain ratio, numeric binary splits,
fractional-weight handling of missing values) plus the sec. 5.4
adjustments:

* **minInst pre-pruning** — a partition step is only admitted when at
  least one resulting subset contains at least ``min_class_instances``
  instances of one class (derived from the user's minimal error
  confidence via :func:`repro.mining.confidence.min_instances_for_confidence`);
* **integrated expected-error-confidence pruning** — after a node's
  children are built, the subtree is kept only if its expected error
  confidence (Def. 9) exceeds that of the collapsed leaf; the pruning
  criterion thereby reflects the classifier's actual use in data
  auditing rather than its misclassification rate, and no space-consuming
  unpruned tree is ever materialized.

The classic C4.5 behaviour (pessimistic-error subtree replacement as a
post-pass) remains available via :class:`PruningStrategy` for the
baseline / ablation experiments.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.mining.confidence import expected_error_confidence
from repro.mining.dataset import Dataset
from repro.mining.intervals import ConfidenceBounds
from repro.mining.tree.node import Leaf, Node, NominalSplit, NumericSplit

__all__ = ["PruningStrategy", "TreeConfig", "TreeGrower", "grow_tree"]

_EPSILON = 1e-12


class PruningStrategy(enum.Enum):
    """Tree-simplification strategies (paper default: integrated Def.-9)."""

    NONE = "none"
    #: C4.5's pessimistic-error subtree replacement (post-pass)
    PESSIMISTIC = "pessimistic"
    #: the paper's integrated expected-error-confidence pruning
    EXPECTED_ERROR_CONFIDENCE = "expected-error-confidence"


@dataclass
class TreeConfig:
    """Induction parameters.

    ``min_instances`` is C4.5's classic minimum branch weight (at least two
    branches must carry this much weight for a split to be admitted).
    ``min_class_instances`` activates the minInst pre-pruning;
    :class:`repro.core.auditor.DataAuditor` derives it from the minimal
    error confidence. ``gain_ratio=False`` yields plain ID3 attribute
    selection. ``numeric_penalty`` applies C4.5 release 8's
    ``log2(candidates)/N`` correction to continuous-attribute gains.
    """

    min_instances: float = 2.0
    min_class_instances: Optional[float] = None
    max_depth: Optional[int] = None
    gain_ratio: bool = True
    numeric_penalty: bool = True
    pruning: PruningStrategy = PruningStrategy.EXPECTED_ERROR_CONFIDENCE
    bounds: ConfidenceBounds = field(default_factory=ConfidenceBounds)
    #: minimal error confidence the auditing context cares about; both the
    #: Def.-9 cutoff and the leaf-usefulness test use it. The auditor
    #: passes its own min_error_confidence; the default matches the
    #: paper's evaluation setting (80 %).
    min_detection_confidence: float = 0.8

    def __post_init__(self) -> None:
        if self.min_instances < 1:
            raise ValueError("min_instances must be at least 1")
        if self.min_class_instances is not None and self.min_class_instances < 1:
            raise ValueError("min_class_instances must be at least 1")
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError("max_depth must be at least 1")


def _entropy(counts: np.ndarray) -> float:
    """Shannon entropy (base 2) of a count vector."""
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def _entropy_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-wise entropy of a (rows × classes) count matrix."""
    totals = matrix.sum(axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(totals > 0, matrix / np.maximum(totals, _EPSILON), 0.0)
        logs = np.where(p > 0, np.log2(np.maximum(p, _EPSILON)), 0.0)
    return -(p * logs).sum(axis=1)


@dataclass
class _SplitCandidate:
    attribute: str
    gain: float
    gain_ratio: float
    categorical: bool
    threshold: float = 0.0
    #: the attribute column already gathered for this node's rows, so the
    #: split application does not fancy-index the full column again
    column: Optional[np.ndarray] = None


class TreeGrower:
    """Grows one decision tree for a :class:`Dataset`."""

    def __init__(self, dataset: Dataset, config: Optional[TreeConfig] = None):
        self.dataset = dataset
        self.config = config or TreeConfig()
        self.n_labels = dataset.n_labels

    # -- public ------------------------------------------------------------

    def grow(self) -> Node:
        indices = np.arange(self.dataset.n_rows, dtype=np.int64)
        weights = np.ones(self.dataset.n_rows, dtype=float)
        categorical = tuple(
            name
            for name in self.dataset.base_attrs
            if self.dataset.encoders[name].categorical
        )
        root = self._build(indices, weights, frozenset(categorical), depth=0)
        if self.config.pruning is PruningStrategy.PESSIMISTIC:
            from repro.mining.tree.prune import prune_pessimistic

            root = prune_pessimistic(root, self.config.bounds)
        return root

    # -- recursion ------------------------------------------------------------

    def _class_counts(self, indices: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return np.bincount(
            self.dataset.y[indices], weights=weights, minlength=self.n_labels
        )

    def _build(
        self,
        indices: np.ndarray,
        weights: np.ndarray,
        categorical_remaining: frozenset[str],
        depth: int,
    ) -> Node:
        node, _ = self._build_scored(indices, weights, categorical_remaining, depth)
        return node

    def _build_scored(
        self,
        indices: np.ndarray,
        weights: np.ndarray,
        categorical_remaining: frozenset[str],
        depth: int,
    ) -> tuple[Node, Optional[tuple[bool, float]]]:
        """Build a subtree and return it with its pruning score.

        The score is the lexicographic ``(has_useful_leaf, expErrorConf)``
        of the *returned* node, computed bottom-up from the child scores
        in one pass. Recomputing it top-down per pruning decision (as the
        post-pass :mod:`repro.mining.tree.prune` does) re-walks every
        subtree once per ancestor — O(nodes × depth); memoizing it here
        keeps growth O(nodes) while combining the child scores with
        *exactly* the arithmetic of ``subtree_expected_error_confidence``
        (same child order, same summation order, same ``total <= 0``
        guard), so the grown tree is bit-identical either way.
        """
        counts = self._class_counts(indices, weights)
        total = float(weights.sum())
        config = self.config
        scoring = config.pruning is PruningStrategy.EXPECTED_ERROR_CONFIDENCE
        if (
            total < 2 * config.min_instances
            or np.count_nonzero(counts > _EPSILON) <= 1
            or (config.max_depth is not None and depth >= config.max_depth)
        ):
            return Leaf(counts), self._leaf_raw_score(counts) if scoring else None
        y_node = self.dataset.y[indices]
        candidate = self._select_split(indices, weights, y_node, categorical_remaining)
        if candidate is None:
            return Leaf(counts), self._leaf_raw_score(counts) if scoring else None
        if candidate.categorical:
            result = self._split_categorical(
                indices, weights, counts, candidate, categorical_remaining, depth
            )
        else:
            result = self._split_numeric(
                indices, weights, counts, candidate, categorical_remaining, depth
            )
        if result is None:
            return Leaf(counts), self._leaf_raw_score(counts) if scoring else None
        node, child_scores = result
        if not scoring:
            return node, None
        subtree_score = self._combine_scores(node, child_scores)
        leaf_useful, leaf_eec = self._leaf_raw_score(counts)
        if (leaf_useful, leaf_eec + _EPSILON) >= subtree_score:
            return Leaf(counts), (leaf_useful, leaf_eec)
        return node, subtree_score

    # The paper replaces a subtree by a leaf "whenever this transformation
    # leads to a higher value for expErrorConf" and separately deletes
    # rules "not useful for error detection". Both ideas combine into a
    # lexicographic score: (1) does the (sub)tree contain a leaf that
    # *could* flag a deviating record at the minimal confidence —
    # leftBound(P(ĉ), n) − rightBound(0, n) ≥ minConf — and (2) the Def.-9
    # expected error confidence with the minimal-confidence cutoff. The
    # usefulness component is required because on clean training data a
    # perfectly structured subtree of pure leaves has expErrorConf 0, just
    # like the collapsed leaf, yet only the subtree can detect anything.
    # The shared scoring functions live in repro.mining.tree.prune; the
    # collapse comparison adds _EPSILON to the leaf's expErrorConf (leaf
    # wins ties), but the *stored* score of a collapsed leaf is the raw
    # value — prune.py's recursion never sees the epsilon either.

    def _leaf_raw_score(self, counts: np.ndarray) -> tuple[bool, float]:
        from repro.mining.tree.prune import leaf_detection_useful

        config = self.config
        return (
            leaf_detection_useful(counts, config.bounds, config.min_detection_confidence),
            expected_error_confidence(
                counts, config.bounds, config.min_detection_confidence
            ),
        )

    @staticmethod
    def _combine_scores(
        node: Node, child_scores: Sequence[tuple[Node, tuple[bool, float]]]
    ) -> tuple[bool, float]:
        # mirrors subtree_has_useful_leaf / subtree_expected_error_confidence
        # over already-scored children; child_scores is in children() order
        useful = any(score[0] for _, score in child_scores)
        total = node.n
        if total <= 0:
            return useful, 0.0
        return useful, sum(child.n / total * score[1] for child, score in child_scores)

    # -- split selection -------------------------------------------------------

    def _select_split(
        self,
        indices: np.ndarray,
        weights: np.ndarray,
        y_node: np.ndarray,
        categorical_remaining: frozenset[str],
    ) -> Optional[_SplitCandidate]:
        # Tie-break contract (pinned by tests/test_tree_tie_breaks.py):
        # candidates are evaluated in dataset.base_attrs order and picked
        # with Python's max(), which keeps the FIRST maximal element — on
        # equal scores the earlier attribute wins. Any vectorized
        # reformulation of this selection must preserve first-max
        # semantics (np.argmax does; np.argmin over negated scores or
        # sorting do not necessarily).
        candidates: list[_SplitCandidate] = []
        for name in self.dataset.base_attrs:
            encoder = self.dataset.encoders[name]
            if encoder.categorical:
                if name not in categorical_remaining:
                    continue
                candidate = self._evaluate_categorical(name, indices, weights, y_node)
            else:
                candidate = self._evaluate_numeric(name, indices, weights, y_node)
            if candidate is not None and candidate.gain > _EPSILON:
                candidates.append(candidate)
        if not candidates:
            return None
        if not self.config.gain_ratio:
            return max(candidates, key=lambda c: c.gain)
        # C4.5: best gain ratio among candidates with at least average gain
        average_gain = sum(c.gain for c in candidates) / len(candidates)
        eligible = [c for c in candidates if c.gain >= average_gain - _EPSILON]
        return max(eligible, key=lambda c: c.gain_ratio)

    def _evaluate_categorical(
        self, name: str, indices: np.ndarray, weights: np.ndarray, y_node: np.ndarray
    ) -> Optional[_SplitCandidate]:
        config = self.config
        codes = self.dataset.columns[name][indices]
        known = codes >= 0
        known_weight = float(weights[known].sum())
        total_weight = float(weights.sum())
        if known_weight <= 0:
            return None
        n_categories = self.dataset.encoders[name].n_categories
        joint = np.bincount(
            codes[known] * self.n_labels + y_node[known],
            weights=weights[known],
            minlength=n_categories * self.n_labels,
        ).reshape(n_categories, self.n_labels)
        value_totals = joint.sum(axis=1)
        occupied = value_totals > _EPSILON
        if np.count_nonzero(occupied) < 2:
            return None
        # C4.5 constraint: at least two branches with min_instances weight
        if np.count_nonzero(value_totals >= config.min_instances) < 2:
            return None
        # minInst pre-pruning: some subset must concentrate one class
        if (
            config.min_class_instances is not None
            and joint.max() < config.min_class_instances
        ):
            return None
        known_entropy = _entropy(joint.sum(axis=0))
        child_entropies = _entropy_rows(joint[occupied])
        weighted_child = float(
            (value_totals[occupied] / known_weight * child_entropies).sum()
        )
        gain_known = known_entropy - weighted_child
        gain = (known_weight / total_weight) * gain_known
        split_parts = value_totals[occupied]
        missing_weight = total_weight - known_weight
        if missing_weight > _EPSILON:
            split_parts = np.append(split_parts, missing_weight)
        split_info = _entropy(split_parts)
        if split_info <= _EPSILON:
            return None
        return _SplitCandidate(
            name, gain, gain / split_info, categorical=True, column=codes
        )

    def _evaluate_numeric(
        self, name: str, indices: np.ndarray, weights: np.ndarray, y_node: np.ndarray
    ) -> Optional[_SplitCandidate]:
        config = self.config
        values = self.dataset.columns[name][indices]
        known = ~np.isnan(values)
        known_weight = float(weights[known].sum())
        total_weight = float(weights.sum())
        if known_weight <= 0:
            return None
        kv = values[known]
        ky = y_node[known]
        kw = weights[known]
        order = np.argsort(kv, kind="stable")
        sv, sy, sw = kv[order], ky[order], kw[order]
        # candidate boundaries: positions where the value changes
        change = np.nonzero(sv[1:] != sv[:-1])[0]  # split after index i
        if change.size == 0:
            return None
        one_hot = np.zeros((sv.size, self.n_labels), dtype=float)
        one_hot[np.arange(sv.size), sy] = sw
        cumulative = np.cumsum(one_hot, axis=0)
        total_counts = cumulative[-1]
        left_counts = cumulative[change]  # (n_candidates × n_labels)
        right_counts = total_counts[None, :] - left_counts
        left_totals = left_counts.sum(axis=1)
        right_totals = right_counts.sum(axis=1)
        feasible = (left_totals >= config.min_instances) & (
            right_totals >= config.min_instances
        )
        if config.min_class_instances is not None:
            feasible &= np.maximum(
                left_counts.max(axis=1), right_counts.max(axis=1)
            ) >= config.min_class_instances
        if not feasible.any():
            return None
        known_entropy = _entropy(total_counts)
        # Entropy only over feasible boundaries: each row's entropy depends
        # on that row alone, so subsetting changes no float result, and
        # argmax over the (order-preserving) subset keeps the row-path
        # tie-break — the LOWEST cut among equal gains (first maximum).
        if feasible.all():
            feasible_at = None
            lc, rc, lt, rt = left_counts, right_counts, left_totals, right_totals
        else:
            feasible_at = np.nonzero(feasible)[0]
            lc, rc = left_counts[feasible_at], right_counts[feasible_at]
            lt, rt = left_totals[feasible_at], right_totals[feasible_at]
        gains_known = known_entropy - (
            lt / known_weight * _entropy_rows(lc)
            + rt / known_weight * _entropy_rows(rc)
        )
        best_local = int(np.argmax(gains_known))
        best = best_local if feasible_at is None else int(feasible_at[best_local])
        gain_known = float(gains_known[best_local])
        if config.numeric_penalty:
            gain_known -= math.log2(max(change.size, 1)) / known_weight
        if gain_known <= _EPSILON:
            return None
        gain = (known_weight / total_weight) * gain_known
        boundary = change[best]
        threshold = float((sv[boundary] + sv[boundary + 1]) / 2.0)
        split_parts = [float(left_totals[best]), float(right_totals[best])]
        missing_weight = total_weight - known_weight
        if missing_weight > _EPSILON:
            split_parts.append(missing_weight)
        split_info = _entropy(np.asarray(split_parts))
        if split_info <= _EPSILON:
            return None
        return _SplitCandidate(
            name,
            gain,
            gain / split_info,
            categorical=False,
            threshold=threshold,
            column=values,
        )

    # -- split application -----------------------------------------------------

    def _split_categorical(
        self,
        indices: np.ndarray,
        weights: np.ndarray,
        counts: np.ndarray,
        candidate: _SplitCandidate,
        categorical_remaining: frozenset[str],
        depth: int,
    ) -> Optional[tuple[Node, list[tuple[Node, Optional[tuple[bool, float]]]]]]:
        codes = (
            candidate.column
            if candidate.column is not None
            else self.dataset.columns[candidate.attribute][indices]
        )
        known = codes >= 0
        known_weight = float(weights[known].sum())
        if known_weight <= 0:
            return None
        remaining = categorical_remaining - {candidate.attribute}
        present_codes = np.unique(codes[known])
        missing_idx = indices[~known]
        missing_w = weights[~known]
        branches: dict[int, Node] = {}
        fractions: dict[int, float] = {}
        child_scores: list[tuple[Node, Optional[tuple[bool, float]]]] = []
        for code in present_codes:
            mask = known & (codes == code)
            branch_weight = float(weights[mask].sum())
            if branch_weight <= _EPSILON:
                continue
            fraction = branch_weight / known_weight
            child_idx = indices[mask]
            child_w = weights[mask]
            if missing_idx.size:
                child_idx = np.concatenate([child_idx, missing_idx])
                child_w = np.concatenate([child_w, missing_w * fraction])
            child, score = self._build_scored(child_idx, child_w, remaining, depth + 1)
            branches[int(code)] = child
            fractions[int(code)] = fraction
            child_scores.append((child, score))
        if len(branches) < 2:
            return None
        return NominalSplit(counts, candidate.attribute, branches, fractions), child_scores

    def _split_numeric(
        self,
        indices: np.ndarray,
        weights: np.ndarray,
        counts: np.ndarray,
        candidate: _SplitCandidate,
        categorical_remaining: frozenset[str],
        depth: int,
    ) -> Optional[tuple[Node, list[tuple[Node, Optional[tuple[bool, float]]]]]]:
        values = (
            candidate.column
            if candidate.column is not None
            else self.dataset.columns[candidate.attribute][indices]
        )
        known = ~np.isnan(values)
        known_weight = float(weights[known].sum())
        if known_weight <= 0:
            return None
        low_mask = known & (values <= candidate.threshold)
        high_mask = known & (values > candidate.threshold)
        low_weight = float(weights[low_mask].sum())
        high_weight = float(weights[high_mask].sum())
        if low_weight <= _EPSILON or high_weight <= _EPSILON:
            return None
        low_fraction = low_weight / known_weight
        missing_idx = indices[~known]
        missing_w = weights[~known]
        low_idx, low_w = indices[low_mask], weights[low_mask]
        high_idx, high_w = indices[high_mask], weights[high_mask]
        if missing_idx.size:
            low_idx = np.concatenate([low_idx, missing_idx])
            low_w = np.concatenate([low_w, missing_w * low_fraction])
            high_idx = np.concatenate([high_idx, missing_idx])
            high_w = np.concatenate([high_w, missing_w * (1.0 - low_fraction)])
        low, low_score = self._build_scored(low_idx, low_w, categorical_remaining, depth + 1)
        high, high_score = self._build_scored(high_idx, high_w, categorical_remaining, depth + 1)
        node = NumericSplit(
            counts, candidate.attribute, candidate.threshold, low, high, low_fraction
        )
        return node, [(low, low_score), (high, high_score)]


def grow_tree(dataset: Dataset, config: Optional[TreeConfig] = None) -> Node:
    """Convenience wrapper: grow (and, per config, prune) one tree."""
    return TreeGrower(dataset, config).grow()
