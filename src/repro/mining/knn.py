"""Instance-based (k-nearest-neighbour) classifier — another sec. 5
alternative.

Distance is a Gower-style mean over base attributes: 0/1 mismatch for
nominal codes, span-normalized absolute difference for ordered values, and
the maximal distance 1 whenever either operand is missing. The support
``n`` for Def. 7 is ``k`` — a very small sample, which caps the achievable
error confidence and is one of the reasons instance-based methods lost the
paper's algorithm selection.

Prediction is O(training size); fit optionally subsamples to
``max_training`` rows to keep the classifier-selection benchmark tractable
on large tables.
"""

from __future__ import annotations

import math
import random
from typing import Mapping, Optional

import numpy as np

from repro.mining.base import (
    AttributeClassifier,
    BatchPrediction,
    Prediction,
    batch_length,
)
from repro.mining.dataset import Dataset

__all__ = ["KnnClassifier"]


class KnnClassifier(AttributeClassifier):
    """k-nearest-neighbour classifier over a Gower-style mixed distance."""

    def __init__(
        self,
        k: int = 7,
        *,
        max_training: Optional[int] = 3000,
        seed: int = 0,
    ):
        super().__init__()
        if k < 1:
            raise ValueError("k must be at least 1")
        if max_training is not None and max_training < 1:
            raise ValueError("max_training must be positive")
        self.k = k
        self.max_training = max_training
        self.seed = seed
        self._columns: dict[str, np.ndarray] = {}
        self._spans: dict[str, float] = {}
        self._y: Optional[np.ndarray] = None

    def fit(self, dataset: Dataset) -> None:
        self.dataset = dataset
        n = dataset.n_rows
        if self.max_training is not None and n > self.max_training:
            rng = random.Random(self.seed)
            chosen = np.asarray(
                sorted(rng.sample(range(n), self.max_training)), dtype=np.int64
            )
        else:
            chosen = np.arange(n, dtype=np.int64)
        self._y = dataset.y[chosen]
        self._columns = {}
        self._spans = {}
        for name in dataset.base_attrs:
            column = dataset.columns[name][chosen]
            self._columns[name] = column
            if not dataset.encoders[name].categorical:
                known = column[~np.isnan(column)]
                span = float(known.max() - known.min()) if known.size else 0.0
                self._spans[name] = span if span > 0 else 1.0

    def fit_state(self) -> dict:
        """Canonical fitted state (see
        :meth:`AttributeClassifier.fit_state
        <repro.mining.base.AttributeClassifier.fit_state>`): the retained
        (possibly subsampled) training columns themselves — kNN is
        instance-based, so they *are* the model."""
        dataset = self._require_fitted()
        assert self._y is not None
        return {
            "type": "knn",
            "class_encoder": dataset.class_encoder.to_state(),
            "k": self.k,
            "columns": {
                name: column.tolist() for name, column in self._columns.items()
            },
            "spans": dict(self._spans),
            "y": self._y.tolist(),
        }

    def predict_encoded(self, encoded: Mapping[str, float]) -> Prediction:
        dataset = self._require_fitted()
        assert self._y is not None
        n_train = self._y.size
        if n_train == 0:
            uniform = np.full(dataset.n_labels, 1.0 / dataset.n_labels)
            return Prediction(uniform, 0.0, dataset.class_encoder.labels)
        distance = np.zeros(n_train, dtype=float)
        for name, column in self._columns.items():
            raw = encoded[name]
            if dataset.encoders[name].categorical:
                code = int(raw)
                if code < 0:
                    distance += 1.0
                else:
                    missing = column < 0
                    distance += np.where(missing | (column != code), 1.0, 0.0)
            else:
                if math.isnan(raw):
                    distance += 1.0
                else:
                    missing = np.isnan(column)
                    diff = np.abs(column - raw) / self._spans[name]
                    distance += np.where(missing, 1.0, np.minimum(diff, 1.0))
        k = min(self.k, n_train)
        neighbour_idx = np.argpartition(distance, k - 1)[:k]
        counts = np.bincount(self._y[neighbour_idx], minlength=dataset.n_labels).astype(
            float
        )
        return Prediction(counts / k, float(k), dataset.class_encoder.labels)

    #: batch rows per distance-matrix block (bounds peak memory at
    #: ``_CHUNK × max_training`` floats regardless of batch size)
    _CHUNK = 512

    def predict_batch(
        self,
        columns: Mapping[str, np.ndarray],
        *,
        n_rows: Optional[int] = None,
    ) -> BatchPrediction:
        dataset = self._require_fitted()
        assert self._y is not None
        length = batch_length(columns, n_rows)
        n_labels = dataset.n_labels
        labels = dataset.class_encoder.labels
        n_train = self._y.size
        if n_train == 0:
            uniform = np.full((length, n_labels), 1.0 / n_labels)
            return BatchPrediction(uniform, np.zeros(length), labels)
        k = min(self.k, n_train)
        probabilities = np.empty((length, n_labels), dtype=float)
        for start in range(0, length, self._CHUNK):
            stop = min(start + self._CHUNK, length)
            distance = np.zeros((stop - start, n_train), dtype=float)
            for name, column in self._columns.items():
                raw = columns[name][start:stop]
                if dataset.encoders[name].categorical:
                    codes = raw[:, None]
                    missing = column < 0
                    block = np.where(missing[None, :] | (column[None, :] != codes), 1.0, 0.0)
                    block[raw < 0] = 1.0  # missing query value: maximal distance
                else:
                    missing = np.isnan(column)
                    diff = np.abs(column[None, :] - raw[:, None]) / self._spans[name]
                    block = np.where(missing[None, :], 1.0, np.minimum(diff, 1.0))
                    block[np.isnan(raw)] = 1.0
                distance += block
            for offset in range(stop - start):
                neighbour_idx = np.argpartition(distance[offset], k - 1)[:k]
                counts = np.bincount(
                    self._y[neighbour_idx], minlength=n_labels
                ).astype(float)
                probabilities[start + offset] = counts / k
        return BatchPrediction(
            probabilities, np.full(length, float(k)), labels
        )

    def __repr__(self) -> str:
        return f"KnnClassifier(k={self.k}, max_training={self.max_training})"
