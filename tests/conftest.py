"""Shared fixtures for the test suite."""

from __future__ import annotations

import datetime
import random

import pytest

from repro.schema import Schema, date, nominal, numeric


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; reseeded per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def tiny_schema() -> Schema:
    """A small schema with every attribute kind, used across logic tests.

    Domains are deliberately tiny so satisfiability claims can be checked
    against brute-force enumeration.
    """
    return Schema(
        [
            nominal("A", ["a", "b", "c"]),
            nominal("B", ["x", "y"]),
            numeric("N", 0, 3, integer=True),
            numeric("M", 0, 3, integer=True),
        ]
    )


@pytest.fixture
def full_schema() -> Schema:
    """A richer schema including float and date attributes."""
    return Schema(
        [
            nominal("A", ["a", "b", "c"]),
            nominal("B", ["x", "y"]),
            numeric("N", 0, 100, integer=True),
            numeric("M", 0, 100, integer=True),
            numeric("F", 0.0, 1.0),
            date("D", datetime.date(2000, 1, 1), datetime.date(2001, 12, 31)),
        ]
    )
