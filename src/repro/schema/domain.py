"""Attribute domains.

A domain describes the set of legal non-null values of an attribute. The
test-data generator (sec. 4.1) requires "domain ranges for each attribute";
the satisfiability test (sec. 4.1.3) initializes its current ranges from
these domains and the data generator samples values from them.

Three concrete domains mirror the three attribute kinds:

* :class:`NominalDomain` — a finite, ordered set of string values,
* :class:`NumericDomain` — a closed interval of integers or floats,
* :class:`DateDomain` — a closed interval of calendar dates.

A fourth, :class:`TextDomain`, admits *any* string. It exists for
derived and reporting tables (audit findings, logs) that flow through
the storage backends of :mod:`repro.io` but are never mined — it has no
numeric view and cannot be sampled.

Ordered domains expose a common *numeric view* (:meth:`Domain.to_number` /
:meth:`Domain.from_number`) so that the mining layer can treat dates as
ordered numerics (equal-frequency discretization, numeric splits in the
decision tree) without special-casing.
"""

from __future__ import annotations

import bisect
import datetime
import random
from abc import ABC, abstractmethod
from typing import Iterator, Sequence

from repro.schema.types import AttributeKind, Value

__all__ = ["Domain", "NominalDomain", "NumericDomain", "DateDomain", "TextDomain"]


class Domain(ABC):
    """Abstract base class of attribute domains."""

    #: The attribute kind this domain belongs to.
    kind: AttributeKind

    @abstractmethod
    def contains(self, value: Value) -> bool:
        """Return ``True`` iff the non-null *value* lies in this domain."""

    @abstractmethod
    def sample_uniform(self, rng: random.Random) -> Value:
        """Draw a value uniformly from this domain."""

    @abstractmethod
    def to_number(self, value: Value) -> float:
        """Map a domain value to its numeric view (for mining/ordering)."""

    @abstractmethod
    def from_number(self, number: float) -> Value:
        """Map a numeric-view value back to a domain value (best effort)."""

    def __contains__(self, value: Value) -> bool:
        return value is not None and self.contains(value)


class NominalDomain(Domain):
    """A finite, ordered set of nominal (string) values.

    The order of *values* is preserved; it defines the index used by
    categorical start distributions (sec. 4.1.4 parameterizes normal /
    exponential distributions over nominal domains by value index) and by
    the numeric view.
    """

    kind = AttributeKind.NOMINAL

    def __init__(self, values: Sequence[str]):
        if not values:
            raise ValueError("a nominal domain needs at least one value")
        as_tuple = tuple(values)
        if len(set(as_tuple)) != len(as_tuple):
            raise ValueError("nominal domain values must be distinct")
        for v in as_tuple:
            if not isinstance(v, str):
                raise TypeError(f"nominal value must be str, got {type(v).__name__}")
        self.values: tuple[str, ...] = as_tuple
        self._index = {v: i for i, v in enumerate(as_tuple)}

    @property
    def size(self) -> int:
        """Number of distinct values."""
        return len(self.values)

    def index_of(self, value: str) -> int:
        """Return the position of *value* in the domain order."""
        try:
            return self._index[value]
        except KeyError:
            raise ValueError(f"{value!r} is not in this nominal domain") from None

    def contains(self, value: Value) -> bool:
        return isinstance(value, str) and value in self._index

    def sample_uniform(self, rng: random.Random) -> str:
        return self.values[rng.randrange(len(self.values))]

    def to_number(self, value: Value) -> float:
        return float(self.index_of(value))  # type: ignore[arg-type]

    def from_number(self, number: float) -> str:
        idx = min(max(int(round(number)), 0), len(self.values) - 1)
        return self.values[idx]

    def __iter__(self) -> Iterator[str]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NominalDomain) and self.values == other.values

    def __hash__(self) -> int:
        return hash(self.values)

    def __repr__(self) -> str:
        if len(self.values) > 6:
            shown = ", ".join(map(repr, self.values[:5])) + f", … ({len(self.values)} values)"
        else:
            shown = ", ".join(map(repr, self.values))
        return f"NominalDomain({shown})"


class TextDomain(Domain):
    """All strings — the open-ended counterpart of :class:`NominalDomain`.

    For derived/reporting relations (audit findings, provenance logs)
    whose string columns have no finite vocabulary. Such tables are
    written and read through :mod:`repro.io` like any other, but they
    are not mined: a text domain has no value order, so it cannot be
    sampled and has no numeric view.
    """

    kind = AttributeKind.NOMINAL

    def contains(self, value: Value) -> bool:
        return isinstance(value, str)

    def sample_uniform(self, rng: random.Random) -> str:
        raise TypeError("a text domain is unbounded and cannot be sampled")

    def to_number(self, value: Value) -> float:
        raise TypeError("a text domain has no numeric view")

    def from_number(self, number: float) -> Value:
        raise TypeError("a text domain has no numeric view")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TextDomain)

    def __hash__(self) -> int:
        return hash(TextDomain)

    def __repr__(self) -> str:
        return "TextDomain()"


class NumericDomain(Domain):
    """A closed numeric interval ``[low, high]``.

    With ``integer=True`` the domain contains only the integers in the
    interval; otherwise any real number in it.
    """

    kind = AttributeKind.NUMERIC

    def __init__(self, low: float, high: float, *, integer: bool = False):
        if isinstance(low, bool) or isinstance(high, bool):
            raise TypeError("bounds must be numbers, not bool")
        if not (isinstance(low, (int, float)) and isinstance(high, (int, float))):
            raise TypeError("bounds must be numbers")
        if integer:
            low, high = int(low), int(high)
        if low > high:
            raise ValueError(f"empty numeric domain: low={low} > high={high}")
        self.low = low
        self.high = high
        self.integer = integer

    def contains(self, value: Value) -> bool:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
        # integer-valuedness must not go through float() — that loses
        # precision beyond 2**53 and would reject admissible large ints
        if self.integer and isinstance(value, float) and not value.is_integer():
            return False
        return self.low <= value <= self.high

    def sample_uniform(self, rng: random.Random) -> float:
        if self.integer:
            return rng.randint(int(self.low), int(self.high))
        return rng.uniform(self.low, self.high)

    def to_number(self, value: Value) -> float:
        return float(value)  # type: ignore[arg-type]

    def from_number(self, number: float) -> Value:
        number = min(max(number, self.low), self.high)
        if self.integer:
            return int(round(number))
        return float(number)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NumericDomain)
            and self.low == other.low
            and self.high == other.high
            and self.integer == other.integer
        )

    def __hash__(self) -> int:
        return hash((self.low, self.high, self.integer))

    def __repr__(self) -> str:
        tag = ", integer=True" if self.integer else ""
        return f"NumericDomain({self.low}, {self.high}{tag})"


class DateDomain(Domain):
    """A closed interval of calendar dates ``[start, end]``.

    The numeric view is the proleptic Gregorian ordinal
    (:meth:`datetime.date.toordinal`), making dates directly usable by the
    ordering atoms and the mining layer.
    """

    kind = AttributeKind.DATE

    def __init__(self, start: datetime.date, end: datetime.date):
        if not (isinstance(start, datetime.date) and isinstance(end, datetime.date)):
            raise TypeError("start and end must be datetime.date")
        if start > end:
            raise ValueError(f"empty date domain: start={start} > end={end}")
        self.start = start
        self.end = end

    @property
    def n_days(self) -> int:
        """Number of days in the interval (inclusive)."""
        return self.end.toordinal() - self.start.toordinal() + 1

    def contains(self, value: Value) -> bool:
        return isinstance(value, datetime.date) and self.start <= value <= self.end

    def sample_uniform(self, rng: random.Random) -> datetime.date:
        offset = rng.randrange(self.n_days)
        return datetime.date.fromordinal(self.start.toordinal() + offset)

    def to_number(self, value: Value) -> float:
        return float(value.toordinal())  # type: ignore[union-attr]

    def from_number(self, number: float) -> datetime.date:
        ordinal = int(round(number))
        ordinal = min(max(ordinal, self.start.toordinal()), self.end.toordinal())
        return datetime.date.fromordinal(ordinal)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DateDomain) and self.start == other.start and self.end == other.end

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    def __repr__(self) -> str:
        return f"DateDomain({self.start.isoformat()}, {self.end.isoformat()})"


def _check_sorted(values: Sequence[float]) -> None:  # pragma: no cover - helper for debugging
    for a, b in zip(values, values[1:]):
        if a > b:
            raise AssertionError("values not sorted")


def nearest_in(values: Sequence[float], target: float) -> float:
    """Return the element of the sorted *values* closest to *target*.

    Utility used when a numeric-view value must be snapped back onto a
    discrete set (e.g. integer domains after averaging).
    """
    if not values:
        raise ValueError("empty value sequence")
    pos = bisect.bisect_left(values, target)
    candidates = []
    if pos > 0:
        candidates.append(values[pos - 1])
    if pos < len(values):
        candidates.append(values[pos])
    return min(candidates, key=lambda v: abs(v - target))
