"""Encoded training data for the mining algorithms.

The classifiers of sec. 5 all consume the same view of a table:

* **base attributes** (the classifier inputs) are encoded per kind —
  nominal values become small integer codes (with one extra *unknown*
  code for out-of-domain values produced by pollution, and ``-1`` for
  null, which the C4.5 machinery treats as a missing value to distribute
  fractionally), ordered values become floats on the numeric view
  (``NaN`` for null / unparseable);
* the **class attribute** is encoded into a finite label set. Nominal
  classes use their domain values; numeric and date classes are
  discretized into equal-frequency bins (sec. 5's multiple
  classification / *regression* approach). Null is a first-class label —
  the paper's completeness dimension ("substituting an erroneously
  missing value by the suggestion of a data auditing application") needs
  the classifier to regard an unexpected null as a deviation, which it
  can only do if nulls are part of the class vocabulary. A single
  *unknown* label absorbs out-of-domain class values.

Two encoding paths produce these views. The **column path** (default)
converts whole columns at once — bulk NumPy casts for numeric columns,
dict-lookup comprehensions for nominal codes — and is what the fit hot
path and the audit path run on. The **row path**
(:meth:`BaseEncoder.encode_column_rowwise` /
:meth:`ClassEncoder.encode_column_rowwise`, selected by
``Dataset(..., encode_path="rows")``) walks cells one at a time through
:meth:`BaseEncoder.encode` / :meth:`ClassEncoder.code_of` — the legacy
formulation kept as the *parity oracle*: both paths must produce
bit-identical arrays, which ``tests/test_fit_parity_property.py`` pins
on randomized tables. The single documented divergence: a raw ``NaN``
float stored directly in a table cell (impossible through any
:mod:`repro.io` backend, which all reject non-finite values at parse
time) is counted by the row path when sizing class bins but is
indistinguishable from a kind-violating cell on the column path.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.mining.discretize import EqualFrequencyDiscretizer
from repro.schema.attribute import Attribute
from repro.schema.domain import NominalDomain
from repro.schema.table import Table
from repro.schema.types import AttributeKind, Value

__all__ = [
    "NULL_LABEL",
    "UNKNOWN_LABEL",
    "BaseEncoder",
    "ClassEncoder",
    "Dataset",
    "null_mask",
    "encode_ordered_column",
]

#: Class label representing a null class value.
NULL_LABEL = "<null>"
#: Class label absorbing out-of-domain class values.
UNKNOWN_LABEL = "<unknown>"

_ENCODE_PATHS = ("columns", "rows")


def null_mask(values: Sequence[Value]) -> np.ndarray:
    """Boolean mask of the null cells of a raw column."""
    return np.fromiter((v is None for v in values), dtype=bool, count=len(values))


def encode_ordered_column(
    attribute: Attribute, values: Sequence[Value], mask: np.ndarray
) -> np.ndarray:
    """Numeric view of an ordered column: ``float(to_number(v))`` per
    cell, ``NaN`` for null (per *mask*) and for kind-violating cells.

    Clean numeric columns take one bulk C-level cast; date columns one
    ``toordinal`` comprehension. Columns polluted with kind-violating
    cells (and domains without a numeric view) fall back to a
    cell-at-a-time loop with exactly the ``try/except`` semantics of
    :meth:`BaseEncoder.encode`, so the result is bit-identical to the
    row path in every case.
    """
    out = np.full(len(values), np.nan, dtype=np.float64)
    nonnull = [v for v in values if v is not None]
    if not nonnull:
        return out
    converted: Optional[np.ndarray] = None
    try:
        if attribute.kind is AttributeKind.DATE:
            converted = np.asarray(
                [float(v.toordinal()) for v in nonnull], dtype=np.float64
            )
        elif attribute.kind is AttributeKind.NUMERIC:
            # numpy converts int/float/bool/str elements exactly like
            # float() does (verified down to rounding and error cases);
            # anything else raises and routes to the fallback
            converted = np.asarray(nonnull, dtype=np.float64)
    except (TypeError, AttributeError, ValueError):
        converted = None
    if converted is None:
        domain = attribute.domain

        def _one(value: Value) -> float:
            try:
                return float(domain.to_number(value))
            except (TypeError, AttributeError, ValueError):
                return float("nan")

        converted = np.asarray([_one(v) for v in nonnull], dtype=np.float64)
    out[~mask] = converted
    return out


class BaseEncoder:
    """Encoder of one *base* (input) attribute."""

    def __init__(self, attribute: Attribute):
        self.attribute = attribute
        domain = attribute.domain
        if isinstance(domain, NominalDomain):
            self.categorical = True
            self._codes = {value: i for i, value in enumerate(domain.values)}
            #: code used for non-null values outside the declared domain
            self.unknown_code = len(domain.values)
            self.n_categories = len(domain.values) + 1
        else:
            self.categorical = False
            self._codes = {}
            self.unknown_code = -1
            self.n_categories = 0

    def encode(self, value: Value) -> float:
        """Encode one cell; returns an int code (categorical, ``-1`` for
        missing) or a float (ordered, ``NaN`` for missing/unparseable)."""
        if self.categorical:
            if value is None:
                return -1
            code = self._codes.get(value)
            if code is None:
                return self.unknown_code
            return code
        if value is None:
            return float("nan")
        try:
            return float(self.attribute.domain.to_number(value))
        except (TypeError, AttributeError, ValueError):
            return float("nan")  # kind-violating cell (e.g. switched column)

    def encode_column(self, values: Sequence[Value]) -> np.ndarray:
        """Vectorized whole-column encoding (the default *column path*).

        Bit-identical to the cell-at-a-time
        :meth:`encode_column_rowwise` oracle — pinned by the fit-parity
        property suite.
        """
        if self.categorical:
            get = self._codes.get
            unknown = self.unknown_code
            return np.asarray(
                [-1 if v is None else get(v, unknown) for v in values],
                dtype=np.int64,
            )
        return encode_ordered_column(self.attribute, values, null_mask(values))

    def encode_column_rowwise(self, values: Sequence[Value]) -> np.ndarray:
        """The legacy cell-at-a-time encoding — the row-walking parity
        oracle behind ``AuditorConfig(fit_path="rows")``."""
        if self.categorical:
            return np.asarray([self.encode(v) for v in values], dtype=np.int64)
        return np.asarray([self.encode(v) for v in values], dtype=np.float64)

    def decode_category(self, code: int) -> Optional[str]:
        """Nominal value of a category code (None for the unknown code)."""
        if not self.categorical:
            raise TypeError("decode_category on an ordered encoder")
        domain: NominalDomain = self.attribute.domain  # type: ignore[assignment]
        if 0 <= code < len(domain.values):
            return domain.values[code]
        return None


class ClassEncoder:
    """Encoder of the class attribute into a finite label vocabulary."""

    def __init__(
        self,
        attribute: Attribute,
        values: Sequence[Value],
        *,
        n_bins: int = 10,
        numeric_view: Optional[np.ndarray] = None,
        encode_path: str = "columns",
    ):
        if encode_path not in _ENCODE_PATHS:
            raise ValueError(f"encode_path must be one of {_ENCODE_PATHS}, got {encode_path!r}")
        self.attribute = attribute
        self.discretizer: Optional[EqualFrequencyDiscretizer] = None
        if attribute.kind is AttributeKind.NOMINAL:
            domain: NominalDomain = attribute.domain  # type: ignore[assignment]
            value_labels = list(domain.values)
            self._value_to_label = {value: value for value in domain.values}
        else:
            if numeric_view is None:
                if encode_path == "rows":
                    # the row-walking oracle: per-cell to_number with an
                    # orderability probe (to_number called twice per cell)
                    numeric_view = [  # type: ignore[assignment]
                        attribute.domain.to_number(v)
                        for v in values
                        if v is not None and _orderable(attribute, v)
                    ]
                else:
                    numeric = encode_ordered_column(
                        attribute, values, null_mask(values)
                    )
                    numeric_view = numeric[~np.isnan(numeric)]
            if len(numeric_view):
                bins = max(2, min(n_bins, _distinct_count(numeric_view)))
                self.discretizer = EqualFrequencyDiscretizer(bins).fit(numeric_view)
                value_labels = [
                    self.discretizer.bin_label(i)
                    for i in range(self.discretizer.n_bins)
                ]
            else:
                value_labels = []
            self._value_to_label = {}
        self.labels: tuple[str, ...] = tuple(value_labels) + (NULL_LABEL, UNKNOWN_LABEL)
        self._label_codes = {label: i for i, label in enumerate(self.labels)}
        self._value_codes = {
            value: self._label_codes[label]
            for value, label in self._value_to_label.items()
        }

    @property
    def n_labels(self) -> int:
        return len(self.labels)

    def index_of_label(self, label: str) -> int:
        return self._label_codes[label]

    @property
    def null_code(self) -> int:
        return self._label_codes[NULL_LABEL]

    @property
    def unknown_code(self) -> int:
        return self._label_codes[UNKNOWN_LABEL]

    def label_of(self, value: Value) -> str:
        """Class label of one observed cell value."""
        if value is None:
            return NULL_LABEL
        if self.attribute.kind is AttributeKind.NOMINAL:
            return self._value_to_label.get(value, UNKNOWN_LABEL)
        if self.discretizer is None or not _orderable(self.attribute, value):
            return UNKNOWN_LABEL
        number = self.attribute.domain.to_number(value)
        return self.labels[self.discretizer.transform_value(number)]

    def code_of(self, value: Value) -> int:
        return self._label_codes[self.label_of(value)]

    def code_of_label(self, label: str) -> int:
        return self._label_codes[label]

    def encode_column(self, values: Sequence[Value]) -> np.ndarray:
        """Vectorized class encoding of a whole column (bit-identical to
        the per-cell :meth:`code_of` loop, pinned by the parity suite)."""
        if self.attribute.kind is AttributeKind.NOMINAL:
            get = self._value_codes.get
            null_code = self.null_code
            unknown_code = self.unknown_code
            return np.asarray(
                [null_code if v is None else get(v, unknown_code) for v in values],
                dtype=np.int64,
            )
        mask = null_mask(values)
        numeric = encode_ordered_column(self.attribute, values, mask)
        return self.encode_from_numeric(numeric, mask)

    def encode_column_rowwise(self, values: Sequence[Value]) -> np.ndarray:
        """The legacy cell-at-a-time class encoding (row-path oracle)."""
        return np.asarray([self.code_of(v) for v in values], dtype=np.int64)

    def encode_from_numeric(
        self, numeric: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        """Class codes from a precomputed numeric view + null mask.

        The shared fit path
        (:class:`repro.core.auditor.FitColumnCache`) already holds the
        base-encoded float column of an ordered class attribute; this
        reuses it instead of re-walking the raw values. ``NaN`` cells
        that are not null are kind violations → the unknown label.
        """
        codes = np.full(len(numeric), self.unknown_code, dtype=np.int64)
        if self.discretizer is not None:
            finite = ~np.isnan(numeric)
            if finite.any():
                codes[finite] = self.discretizer.transform(numeric[finite])
        codes[mask] = self.null_code
        return codes

    # -- persistence ----------------------------------------------------------

    def to_state(self) -> dict:
        """JSON-compatible state (labels + discretizer, no training data)."""
        return {
            "labels": list(self.labels),
            "discretizer": self.discretizer.to_state() if self.discretizer else None,
        }

    @classmethod
    def from_state(cls, attribute: Attribute, state: dict) -> "ClassEncoder":
        """Rebuild an encoder from :meth:`to_state` output (the attribute
        comes from the separately persisted schema)."""
        instance = cls.__new__(cls)
        instance.attribute = attribute
        discretizer_state = state.get("discretizer")
        instance.discretizer = (
            EqualFrequencyDiscretizer.from_state(discretizer_state)
            if discretizer_state
            else None
        )
        instance.labels = tuple(state["labels"])
        instance._label_codes = {label: i for i, label in enumerate(instance.labels)}
        if attribute.kind is AttributeKind.NOMINAL:
            instance._value_to_label = {
                value: value for value in attribute.domain.values  # type: ignore[attr-defined]
            }
        else:
            instance._value_to_label = {}
        instance._value_codes = {
            value: instance._label_codes[label]
            for value, label in instance._value_to_label.items()
        }
        return instance

    def proposal_for(self, label: str) -> Value:
        """The concrete replacement value a predicted label suggests
        (sec. 5.3): the nominal value itself, the bin representative for
        discretized classes, or null for the null label."""
        if label == NULL_LABEL:
            return None
        if label == UNKNOWN_LABEL:
            return None
        if self.attribute.kind is AttributeKind.NOMINAL:
            return label
        assert self.discretizer is not None
        bin_index = self.labels.index(label)
        return self.attribute.domain.from_number(self.discretizer.representative(bin_index))


def _orderable(attribute: Attribute, value: Value) -> bool:
    try:
        attribute.domain.to_number(value)
        return True
    except (TypeError, AttributeError, ValueError):
        return False


def _distinct_count(view) -> int:
    """Distinct-value count of a numeric view (bin-count sizing).

    ``len(set(...))`` on the row path's Python list and ``np.unique`` on
    the column path's float array agree: int/float values that compare
    equal hash equal, and ``-0.0 == 0.0`` dedups identically both ways.
    """
    if isinstance(view, np.ndarray):
        return int(np.unique(view).size)
    return len(set(view))


class Dataset:
    """One classifier's training view: encoded base columns + class codes.

    All rows are retained — null and out-of-domain class values are
    legitimate labels (see module docstring), so nothing is silently
    dropped.
    """

    def __init__(
        self,
        table: Table,
        class_attr: str,
        base_attrs: Sequence[str],
        *,
        n_bins: int = 10,
        encode_path: str = "columns",
    ):
        if encode_path not in _ENCODE_PATHS:
            raise ValueError(
                f"encode_path must be one of {_ENCODE_PATHS}, got {encode_path!r}"
            )
        schema = table.schema
        self.class_attr = class_attr
        self.base_attrs = tuple(base_attrs)
        if class_attr in self.base_attrs:
            raise ValueError("class attribute cannot be one of its base attributes")
        self.encoders: dict[str, BaseEncoder] = {
            name: BaseEncoder(schema.attribute(name)) for name in self.base_attrs
        }
        if encode_path == "rows":
            self.columns: dict[str, np.ndarray] = {
                name: self.encoders[name].encode_column_rowwise(table.column(name))
                for name in self.base_attrs
            }
        else:
            self.columns = {
                name: self.encoders[name].encode_column(table.column(name))
                for name in self.base_attrs
            }
        class_values = table.column(class_attr)
        self.class_encoder = ClassEncoder(
            schema.attribute(class_attr),
            class_values,
            n_bins=n_bins,
            encode_path=encode_path,
        )
        if encode_path == "rows":
            self.y: np.ndarray = self.class_encoder.encode_column_rowwise(class_values)
        else:
            self.y = self.class_encoder.encode_column(class_values)
        self.n_rows = table.n_rows

    @property
    def n_labels(self) -> int:
        return self.class_encoder.n_labels

    def encode_record(self, record: Mapping[str, Value]) -> dict[str, float]:
        """Encode one record's base attributes for prediction."""
        return {
            name: self.encoders[name].encode(record.get(name))
            for name in self.base_attrs
        }

    def prediction_view(self) -> "Dataset":
        """A column-less view of this dataset sharing its encoders.

        The parallel audit executor ships fitted classifiers to worker
        processes (:mod:`repro.core.parallel`); classifiers whose
        predictions never consult the training columns (the decision
        tree) swap their dataset for this view so the worker payload
        carries the encoders and class vocabulary — a few kilobytes —
        instead of the encoded training matrix.

        Encoders and the class encoder are shared, not copied: both are
        immutable after fitting.
        """
        instance = Dataset.__new__(Dataset)
        instance.class_attr = self.class_attr
        instance.base_attrs = self.base_attrs
        instance.encoders = self.encoders
        instance.columns = {}
        instance.class_encoder = self.class_encoder
        instance.y = np.empty(0, dtype=np.int64)
        instance.n_rows = 0
        return instance

    @classmethod
    def from_shared(
        cls,
        class_attr: str,
        base_attrs: Sequence[str],
        *,
        encoders: Mapping[str, BaseEncoder],
        columns: Mapping[str, np.ndarray],
        class_encoder: ClassEncoder,
        y: np.ndarray,
        n_rows: int,
    ) -> "Dataset":
        """Assemble a dataset from pre-encoded shared columns.

        The fit fan-out (:class:`repro.core.auditor.FitColumnCache`)
        encodes every column of a table exactly once; each per-attribute
        classifier then gets a dataset view referencing those shared
        arrays instead of re-encoding its own copy — the same
        one-encode-per-column discipline the audit path uses. Arrays are
        shared read-only, never copied.
        """
        instance = cls.__new__(cls)
        instance.class_attr = class_attr
        instance.base_attrs = tuple(base_attrs)
        if class_attr in instance.base_attrs:
            raise ValueError("class attribute cannot be one of its base attributes")
        instance.encoders = {name: encoders[name] for name in instance.base_attrs}
        instance.columns = {name: columns[name] for name in instance.base_attrs}
        instance.class_encoder = class_encoder
        instance.y = y
        instance.n_rows = n_rows
        return instance

    @classmethod
    def for_prediction(
        cls,
        schema,
        class_attr: str,
        base_attrs: Sequence[str],
        class_encoder: ClassEncoder,
    ) -> "Dataset":
        """A column-less dataset usable only for prediction.

        The asynchronous auditing workflow (sec. 2.2) persists fitted
        models and reloads them without the training table; prediction
        needs the encoders and class vocabulary, not the training columns.
        """
        instance = cls.__new__(cls)
        instance.class_attr = class_attr
        instance.base_attrs = tuple(base_attrs)
        instance.encoders = {
            name: BaseEncoder(schema.attribute(name)) for name in instance.base_attrs
        }
        instance.columns = {}
        instance.class_encoder = class_encoder
        instance.y = np.empty(0, dtype=np.int64)
        instance.n_rows = 0
        return instance
