"""The columnar data plane: :class:`ColumnBatch` and the
:class:`ColumnarSource` protocol.

The audit pipeline is fundamentally columnar — every classifier consumes
one attribute column at a time — yet the row protocol of
:mod:`repro.io.base` materializes per-row cell lists that
:class:`~repro.core.auditor.ColumnCache` immediately re-pivots. A
:class:`ColumnBatch` is the bypass: one chunk of a relation held
column-major, duck-typing the slice of the :class:`~repro.schema.table.Table`
surface the encoding caches consume (``schema`` / ``n_rows`` /
``column(name)``), so it flows through :meth:`DataAuditor.audit
<repro.core.auditor.DataAuditor.audit>` and :meth:`DataAuditor.fit
<repro.core.auditor.DataAuditor.fit>` without ever constructing row
lists.

Negotiation
-----------
Every :class:`~repro.io.base.TableSource` can stream column batches —
the base class pivots its row chunks — but only backends that build the
batches **natively** during their single storage pass (CSV, JSONL,
SQLite, Parquet in-tree) set :attr:`~repro.io.base.TableSource.supports_columns`.
:func:`resolve_io_path` is the negotiation rule used by
:meth:`AuditSession.audit_source <repro.core.session.AuditSession.audit_source>`
and the CLI's ``--io-path``:

========  ====================================================
io_path   meaning
========  ====================================================
auto      columns when the backend is natively columnar,
          rows otherwise (third-party row-only sources)
columns   force column batches (row chunks are pivoted)
rows      force the row path (the parity oracle)
========  ====================================================

Error parity
------------
The row path converts cell values row by row, so the first error it
reports is the first bad cell in row-major order. Column-at-a-time
conversion would naturally surface a *column*-major first error instead;
:func:`columns_from_rows` therefore converts the happy path column-wise
(the performance win — no per-row converted lists) and, only when a batch
contains any bad cell, replays the buffered raw rows through
:func:`~repro.io.cells.convert_row` so the raised error is byte-identical
to the row path's. Backends with structural per-row checks (CSV field
counts, JSONL parse/key checks) call :func:`raise_row_errors` on the
rows buffered *before* the structural failure for the same reason.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.io.cells import convert_row
from repro.schema.schema import Schema
from repro.schema.table import Table
from repro.schema.types import Value

__all__ = [
    "ColumnBatch",
    "ColumnarSource",
    "resolve_io_path",
    "columns_from_rows",
    "raise_row_errors",
    "IO_PATHS",
]

IO_PATHS = ("auto", "columns", "rows")


def resolve_io_path(source, io_path: str) -> str:
    """The columnar-vs-rows negotiation rule (see module docstring)."""
    if io_path not in IO_PATHS:
        raise ValueError(f"io_path must be one of {IO_PATHS}, got {io_path!r}")
    if io_path == "auto":
        return "columns" if getattr(source, "supports_columns", False) else "rows"
    return io_path


class ColumnBatch:
    """One chunk of a relation held column-major.

    ``columns`` maps attribute name → list of raw cell values (the same
    Python values the row path yields — never NumPy scalars, so findings
    and rendered output stay byte-identical). The batch duck-types the
    table surface the encoding caches read (``schema``, ``n_rows``,
    ``column``) and adds two optional accelerator hooks the caches probe
    with ``getattr``:

    * :meth:`null_mask` — the column's boolean null mask, cached;
    * :meth:`numeric_view` — a ready float64 numeric view of an ordered
      column, or ``None``. The base class always answers ``None``; the
      Arrow-backed subclass (:class:`repro.io.parquet_backend.ArrowColumnBatch`)
      serves zero-copy-derived views where they are provably
      bit-identical to the encoder's own conversion.
    """

    __slots__ = ("schema", "columns", "n_rows", "_masks")

    def __init__(
        self, schema: Schema, columns: dict[str, list], n_rows: Optional[int] = None
    ):
        self.schema = schema
        self.columns = columns
        if n_rows is None:
            n_rows = len(next(iter(columns.values()))) if columns else 0
        self.n_rows = n_rows
        self._masks: dict[str, np.ndarray] = {}

    # -- pickling (slots + the np-array cache) ------------------------------

    def __getstate__(self):
        # the mask cache is derived data; dispatching a batch to a chunk
        # worker ships only the raw columns
        return (self.schema, self.columns, self.n_rows)

    def __setstate__(self, state):
        self.schema, self.columns, self.n_rows = state
        self._masks = {}

    # -- the Table surface the caches consume -------------------------------

    def column(self, name: str) -> list:
        """Raw cell values of one column (the stored list, not a copy)."""
        return self.columns[name]

    # -- accelerator hooks ---------------------------------------------------

    def null_mask(self, name: str) -> np.ndarray:
        """Boolean null mask of one column (cached per batch)."""
        if name not in self._masks:
            values = self.columns[name]
            self._masks[name] = np.fromiter(
                (v is None for v in values), dtype=bool, count=len(values)
            )
        return self._masks[name]

    def numeric_view(self, name: str) -> Optional[np.ndarray]:
        """Ready float64 view of an ordered column, or ``None`` (default)."""
        return None

    # -- conversions ---------------------------------------------------------

    @classmethod
    def from_table(cls, table: Table) -> "ColumnBatch":
        """Pivot a row-major table (the fallback for row-only sources)."""
        return cls(
            table.schema,
            {name: table.column(name) for name in table.schema.names},
            table.n_rows,
        )

    def to_table(self) -> Table:
        """Materialize as a row-major :class:`Table` (e.g. for the SQL
        engine, which stages rows into the database)."""
        cols = [self.column(name) for name in self.schema.names]
        if not cols:
            return Table(self.schema)
        return Table.adopt(self.schema, [[*cells] for cells in zip(*cols)])

    @classmethod
    def concat(cls, schema: Schema, batches: Iterable["ColumnBatch"]) -> "ColumnBatch":
        """Concatenate batches into one (``read_columns`` materialization)."""
        merged: dict[str, list] = {name: [] for name in schema.names}
        n_rows = 0
        for batch in batches:
            n_rows += batch.n_rows
            for name in schema.names:
                merged[name].extend(batch.column(name))
        return cls(schema, merged, n_rows)

    # -- integrity -----------------------------------------------------------

    def validate(self) -> None:
        """Check every row against the schema — same batch-local row
        numbering and messages as :meth:`Table.validate
        <repro.schema.table.Table.validate>` on the equivalent chunk."""
        cols = [self.column(name) for name in self.schema.names]
        for i, row in enumerate(zip(*cols)):
            try:
                self.schema.validate_row(row)
            except ValueError as exc:
                raise ValueError(f"row {i}: {exc}") from None

    def __repr__(self) -> str:
        return f"ColumnBatch({self.schema!r}, n_rows={self.n_rows})"


@runtime_checkable
class ColumnarSource(Protocol):
    """Protocol of a natively columnar table source.

    All in-tree backends satisfy it; :func:`resolve_io_path` consults
    :attr:`supports_columns` (not an ``isinstance`` check) so third-party
    :class:`~repro.io.base.TableSource` subclasses negotiate to the row
    path automatically under ``io_path="auto"``.
    """

    supports_columns: bool

    def column_batches(
        self, chunk_size: int = ..., *, validate: bool = ...
    ) -> Iterator[ColumnBatch]: ...

    def read_columns(self, *, validate: bool = ...) -> ColumnBatch: ...


def raise_row_errors(
    raw_rows: Sequence,
    row_labels: Sequence[str],
    converters: Sequence,
    names: Sequence[str],
    positions: Optional[Sequence] = None,
) -> None:
    """Replay buffered raw rows row-wise, raising the row path's error
    for the first offending cell (if any); returns when all rows convert.

    *positions* maps schema order to each raw row's layout: ``None`` for
    already schema-ordered rows (SQLite tuples), column indices for CSV
    field lists, attribute names for JSONL dicts.
    """
    for label, row in zip(row_labels, raw_rows):
        cells = row if positions is None else [row[p] for p in positions]
        convert_row(label, cells, converters, names)


def columns_from_rows(
    raw_rows: Sequence,
    row_labels: Sequence[str],
    names: Sequence[str],
    converters: Sequence,
    positions: Optional[Sequence] = None,
) -> list[list[Value]]:
    """Convert buffered raw rows into converted columns, one comprehension
    per attribute (no per-row list construction — the columnar ingest
    win). On any conversion failure the batch is replayed row-wise so the
    raised error is byte-identical to the row path's (see module
    docstring)."""
    try:
        if positions is None:
            return [
                [convert(row[i]) for row in raw_rows]
                for i, convert in enumerate(converters)
            ]
        return [
            [convert(row[p]) for row in raw_rows]
            for p, convert in zip(positions, converters)
        ]
    except ValueError:
        raise_row_errors(raw_rows, row_labels, converters, names, positions)
        raise  # pragma: no cover - column conversion failed, rows did not
