"""Interactive error correction for the quality engineer (secs. 3.1, 5.3).

The paper is explicit that corrections must stay supervised: *"Outliers
can be correct and of great importance for analysis. Therefore, the
correction of outliers should always be supervised by a quality
engineer."* And sec. 5.3: *"In interactive error correction, the
predicted distributions of all classifiers that indicate a data error can
be useful in finding the true reason for a possible error. This is
because a difference between an observed and predicted value sometimes
lays in erroneous base attribute values."*

:class:`ReviewSession` is the programmatic core of that workflow: it
walks the ranked suspicious records, presents *all* classifier objections
for each (not just the strongest), and records the engineer's decisions —
accept the proposal, substitute a custom value, or dismiss the record as
a correct outlier. The session produces the corrected table and an audit
trail of decisions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.findings import AuditReport, Finding
from repro.schema.table import Table
from repro.schema.types import Value

__all__ = ["DecisionKind", "Decision", "ReviewItem", "ReviewSession"]


class DecisionKind(enum.Enum):
    """The quality engineer's possible verdicts for a suspicious record."""

    #: apply one finding's proposed value
    ACCEPT = "accept"
    #: apply an engineer-supplied value to a chosen attribute
    CUSTOM = "custom"
    #: keep the record as is (a correct outlier)
    DISMISS = "dismiss"


@dataclass(frozen=True)
class Decision:
    """One recorded decision of the quality engineer."""

    row: int
    kind: DecisionKind
    attribute: Optional[str] = None
    old_value: Value = None
    new_value: Value = None
    note: str = ""


@dataclass
class ReviewItem:
    """One suspicious record queued for review."""

    row: int
    record_confidence: float
    findings: list[Finding]

    def describe(self) -> str:
        lines = [
            f"record {self.row} (overall error confidence "
            f"{self.record_confidence:.2%}):"
        ]
        for finding in self.findings:
            lines.append(
                f"  [{finding.attribute}] observed {finding.observed_value!r}, "
                f"expected {finding.predicted_label} "
                f"(confidence {finding.confidence:.2%}, n={finding.support:g}) "
                f"→ proposal {finding.proposal!r}"
            )
        return "\n".join(lines)


class ReviewSession:
    """A supervised pass over an audit report's suspicious records.

    The session never mutates the input table; :meth:`corrected_table`
    materializes the decisions taken so far.
    """

    def __init__(self, report: AuditReport, table: Table):
        if report.n_rows != table.n_rows:
            raise ValueError("report and table cover different numbers of rows")
        self.report = report
        self.table = table
        self.decisions: dict[int, Decision] = {}

    # -- queue ----------------------------------------------------------------

    def pending(self) -> list[ReviewItem]:
        """Suspicious records without a decision, ranked by confidence."""
        return [
            ReviewItem(
                row=row,
                record_confidence=self.report.confidence_of(row),
                findings=self.report.findings_for_row(row),
            )
            for row in self.report.suspicious_rows()
            if row not in self.decisions
        ]

    def __iter__(self) -> Iterator[ReviewItem]:
        return iter(self.pending())

    @property
    def n_pending(self) -> int:
        return len(self.pending())

    # -- decisions ------------------------------------------------------------

    def _require_flagged(self, row: int) -> None:
        if not self.report.is_flagged(row):
            raise ValueError(f"row {row} is not among the suspicious records")

    def accept(self, row: int, attribute: Optional[str] = None, note: str = "") -> Decision:
        """Accept a finding's proposal (default: the strongest finding)."""
        self._require_flagged(row)
        findings = self.report.findings_for_row(row)
        if attribute is None:
            finding = max(findings, key=lambda f: f.confidence)
        else:
            matching = [f for f in findings if f.attribute == attribute]
            if not matching:
                raise ValueError(f"no finding for attribute {attribute!r} in row {row}")
            finding = matching[0]
        decision = Decision(
            row=row,
            kind=DecisionKind.ACCEPT,
            attribute=finding.attribute,
            old_value=self.table.cell(row, finding.attribute),
            new_value=finding.proposal,
            note=note,
        )
        self.decisions[row] = decision
        return decision

    def correct(self, row: int, attribute: str, value: Value, note: str = "") -> Decision:
        """Apply an engineer-supplied replacement value."""
        self._require_flagged(row)
        attribute_obj = self.table.schema.attribute(attribute)
        if not attribute_obj.admits(value):
            raise ValueError(
                f"value {value!r} is not admissible for attribute {attribute!r}"
            )
        decision = Decision(
            row=row,
            kind=DecisionKind.CUSTOM,
            attribute=attribute,
            old_value=self.table.cell(row, attribute),
            new_value=value,
            note=note,
        )
        self.decisions[row] = decision
        return decision

    def dismiss(self, row: int, note: str = "") -> Decision:
        """Mark the record as a correct outlier (no change)."""
        self._require_flagged(row)
        decision = Decision(row=row, kind=DecisionKind.DISMISS, note=note)
        self.decisions[row] = decision
        return decision

    def undo(self, row: int) -> None:
        """Drop the decision for *row* (it returns to the queue)."""
        self.decisions.pop(row, None)

    # -- results ---------------------------------------------------------------

    def corrected_table(self) -> Table:
        """A copy of the table with all accepted/custom decisions applied."""
        corrected = self.table.copy()
        for decision in self.decisions.values():
            if decision.kind is DecisionKind.DISMISS:
                continue
            assert decision.attribute is not None
            corrected.set_cell(decision.row, decision.attribute, decision.new_value)
        return corrected

    def summary(self) -> str:
        counts = {kind: 0 for kind in DecisionKind}
        for decision in self.decisions.values():
            counts[decision.kind] += 1
        return (
            f"reviewed {len(self.decisions)} of {self.report.n_suspicious} "
            f"suspicious records: {counts[DecisionKind.ACCEPT]} accepted, "
            f"{counts[DecisionKind.CUSTOM]} custom, "
            f"{counts[DecisionKind.DISMISS]} dismissed; "
            f"{self.n_pending} pending"
        )
