"""E12 — scalability of structure induction and deviation detection.

Paper sec. 8: *"As the full database is to be screened, only data mining
algorithms that scale well with the size of training sets can be
employed."* (And sec. 6.2 reports 21 minutes for 200 000 records on an
Athlon 900 MHz.)

The bench measures fit/audit wall-clock over growing QUIS-sample sizes
and checks near-linear scaling (doubling the data must far less than
quadruple the time).
"""

import time

from repro.core import AuditorConfig, DataAuditor
from repro.quis import generate_quis_sample

SIZES = (10_000, 20_000, 40_000, 80_000)


def test_runtime_scales_near_linearly(benchmark, record_table):
    def run_all():
        measurements = []
        for size in SIZES:
            sample = generate_quis_sample(size, seed=2003)
            auditor = DataAuditor(
                sample.schema, AuditorConfig(min_error_confidence=0.8)
            )
            started = time.perf_counter()
            auditor.fit(sample.dirty)
            fit_seconds = time.perf_counter() - started
            started = time.perf_counter()
            auditor.audit(sample.dirty)
            audit_seconds = time.perf_counter() - started
            measurements.append((size, fit_seconds, audit_seconds))
        return measurements

    measurements = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "E12 — runtime scaling on QUIS samples "
        "(paper: 21 min for 200k records on an Athlon 900 MHz)",
        f"{'records':>9}  {'fit[s]':>8}  {'audit[s]':>9}  {'total[s]':>9}  "
        f"{'rec/s':>8}",
    ]
    for size, fit_seconds, audit_seconds in measurements:
        total = fit_seconds + audit_seconds
        lines.append(
            f"{size:>9}  {fit_seconds:>8.2f}  {audit_seconds:>9.2f}  "
            f"{total:>9.2f}  {size / total:>8.0f}"
        )
    smallest = measurements[0]
    largest = measurements[-1]
    ratio = (largest[1] + largest[2]) / max(smallest[1] + smallest[2], 1e-9)
    growth = largest[0] / smallest[0]
    lines.append(
        f"\n{growth:.0f}× more records → {ratio:.1f}× more time "
        f"(near-linear; super-quadratic would be {growth ** 2:.0f}×)"
    )
    record_table("E12_scaling", "\n".join(lines))

    # well below quadratic growth — the paper's scalability requirement
    assert ratio < growth * 3
    # and the absolute throughput makes full-database screening practical
    total_largest = largest[1] + largest[2]
    assert largest[0] / total_largest > 500  # records per second
