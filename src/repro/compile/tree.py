"""Decision-tree → SQL compilation (path-by-path ``CASE`` routing).

A fitted tree partitions the cleanly-routable rows into its leaves: a
nested ``CASE`` expression walks the splits exactly as
:func:`repro.mining.tree.classify.predict_distribution_batch` does —
nominal splits compare the raw cell against the trained branch values
(out-of-domain cells take the *unknown* branch when one was trained),
numeric splits compare against the bound threshold — and yields the
leaf index, or ``-1`` for any row the batch path would *blend* (null
split value, or a category without a trained branch).

**Parity argument.** A cleanly-routed row's prediction is exactly its
leaf's distribution ``counts / n`` with support ``n``; both are
functions of the leaf alone. The per-leaf × per-observed-class error
confidences are therefore finite and precomputed here with the same
vectorized primitives the audit runs, so the SQL ``IN`` filter over
``(leaf, observed)`` keys reproduces the in-memory threshold test bit
for bit. Blended rows (``-1``) and rows with unclean storage are
handed to the Python re-check, which runs the unmodified batch code.
"""

from __future__ import annotations

import numpy as np

from repro.compile.expressions import SqlBuilder, value_le_expr
from repro.compile.screen import (
    FamilyScreen,
    NotCompilable,
    flagged_pair_keys,
    pair_suspect_sql,
)
from repro.mining.tree.node import Leaf, NominalSplit, Node, NumericSplit

__all__ = ["compile_tree"]


def compile_tree(
    builder: SqlBuilder, classifier, config, obs_ref: str
) -> FamilyScreen:
    """Compile a fitted :class:`~repro.mining.tree_classifier.TreeClassifier`
    into a :class:`~repro.compile.screen.FamilyScreen`."""
    root = classifier.root
    dataset = classifier.dataset
    if root is None or dataset is None:
        raise NotCompilable("tree classifier is not fitted")
    if root.depth() * 2 > builder.dialect.max_expression_depth:
        raise NotCompilable(
            f"tree depth {root.depth()} exceeds the dialect's expression "
            f"nesting budget"
        )
    counts_rows: list[np.ndarray] = []

    def node_expr(node: Node) -> str:
        if isinstance(node, Leaf):
            counts_rows.append(np.asarray(node.counts, dtype=float))
            return str(len(counts_rows) - 1)
        if isinstance(node, NominalSplit):
            encoder = dataset.encoders.get(node.attribute)
            if encoder is None or not encoder.categorical:
                raise NotCompilable(
                    f"nominal split on non-categorical attribute "
                    f"{node.attribute!r}"
                )
            col = builder.col(node.attribute)
            arms = [f"WHEN {col} IS NULL THEN -1"]
            for code, value in enumerate(encoder.attribute.domain.values):  # type: ignore[attr-defined]
                child = node.branches.get(code)
                target = node_expr(child) if child is not None else "-1"
                arms.append(f"WHEN {col} = {builder.bind(value)} THEN {target}")
            unknown_child = node.branches.get(encoder.unknown_code)
            else_target = (
                node_expr(unknown_child) if unknown_child is not None else "-1"
            )
            return "CASE " + " ".join(arms) + f" ELSE {else_target} END"
        if isinstance(node, NumericSplit):
            encoder = dataset.encoders.get(node.attribute)
            if encoder is None or encoder.categorical:
                raise NotCompilable(
                    f"numeric split on non-ordered attribute {node.attribute!r}"
                )
            col = builder.col(node.attribute)
            condition = value_le_expr(builder, encoder.attribute, node.threshold)
            return (
                f"CASE WHEN {col} IS NULL THEN -1"
                f" WHEN {condition} THEN {node_expr(node.low)}"
                f" ELSE {node_expr(node.high)} END"
            )
        raise NotCompilable(f"unknown tree node type {type(node).__name__}")

    group_sql = node_expr(root)
    n_labels = len(dataset.class_encoder.labels)
    probabilities = np.empty((len(counts_rows), n_labels), dtype=float)
    support = np.empty(len(counts_rows), dtype=float)
    # mirror the Leaf handling of predict_distribution_batch exactly
    for index, counts in enumerate(counts_rows):
        n = float(counts.sum())
        if n <= 0:
            probabilities[index] = np.full(n_labels, 1.0 / max(n_labels, 1))
            support[index] = 0.0
        else:
            probabilities[index] = counts / n
            support[index] = n
    keys = flagged_pair_keys(probabilities, support, config)
    group_ref = builder.dialect.quote("__audit_grp")
    return FamilyScreen(
        suspect_sql=pair_suspect_sql(group_ref, obs_ref, n_labels, keys),
        levels=[[("__audit_grp", group_sql)]],
    )
