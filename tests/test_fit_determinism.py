"""Cross-process fit determinism: same seed + same table → the same bytes.

Each test runs the same fit in two **fresh interpreter processes** with
different ``PYTHONHASHSEED`` values and compares model fingerprints.
That guards against nondeterminism that in-process parity tests can
never see — ``set``/``dict`` iteration order leaking into split
tie-breaks, hash-randomized string ordering, or NumPy state bleeding
between fits. The QUIS sample generator is seeded, so any fingerprint
mismatch is the fit's fault, not the data's.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import repro

_SRC = str(Path(repro.__file__).resolve().parents[1])

_SCRIPT = """
import hashlib, json
from repro.core.auditor import AuditorConfig, DataAuditor
from repro.core.serialize import auditor_to_dict
from repro.mining.rule_induction import PrismClassifier
from repro.quis.simulator import generate_quis_sample

def make_prism(config):
    return PrismClassifier()

table = generate_quis_sample(400, seed=2003).dirty

# the persistable tree model, fitted on the vectorized path with a pool
tree = DataAuditor(table.schema, AuditorConfig(fit_path="columns", fit_n_jobs=2))
tree.fit(table)
document = json.dumps(auditor_to_dict(tree), sort_keys=True).encode()
print("tree", hashlib.sha256(document).hexdigest())

# a rule-induction family (seeded subsampling) via the fit_state fingerprint
prism = DataAuditor(table.schema, AuditorConfig(classifier_factory=make_prism))
prism.fit(table)
states = {name: c.fit_state() for name, c in prism.classifiers.items()}
print("prism", hashlib.sha256(json.dumps(states, sort_keys=True).encode()).hexdigest())
"""


def _run_fit_process(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = _SRC
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_fit_is_deterministic_across_processes():
    first = _run_fit_process("0")
    second = _run_fit_process("31337")
    assert first == second
    # sanity: both families actually reported a fingerprint
    lines = dict(line.split() for line in first.strip().splitlines())
    assert set(lines) == {"tree", "prism"}
    assert all(len(digest) == 64 for digest in lines.values())
