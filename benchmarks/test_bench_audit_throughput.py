"""E13 — audit-phase throughput of the batch-first classifier protocol.

The deviation-detection phase is the online half of sec. 2.2's
warehouse-loading split ("new data can be checked for deviations and
loaded quickly"), so its throughput — not the offline induction — bounds
load latency. This bench measures rows/sec of the vectorized
``predict_batch`` audit path against the row-at-a-time
``predict_encoded`` fallback (the pre-redesign semantics, still available
through the ABC) on one fitted model, and doubles as the CI smoke check
that the batch path stays fast.
"""

import time

from repro.core import AuditorConfig, DataAuditor
from repro.mining.base import AttributeClassifier
from repro.quis import generate_quis_sample

N_RECORDS = 40_000
#: rows audited by the (slow) row-loop fallback; throughput extrapolates
ROW_LOOP_RECORDS = 4_000


def test_batch_audit_throughput(benchmark, record_table):
    sample = generate_quis_sample(N_RECORDS, seed=2003)
    auditor = DataAuditor(sample.schema, AuditorConfig(min_error_confidence=0.8))
    auditor.fit(sample.dirty)

    def batch_audit():
        return auditor.audit(sample.dirty)

    report = benchmark.pedantic(batch_audit, rounds=1, iterations=1)
    started = time.perf_counter()
    auditor.audit(sample.dirty)
    batch_seconds = time.perf_counter() - started
    batch_rate = N_RECORDS / batch_seconds

    # the same audit through the ABC's row-loop fallback, on a slice;
    # patch once per distinct class (all classifiers share a type here —
    # saving "originals" per attribute would capture the patched method)
    subset = sample.dirty.select(range(ROW_LOOP_RECORDS))
    patched_classes = {type(c) for c in auditor.classifiers.values()}
    originals = {cls: cls.predict_batch for cls in patched_classes}
    for cls in patched_classes:
        cls.predict_batch = AttributeClassifier.predict_batch
    try:
        started = time.perf_counter()
        row_report = auditor.audit(subset)
        row_seconds = time.perf_counter() - started
    finally:
        for cls, original in originals.items():
            cls.predict_batch = original
    row_rate = ROW_LOOP_RECORDS / row_seconds
    speedup = batch_rate / row_rate

    lines = [
        "E13 — audit-phase throughput, batch protocol vs row loop",
        f"{'path':>10}  {'records':>8}  {'time[s]':>8}  {'rows/s':>9}",
        f"{'batch':>10}  {N_RECORDS:>8}  {batch_seconds:>8.2f}  {batch_rate:>9.0f}",
        f"{'row loop':>10}  {ROW_LOOP_RECORDS:>8}  {row_seconds:>8.2f}  {row_rate:>9.0f}",
        f"\nvectorized batch path: {speedup:.1f}× the row-loop throughput",
    ]
    record_table("E13_audit_throughput", "\n".join(lines))

    # sanity: same findings per row regardless of path
    assert row_report.findings == [
        finding for finding in report.findings if finding.row < ROW_LOOP_RECORDS
    ]
    # the batch redesign's reason to exist: a multiple of row-loop speed
    assert speedup > 3.0
    # absolute floor so CI catches a vectorization regression
    assert batch_rate > 10_000
