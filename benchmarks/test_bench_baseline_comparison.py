"""E10 — comparison against the related-work baselines (paper sec. 7).

The paper argues for its multiple classification / regression approach
against (a) Hipp et al.'s association-rule data quality mining — additive
confidence scoring, no numeric dependencies — and (b) distance-based
outlier detection (LOF) — needs a distance function that is hard to
define for mostly-nominal data and confounds rarity with error.

The bench runs all three tools on the same polluted base-configuration
table and evaluates them with the sec.-4.3 metrics. Expected shape: the
paper's auditor dominates on sensitivity at comparable specificity; the
association baseline comes closest (it models the same nominal
dependencies) but misses numeric/date corruptions; LOF trails clearly.
"""

import random

from repro.baselines import AprioriMiner, AssociationRuleAuditor, LofAuditor
from repro.core import AuditorConfig, DataAuditor
from repro.generator import base_profile
from repro.pollution import PollutionPipeline, default_polluters
from repro.testenv import evaluate_audit

N_RECORDS = 4000
N_RULES = 100


def test_baseline_comparison(benchmark, record_table):
    profile = base_profile(n_rules=N_RULES, seed=42)
    generator = profile.build_generator()
    clean = generator.generate(N_RECORDS, random.Random(1))
    dirty, log = PollutionPipeline(default_polluters()).apply(clean, random.Random(2))

    def run_all():
        tools = [
            (
                "multiple classification (paper)",
                DataAuditor(profile.schema, AuditorConfig(min_error_confidence=0.8)),
            ),
            (
                "association rules (Hipp et al.)",
                AssociationRuleAuditor(
                    profile.schema,
                    miner=AprioriMiner(min_support=0.02, min_confidence=0.9),
                    min_score=0.9,
                ),
            ),
            (
                "LOF outlier detection",
                LofAuditor(profile.schema, k=10, threshold=2.0, max_rows=N_RECORDS + 500),
            ),
        ]
        results = []
        for name, tool in tools:
            tool.fit(dirty)
            report = tool.audit(dirty)
            evaluation = evaluate_audit(report, log, clean, dirty)
            results.append((name, evaluation))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "E10 — paper's auditor vs. related-work baselines "
        f"({N_RECORDS} records, {N_RULES} rules, factor 1)",
        f"{'tool':<34}  sensitivity  specificity  precision",
    ]
    for name, evaluation in results:
        lines.append(
            f"{name:<34}  {evaluation.sensitivity:>11.3f}  "
            f"{evaluation.specificity:>11.4f}  {evaluation.records.precision:>9.3f}"
        )
    record_table("E10_baseline_comparison", "\n".join(lines))

    by_name = dict(results)
    ours = by_name["multiple classification (paper)"]
    association = by_name["association rules (Hipp et al.)"]
    lof = by_name["LOF outlier detection"]
    # the paper's tool detects the most at high specificity
    assert ours.sensitivity > association.sensitivity
    assert ours.sensitivity > lof.sensitivity
    assert ours.specificity > 0.97
    # LOF on mostly-nominal relational data is not competitive
    assert lof.sensitivity < ours.sensitivity * 0.6 or lof.specificity < 0.9
