"""Binomial confidence-interval bounds.

Several places in the paper reduce "how sure are we about an observed
relative frequency" to the bounds of a binomial confidence interval:

* C4.5's pessimistic classification error uses ``rightBound(p, n)``
  (sec. 5.1.2);
* the error confidence of Def. 7 is
  ``max(0, leftBound(P(ĉ), n) − rightBound(P(c), n))``;
* the ``minInst`` pre-pruning bound of sec. 5.4 inverts the same
  expression.

Two interval methods are provided:

* **Wilson score** (default) — closed form, accurate also for small *n*
  and extreme *p*, no special functions needed;
* **Clopper–Pearson** (exact) — via the regularized incomplete beta
  inverse; uses :mod:`scipy` when available and falls back to a bisection
  on a local incomplete-beta implementation otherwise.

All bounds are one-sided at the given confidence level, matching C4.5's
``CF`` semantics (the default 0.75 corresponds to a moderately pessimistic
estimate; the paper says the level "can be parameterized").
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = [
    "IntervalMethod",
    "ConfidenceBounds",
    "wilson_lower",
    "wilson_upper",
    "wilson_lower_array",
    "wilson_upper_array",
    "clopper_pearson_lower",
    "clopper_pearson_upper",
    "normal_quantile",
]


def normal_quantile(probability: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation,
    |relative error| < 1.15e-9 — ample for confidence bounds)."""
    if not 0.0 < probability < 1.0:
        raise ValueError("probability must lie strictly between 0 and 1")
    # coefficients of Acklam's approximation
    a = (
        -3.969683028665376e01,
        2.209460984245205e02,
        -2.759285104469687e02,
        1.383577518672690e02,
        -3.066479806614716e01,
        2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01,
        1.615858368580409e02,
        -1.556989798598866e02,
        6.680131188771972e01,
        -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e00,
        -2.549732539343734e00,
        4.374664141464968e00,
        2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e00,
        3.754408661907416e00,
    )
    p_low, p_high = 0.02425, 1 - 0.02425
    if probability < p_low:
        q = math.sqrt(-2 * math.log(probability))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if probability > p_high:
        q = math.sqrt(-2 * math.log(1 - probability))
        return -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = probability - 0.5
    r = q * q
    return (
        (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
        * q
        / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)
    )


def wilson_lower(p: float, n: float, confidence: float) -> float:
    """One-sided Wilson score lower bound for a Binomial proportion."""
    if n <= 1e-9:  # guards float underflow for near-zero fractional weights
        return 0.0
    p = min(max(p, 0.0), 1.0)
    z = normal_quantile(confidence)
    z2 = z * z
    denominator = 1.0 + z2 / n
    center = p + z2 / (2.0 * n)
    margin = z * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    return max(0.0, (center - margin) / denominator)


def wilson_upper(p: float, n: float, confidence: float) -> float:
    """One-sided Wilson score upper bound for a Binomial proportion."""
    if n <= 1e-9:
        return 1.0
    p = min(max(p, 0.0), 1.0)
    z = normal_quantile(confidence)
    z2 = z * z
    denominator = 1.0 + z2 / n
    center = p + z2 / (2.0 * n)
    margin = z * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    return min(1.0, (center + margin) / denominator)


def wilson_lower_array(p: np.ndarray, n: np.ndarray, confidence: float) -> np.ndarray:
    """Vectorized :func:`wilson_lower` (same guards, same arithmetic)."""
    p = np.clip(np.asarray(p, dtype=float), 0.0, 1.0)
    n = np.asarray(n, dtype=float)
    z = normal_quantile(confidence)
    z2 = z * z
    with np.errstate(divide="ignore", invalid="ignore"):
        denominator = 1.0 + z2 / n
        center = p + z2 / (2.0 * n)
        margin = z * np.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
        lower = np.maximum(0.0, (center - margin) / denominator)
    return np.where(n <= 1e-9, 0.0, lower)


def wilson_upper_array(p: np.ndarray, n: np.ndarray, confidence: float) -> np.ndarray:
    """Vectorized :func:`wilson_upper` (same guards, same arithmetic)."""
    p = np.clip(np.asarray(p, dtype=float), 0.0, 1.0)
    n = np.asarray(n, dtype=float)
    z = normal_quantile(confidence)
    z2 = z * z
    with np.errstate(divide="ignore", invalid="ignore"):
        denominator = 1.0 + z2 / n
        center = p + z2 / (2.0 * n)
        margin = z * np.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
        upper = np.minimum(1.0, (center + margin) / denominator)
    return np.where(n <= 1e-9, 1.0, upper)


# -- exact (Clopper–Pearson) ----------------------------------------------------


def _beta_ppf(q: float, alpha: float, beta: float) -> float:
    """Quantile of the Beta(alpha, beta) distribution.

    Uses scipy when importable, otherwise bisects the regularized
    incomplete beta function (log-gamma based continued fraction).
    """
    try:  # pragma: no cover - fast path depends on environment
        from scipy.special import betaincinv

        return float(betaincinv(alpha, beta, q))
    except Exception:  # pragma: no cover - fallback exercised in CI
        low, high = 0.0, 1.0
        for _ in range(200):
            mid = (low + high) / 2.0
            if _betainc(alpha, beta, mid) < q:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0


def _betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b) (Lentz's algorithm)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    log_beta = math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
    front = math.exp(log_beta + a * math.log(x) + b * math.log(1.0 - x))
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def _betacf(a: float, b: float, x: float) -> float:
    max_iterations, epsilon, tiny = 200, 3e-12, 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c, d = 1.0, 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        numerator = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < epsilon:
            break
    return h


def clopper_pearson_lower(p: float, n: float, confidence: float) -> float:
    """Exact one-sided lower bound (successes inferred as ``round(p*n)``)."""
    if n <= 0:
        return 0.0
    successes = round(min(max(p, 0.0), 1.0) * n)
    if successes <= 0:
        return 0.0
    return _beta_ppf(1.0 - confidence, successes, n - successes + 1)


def clopper_pearson_upper(p: float, n: float, confidence: float) -> float:
    """Exact one-sided upper bound (successes inferred as ``round(p*n)``)."""
    if n <= 0:
        return 1.0
    successes = round(min(max(p, 0.0), 1.0) * n)
    if successes >= n:
        return 1.0
    return _beta_ppf(confidence, successes + 1, n - successes)


class IntervalMethod(enum.Enum):
    """Available binomial confidence-interval constructions."""

    WILSON = "wilson"
    CLOPPER_PEARSON = "clopper-pearson"


@dataclass(frozen=True)
class ConfidenceBounds:
    """A parameterized (method, confidence level) pair exposing the
    ``leftBound`` / ``rightBound`` operations the paper's formulas use."""

    confidence: float = 0.75
    method: IntervalMethod = IntervalMethod.WILSON

    def __post_init__(self) -> None:
        if not 0.5 <= self.confidence < 1.0:
            raise ValueError("confidence must lie in [0.5, 1)")

    def left_bound(self, p: float, n: float) -> float:
        """``leftBound(p, n)`` — lower bound for the true probability."""
        if self.method is IntervalMethod.WILSON:
            return wilson_lower(p, n, self.confidence)
        return clopper_pearson_lower(p, n, self.confidence)

    def right_bound(self, p: float, n: float) -> float:
        """``rightBound(p, n)`` — upper bound for the true probability."""
        if self.method is IntervalMethod.WILSON:
            return wilson_upper(p, n, self.confidence)
        return clopper_pearson_upper(p, n, self.confidence)

    def left_bound_array(self, p: np.ndarray, n: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`left_bound` (Clopper–Pearson falls back to a
        scalar loop — its beta-quantile inversion has no array form)."""
        if self.method is IntervalMethod.WILSON:
            return wilson_lower_array(p, n, self.confidence)
        return np.asarray(
            [self.left_bound(float(pi), float(ni)) for pi, ni in zip(p, n)],
            dtype=float,
        )

    def right_bound_array(self, p: np.ndarray, n: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`right_bound`."""
        if self.method is IntervalMethod.WILSON:
            return wilson_upper_array(p, n, self.confidence)
        return np.asarray(
            [self.right_bound(float(pi), float(ni)) for pi, ni in zip(p, n)],
            dtype=float,
        )

    def pessimistic_error(self, error_rate: float, n: float) -> float:
        """C4.5's pessimistic classification error: the right bound of the
        observed misclassification rate (sec. 5.1.2)."""
        return self.right_bound(error_rate, n)
