"""ASCII rendering of decision trees (model inspection / debugging).

The structure model the auditor induces is meant to be read by quality
engineers (sec. 6.2 shows induced rules to domain experts); besides the
rule-set view (:mod:`repro.mining.tree.rules`) this module renders the
tree itself with per-node class distributions and supports.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mining.dataset import Dataset
from repro.mining.tree.node import Leaf, Node, NominalSplit, NumericSplit
from repro.schema.types import AttributeKind

__all__ = ["render_tree"]


def _distribution_summary(node: Node, dataset: Dataset, top: int = 2) -> str:
    counts = node.counts
    n = counts.sum()
    if n <= 0:
        return "empty"
    labels = dataset.class_encoder.labels
    order = np.argsort(counts)[::-1][:top]
    parts = [
        f"{labels[i]}:{counts[i] / n:.2f}" for i in order if counts[i] > 0
    ]
    return f"n={n:g} [{', '.join(parts)}]"


def _branch_label(dataset: Dataset, attribute: str, code: int) -> str:
    decoded = dataset.encoders[attribute].decode_category(code)
    return "<unknown>" if decoded is None else decoded


def _threshold_label(dataset: Dataset, attribute: str, threshold: float) -> str:
    domain_attribute = dataset.encoders[attribute].attribute
    if domain_attribute.kind is AttributeKind.DATE:
        return domain_attribute.domain.from_number(threshold).isoformat()
    return f"{threshold:g}"


def render_tree(
    node: Node,
    dataset: Dataset,
    *,
    indent: str = "",
    max_depth: Optional[int] = None,
) -> str:
    """Render *node* (grown over *dataset*) as an indented ASCII tree."""
    lines: list[str] = []
    _render(node, dataset, indent, lines, max_depth, depth=0)
    return "\n".join(lines)


def _render(
    node: Node,
    dataset: Dataset,
    indent: str,
    lines: list[str],
    max_depth: Optional[int],
    depth: int,
) -> None:
    summary = _distribution_summary(node, dataset)
    if isinstance(node, Leaf):
        label = dataset.class_encoder.labels[node.majority]
        lines.append(f"{indent}→ {label}  ({summary})")
        return
    if max_depth is not None and depth >= max_depth:
        lines.append(f"{indent}…  ({summary})")
        return
    if isinstance(node, NominalSplit):
        lines.append(f"{indent}split on {node.attribute}  ({summary})")
        for code in sorted(node.branches):
            value = _branch_label(dataset, node.attribute, code)
            lines.append(f"{indent}├─ {node.attribute} = {value}")
            _render(
                node.branches[code], dataset, indent + "│    ", lines, max_depth, depth + 1
            )
        return
    if isinstance(node, NumericSplit):
        shown = _threshold_label(dataset, node.attribute, node.threshold)
        lines.append(f"{indent}split on {node.attribute}  ({summary})")
        lines.append(f"{indent}├─ {node.attribute} <= {shown}")
        _render(node.low, dataset, indent + "│    ", lines, max_depth, depth + 1)
        lines.append(f"{indent}├─ {node.attribute} > {shown}")
        _render(node.high, dataset, indent + "│    ", lines, max_depth, depth + 1)
        return
    raise TypeError(f"unknown node type: {type(node).__name__}")
