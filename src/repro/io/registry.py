"""The format registry: name → backend, with auto-detection.

One table of :class:`FormatSpec` entries drives everything that needs
to know "which formats exist": the CLI's ``--input-format`` /
``--output-format`` choices, extension-based detection
(:func:`detect_format`), the README's support matrix, and the
convenience one-liners (:func:`read_table`, :func:`write_table`).

Detection rules, in order:

1. a ``sqlite:`` URI (``sqlite:///db.sqlite?table=t``) → ``sqlite``,
   with the ``table`` option taken from the query string;
2. a path suffix registered by a backend (``.csv``, ``.jsonl`` /
   ``.ndjson``, ``.db`` / ``.sqlite`` / ``.sqlite3``, ``.parquet`` /
   ``.pq``) → that backend;
3. otherwise a :class:`ValueError` listing the known extensions —
   pass ``format=`` explicitly for unconventional names.

Third-party backends register the same way the built-ins do:
``register_format(FormatSpec(...))``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Union

from repro.io.base import DEFAULT_CHUNK_SIZE, TableSink, TableSource
from repro.io.csv_backend import CsvTableSink, CsvTableSource
from repro.io.jsonl_backend import JsonlTableSink, JsonlTableSource
from repro.io.parquet_backend import ParquetTableSink, ParquetTableSource
from repro.io.sqlite_backend import (
    SqliteTableSink,
    SqliteTableSource,
    parse_sqlite_url,
)
from repro.schema.schema import Schema
from repro.schema.table import Table

__all__ = [
    "FormatSpec",
    "register_format",
    "available_formats",
    "format_spec",
    "detect_format",
    "open_source",
    "open_sink",
    "read_table",
    "read_table_chunks",
    "write_table",
]

Location = Union[str, Path, Any]  # paths, URIs, or open text streams


@dataclass(frozen=True)
class FormatSpec:
    """One registered storage format."""

    name: str
    extensions: tuple[str, ...]
    source_factory: Optional[Callable[..., TableSource]]
    sink_factory: Optional[Callable[..., TableSink]]
    description: str = ""
    #: optional third-party dependency the backend needs at use time
    requires: Optional[str] = None


_REGISTRY: dict[str, FormatSpec] = {}


def register_format(spec: FormatSpec) -> None:
    """Register (or replace) a storage format."""
    _REGISTRY[spec.name] = spec


def available_formats() -> tuple[FormatSpec, ...]:
    """All registered formats, in registration order."""
    return tuple(_REGISTRY.values())


def format_spec(name: str) -> FormatSpec:
    """Look a format up by name (``ValueError`` naming the options)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown table format {name!r} (known: {known})") from None


def detect_format(location: Location) -> str:
    """Infer the format of *location* from its URI scheme or extension."""
    text = str(location)
    if text.startswith("sqlite:"):
        return "sqlite"
    suffix = Path(text).suffix.lower()
    if suffix:
        for spec in _REGISTRY.values():
            if suffix in spec.extensions:
                return spec.name
    known = ", ".join(
        ext for spec in _REGISTRY.values() for ext in spec.extensions
    )
    raise ValueError(
        f"cannot infer a table format from {location!r} "
        f"(known extensions: {known}; pass format= explicitly)"
    )


def _resolve(
    location: Location, format: Optional[str]
) -> tuple[FormatSpec, Location, dict]:
    """Normalize (location, format) to (spec, concrete target, options)."""
    options: dict = {}
    if isinstance(location, str) and location.startswith("sqlite:"):
        if format not in (None, "sqlite"):
            raise ValueError(
                f"{location!r} is a sqlite URI but format={format!r} was "
                f"requested; drop the override or pass a plain path"
            )
        location, options = parse_sqlite_url(location)
        format = "sqlite"
    spec = format_spec(format) if format is not None else format_spec(
        detect_format(location)
    )
    return spec, location, options


def open_source(
    schema: Schema,
    location: Location,
    *,
    format: Optional[str] = None,
    **options,
) -> TableSource:
    """Open a :class:`TableSource` for *location* (format auto-detected)."""
    spec, target, url_options = _resolve(location, format)
    if spec.source_factory is None:
        raise ValueError(f"format {spec.name!r} does not support reading")
    return spec.source_factory(schema, target, **{**url_options, **options})


def open_sink(
    schema: Schema,
    location: Location,
    *,
    format: Optional[str] = None,
    **options,
) -> TableSink:
    """Open a :class:`TableSink` for *location* (format auto-detected)."""
    spec, target, url_options = _resolve(location, format)
    if spec.sink_factory is None:
        raise ValueError(f"format {spec.name!r} does not support writing")
    return spec.sink_factory(schema, target, **{**url_options, **options})


def read_table(
    schema: Schema,
    location: Location,
    *,
    format: Optional[str] = None,
    validate: bool = False,
    **options,
) -> Table:
    """Read a whole table from any registered format."""
    with open_source(schema, location, format=format, **options) as source:
        return source.read(validate=validate)


def read_table_chunks(
    schema: Schema,
    location: Location,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    format: Optional[str] = None,
    validate: bool = False,
    **options,
) -> Iterator[Table]:
    """Stream a table from any registered format in bounded chunks."""
    with open_source(schema, location, format=format, **options) as source:
        yield from source.chunks(chunk_size, validate=validate)


def write_table(
    data: Table,
    location: Location,
    *,
    format: Optional[str] = None,
    **options,
) -> None:
    """Write a whole table to any registered format.

    (The positional parameter is ``data``, not ``table``, so the SQLite
    backend's ``table=`` option stays usable as a keyword:
    ``write_table(loads, "wh.db", table="loads")``.)
    """
    with open_sink(data.schema, location, format=format, **options) as sink:
        sink.write(data)


register_format(
    FormatSpec(
        name="csv",
        extensions=(".csv",),
        source_factory=CsvTableSource,
        sink_factory=CsvTableSink,
        description="header-checked text tables (the pipeline's default)",
    )
)
register_format(
    FormatSpec(
        name="jsonl",
        extensions=(".jsonl", ".ndjson"),
        source_factory=JsonlTableSource,
        sink_factory=JsonlTableSink,
        description="one JSON object per row, keyed by attribute name",
    )
)
register_format(
    FormatSpec(
        name="sqlite",
        extensions=(".db", ".sqlite", ".sqlite3"),
        source_factory=SqliteTableSource,
        sink_factory=SqliteTableSink,
        description="warehouse tables via the stdlib sqlite3 module",
    )
)
register_format(
    FormatSpec(
        name="parquet",
        extensions=(".parquet", ".pq"),
        source_factory=ParquetTableSource,
        sink_factory=ParquetTableSink,
        description="columnar extracts (optional, needs pyarrow)",
        requires="pyarrow",
    )
)
