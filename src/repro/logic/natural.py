"""Naturalness restrictions on TDG-formulae and rule sets (Defs. 4–6).

Randomly constructed rules can be contradictory or tautological (sec.
4.1.2 shows ``A = v₁ → A = v₂``, ``A = v₁ ∧ A = v₂ → B = v₁`` and
``A = v₁ → A ≠ v₂`` as counterexamples). If the number of generated rules
is supposed to reflect the *structural strength* of the data, such
degenerate rules must be excluded. The paper adds three layers of semantic
restrictions, implemented here:

* **Natural TDG-formula** (Def. 4): atoms must be satisfiable under the
  schema's domains; in a conjunction no conjunct may be implied by the
  others and the whole must be satisfiable; in a disjunction no disjunct
  may be implied by the disjunction of the others.
* **Natural TDG-rule** (Def. 5): both sides natural, ``α ∧ β`` satisfiable
  (no contradiction), and ``α ⇏ β`` (no tautological rule).
* **Natural rule set** (Def. 6): a *pairwise* check — whenever one
  premise implies another (``αⱼ ⇒ αᵢ``), the combined consequences must be
  jointly satisfiable with the stronger premise (``αⱼ ∧ βᵢ ∧ βⱼ`` SAT) and
  the new rule must add a genuine dependency (``(αⱼ ∧ βᵢ) ⇏ βⱼ``). The
  paper deliberately avoids the full entailment check ``R ⊭ R`` as too
  expensive; so do we.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.logic.base import Formula
from repro.logic.formulas import And, Or, conjoin, disjoin
from repro.logic.implication import implies
from repro.logic.negation import negate
from repro.logic.rules import Rule
from repro.logic.satisfiability import is_satisfiable
from repro.schema.schema import Schema

__all__ = [
    "is_natural_formula",
    "is_natural_rule",
    "rule_pair_is_natural",
    "rule_pair_cofire_consistent",
    "can_extend_rule_set",
    "is_natural_rule_set",
]


def is_natural_formula(formula: Formula, schema: Schema) -> bool:
    """Def. 4: is *formula* a natural TDG-formula under *schema*?"""
    if formula.is_atomic:
        return is_satisfiable(formula, schema)
    if isinstance(formula, And):
        if not all(is_natural_formula(part, schema) for part in formula.parts):
            return False
        if not is_satisfiable(formula, schema):
            return False
        for i, part in enumerate(formula.parts):
            others = [p for j, p in enumerate(formula.parts) if j != i]
            rest = conjoin(others)
            if implies(rest, part, schema):
                return False
        return True
    if isinstance(formula, Or):
        if not all(is_natural_formula(part, schema) for part in formula.parts):
            return False
        for i, part in enumerate(formula.parts):
            others = [p for j, p in enumerate(formula.parts) if j != i]
            rest = disjoin(others)
            if implies(rest, part, schema):
                return False
        return True
    raise TypeError(f"not a TDG-formula: {type(formula).__name__}")


def is_natural_rule(rule: Rule, schema: Schema) -> bool:
    """Def. 5: is ``α → β`` a natural TDG-rule under *schema*?"""
    if not is_natural_formula(rule.premise, schema):
        return False
    if not is_natural_formula(rule.consequence, schema):
        return False
    if not is_satisfiable(conjoin([rule.premise, rule.consequence]), schema):
        return False
    if implies(rule.premise, rule.consequence, schema):
        return False
    return True


def rule_pair_is_natural(rule_i: Rule, rule_j: Rule, schema: Schema) -> bool:
    """Def. 6's pairwise condition, checked in both premise directions.

    For each direction with ``α_j ⇒ α_i`` it requires

    * ``α_j ∧ β_i ∧ β_j`` satisfiable (no hidden contradiction), and
    * ``(α_j ∧ β_i) ⇏ β_j`` (the rule introduces a new dependency).
    """
    for stronger, weaker in ((rule_j, rule_i), (rule_i, rule_j)):
        if implies(stronger.premise, weaker.premise, schema):
            combined = conjoin(
                [stronger.premise, weaker.consequence, stronger.consequence]
            )
            if not is_satisfiable(combined, schema):
                return False
            context = conjoin([stronger.premise, weaker.consequence])
            if implies(context, stronger.consequence, schema):
                return False
    return True


def rule_pair_cofire_consistent(rule_i: Rule, rule_j: Rule, schema: Schema) -> bool:
    """A strengthening of Def. 6 used by the rule *generator*.

    Def. 6 only constrains rule pairs whose premises are comparable
    (``α_j ⇒ α_i``). Two rules with incomparable premises can still fire
    on the same record with contradictory consequences (e.g.
    ``A = a → C = x`` and ``B = b → C = y``); the paper acknowledges that
    its pairwise check does not exclude mutually contradictory sets. Such
    pairs make the rule-repairing data generator thrash, so candidate
    rules additionally satisfy: whenever both premises can hold together,
    both consequences must be jointly satisfiable with them.
    """
    both_premises = conjoin([rule_i.premise, rule_j.premise])
    if not is_satisfiable(both_premises, schema):
        return True
    combined = conjoin(
        [rule_i.premise, rule_j.premise, rule_i.consequence, rule_j.consequence]
    )
    return is_satisfiable(combined, schema)


def can_extend_rule_set(rules: Sequence[Rule], candidate: Rule, schema: Schema) -> bool:
    """May *candidate* be added to the natural rule set *rules*?

    Assumes *candidate* is itself a natural rule; checks the Def. 6
    pairwise condition against every existing rule and rejects exact
    duplicates.
    """
    if candidate in rules:
        return False
    return all(rule_pair_is_natural(existing, candidate, schema) for existing in rules)


def is_natural_rule_set(rules: Iterable[Rule], schema: Schema) -> bool:
    """Def. 6: is *rules* a natural rule set under *schema*?"""
    rule_list = list(rules)
    if len(set(rule_list)) != len(rule_list):
        return False
    for rule in rule_list:
        if not is_natural_rule(rule, schema):
            return False
    for i, rule_i in enumerate(rule_list):
        for rule_j in rule_list[i + 1 :]:
            if not rule_pair_is_natural(rule_i, rule_j, schema):
                return False
    return True
