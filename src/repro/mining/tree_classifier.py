"""The production classifier: the auditing-adjusted C4.5 tree."""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.mining.base import (
    AttributeClassifier,
    BatchPrediction,
    Prediction,
    batch_length,
)
from repro.mining.dataset import Dataset
from repro.mining.tree.classify import predict_distribution, predict_distribution_batch
from repro.mining.tree.grow import TreeConfig, grow_tree
from repro.mining.tree.node import Node
from repro.mining.tree.rules import TreeRule, extract_rules

__all__ = ["TreeClassifier"]


class TreeClassifier(AttributeClassifier):
    """Decision-tree dependency model (sec. 5.1 + 5.4 adjustments).

    The default configuration uses the integrated expected-error-confidence
    pruning; pass a :class:`TreeConfig` for the classic C4.5 behaviour
    (pessimistic pruning) or an unpruned tree.
    """

    def __init__(self, config: Optional[TreeConfig] = None):
        super().__init__()
        self.config = config or TreeConfig()
        self.root: Optional[Node] = None

    def fit(self, dataset: Dataset) -> None:
        self.dataset = dataset
        self.root = grow_tree(dataset, self.config)

    def predict_encoded(self, encoded: Mapping[str, float]) -> Prediction:
        dataset = self._require_fitted()
        assert self.root is not None
        probabilities, n = predict_distribution(self.root, encoded)
        return Prediction(probabilities, n, dataset.class_encoder.labels)

    def predict_batch(
        self,
        columns: Mapping[str, np.ndarray],
        *,
        n_rows: Optional[int] = None,
    ) -> BatchPrediction:
        dataset = self._require_fitted()
        assert self.root is not None
        length = batch_length(columns, n_rows)
        probabilities, support = predict_distribution_batch(self.root, columns, length)
        return BatchPrediction(probabilities, support, dataset.class_encoder.labels)

    def prediction_payload(self) -> "TreeClassifier":
        """A lean clone for parallel-audit worker dispatch: tree prediction
        never reads the training columns, so the clone carries a
        column-less :meth:`Dataset.prediction_view
        <repro.mining.dataset.Dataset.prediction_view>` instead of the
        encoded training matrix."""
        dataset = self._require_fitted()
        clone = TreeClassifier(self.config)
        clone.dataset = dataset.prediction_view()
        clone.root = self.root
        return clone

    def fit_state(self) -> dict:
        """Canonical fitted state (see
        :meth:`AttributeClassifier.fit_state`): the same node dictionaries
        :mod:`repro.core.serialize` persists, plus the class vocabulary."""
        from repro.core.serialize import _node_to_dict

        dataset = self._require_fitted()
        assert self.root is not None
        return {
            "type": "tree",
            "base_attrs": list(dataset.base_attrs),
            "class_encoder": dataset.class_encoder.to_state(),
            "tree": _node_to_dict(self.root),
        }

    def rules(self, *, drop_useless: bool = True) -> list[TreeRule]:
        """The tree as a rule set (sec. 5.4), by default without rules
        that cannot contribute to an error detection."""
        dataset = self._require_fitted()
        assert self.root is not None
        return extract_rules(
            self.root,
            dataset,
            self.config.bounds,
            drop_useless=drop_useless,
            min_confidence=self.config.min_detection_confidence,
        )

    def __repr__(self) -> str:
        if self.root is None:
            return "TreeClassifier(unfitted)"
        return (
            f"TreeClassifier(nodes={self.root.node_count()}, "
            f"leaves={self.root.leaf_count()}, depth={self.root.depth()})"
        )
