"""Cross-module integration tests: the full fig.-2 cycle and the
interactions the unit tests cannot see."""

import json
import random

import pytest

from repro import (
    AuditorConfig,
    DataAuditor,
    ExperimentConfig,
    PollutionPipeline,
    auditor_from_dict,
    auditor_to_dict,
    base_profile,
    default_polluters,
    evaluate_audit,
    run_experiment,
)
from repro.schema import read_csv, table_from_csv_text, table_to_csv_text


@pytest.fixture(scope="module")
def small_world():
    """One generated+polluted+audited world shared by the assertions."""
    profile = base_profile(n_rules=40, seed=23)
    generator = profile.build_generator()
    clean = generator.generate(1200, random.Random(3))
    pipeline = PollutionPipeline(default_polluters(), factor=1.0)
    dirty, log = pipeline.apply(clean, random.Random(4))
    auditor = DataAuditor(profile.schema, AuditorConfig(min_error_confidence=0.8))
    auditor.fit(dirty)
    report = auditor.audit(dirty)
    return profile, clean, dirty, log, auditor, report


class TestFullCycle:
    def test_clean_data_satisfies_rules(self, small_world):
        profile, clean, *_ = small_world
        for record in clean.records():
            assert all(rule.satisfied_by(record) for rule in profile.rules)

    def test_audit_quality_band(self, small_world):
        profile, clean, dirty, log, auditor, report = small_world
        result = evaluate_audit(report, log, clean, dirty)
        # the operating band the paper reports (specificity ≈ 99 %)
        assert result.specificity > 0.95
        assert result.sensitivity > 0.02
        assert result.records.n_total == dirty.n_rows

    def test_findings_point_at_flagged_rows(self, small_world):
        *_, report = small_world
        flagged = set(report.suspicious_rows())
        assert {finding.row for finding in report.findings} == flagged

    def test_record_confidences_bounded(self, small_world):
        *_, report = small_world
        assert all(0.0 <= c <= 1.0 for c in report.record_confidence)

    def test_corrections_only_touch_flagged_rows(self, small_world):
        profile, clean, dirty, log, auditor, report = small_world
        corrected = report.apply_corrections(dirty)
        flagged = set(report.suspicious_rows())
        for row in range(dirty.n_rows):
            if row not in flagged:
                assert corrected.rows[row] == dirty.rows[row]

    def test_structure_model_attributes_subset(self, small_world):
        profile, *_, auditor, report = small_world
        model = auditor.structure_model()
        assert set(model) <= set(profile.schema.names)


class TestCsvRoundTripOfGeneratedData:
    def test_clean_table_roundtrip(self, small_world):
        profile, clean, *_ = small_world
        text = table_to_csv_text(clean)
        back = table_from_csv_text(profile.schema, text, validate=True)
        assert back == clean

    def test_dirty_table_roundtrip(self, small_world):
        profile, clean, dirty, *_ = small_world
        # dirty tables contain nulls and swapped (still in-kind) values
        text = table_to_csv_text(dirty)
        back = table_from_csv_text(profile.schema, text)
        assert back == dirty


class TestModelPersistenceAcrossBatches:
    def test_offline_online_split_consistent(self, small_world):
        profile, clean, dirty, log, auditor, report = small_world
        payload = json.loads(json.dumps(auditor_to_dict(auditor)))
        restored = auditor_from_dict(payload)
        # a fresh batch from the same generator, with one seeded error
        generator = profile.build_generator()
        batch = generator.generate(200, random.Random(77))
        restored_report = restored.audit(batch)
        original_report = auditor.audit(batch)
        assert len(restored_report.findings) == len(original_report.findings)


class TestExperimentPipeline:
    def test_run_experiment_smoke(self):
        result = run_experiment(
            ExperimentConfig(n_records=500, n_rules=20, profile_seed=9)
        )
        assert result.clean.n_rows == 500
        assert 0 <= result.sensitivity <= 1
        assert result.evaluation.cells.n_total == result.dirty.n_rows * 8

    def test_zero_pollution_factor_yields_empty_truth(self):
        result = run_experiment(
            ExperimentConfig(
                n_records=400, n_rules=20, pollution_factor=0.0, profile_seed=9
            )
        )
        assert result.log.n_cell_changes == 0
        assert result.evaluation.records.true_positive == 0
        assert result.evaluation.records.false_negative == 0
