"""E13 — audit-phase throughput: batch protocol × parallel executor,
plus storage-backend ingest rates.

The deviation-detection phase is the online half of sec. 2.2's
warehouse-loading split ("new data can be checked for deviations and
loaded quickly"), so its throughput — not the offline induction — bounds
load latency. This bench measures, on one fitted QUIS model at 80k rows:

* the vectorized ``predict_batch`` audit path against the row-at-a-time
  ``predict_encoded`` fallback (the pre-redesign semantics, still
  available through the ABC), and
* a **jobs sweep** of the multi-core executor — whole-table (per-column
  fan-out) and chunked (per-chunk fan-out) audits at 1, 2 and 4 worker
  processes — asserting the parallel reports stay bit-exact with serial
  and recording the wall-clock win in
  ``benchmarks/results/E13_audit_throughput.txt``.

A second experiment compares the **storage backends** feeding that hot
path: write + chunked-read rows/s and on-disk size for CSV vs JSONL vs
SQLite (and Parquet when ``pyarrow`` is present), with the read-back
tables asserted identical across backends
(``benchmarks/results/E13_ingest_comparison.txt``).

Speedup assertions are gated on the cores the machine actually has:
parallel wall-clock gains are physically impossible on a single-core
box, and the bit-exactness guarantee is the part that must hold
everywhere.
"""

import os
import time

from repro.core import AuditorConfig, AuditReport, AuditSession, DataAuditor
from repro.io import open_source, write_table
from repro.mining.base import AttributeClassifier
from repro.quis import generate_quis_sample

N_RECORDS = 80_000
#: rows audited by the (slow) row-loop fallback; throughput extrapolates
ROW_LOOP_RECORDS = 4_000
CHUNK_SIZE = 10_000
JOBS_SWEEP = (1, 2, 4)


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _chunks(table, size):
    for start in range(0, table.n_rows, size):
        yield table.select(range(start, min(start + size, table.n_rows)))


def test_batch_audit_throughput(benchmark, record_table):
    sample = generate_quis_sample(N_RECORDS, seed=2003)
    auditor = DataAuditor(sample.schema, AuditorConfig(min_error_confidence=0.8))
    auditor.fit(sample.dirty)
    session = AuditSession(auditor=auditor)
    cores = os.cpu_count() or 1

    def batch_audit():
        return auditor.audit(sample.dirty)

    report = benchmark.pedantic(batch_audit, rounds=1, iterations=1)
    _, batch_seconds = _timed(lambda: auditor.audit(sample.dirty))
    batch_rate = N_RECORDS / batch_seconds

    # the same audit through the ABC's row-loop fallback, on a slice;
    # patch once per distinct class (all classifiers share a type here —
    # saving "originals" per attribute would capture the patched method)
    subset = sample.dirty.select(range(ROW_LOOP_RECORDS))
    patched_classes = {type(c) for c in auditor.classifiers.values()}
    originals = {cls: cls.predict_batch for cls in patched_classes}
    for cls in patched_classes:
        cls.predict_batch = AttributeClassifier.predict_batch
    try:
        row_report, row_seconds = _timed(lambda: auditor.audit(subset))
    finally:
        for cls, original in originals.items():
            cls.predict_batch = original
    row_rate = ROW_LOOP_RECORDS / row_seconds
    batch_speedup = batch_rate / row_rate

    # sanity: same findings per row regardless of path
    assert row_report.findings == [
        finding for finding in report.findings if finding.row < ROW_LOOP_RECORDS
    ]

    # jobs sweep: whole-table (per-column) and chunked (per-chunk) audits
    table_times = {}
    chunk_times = {}
    for jobs in JOBS_SWEEP:
        jobs_report, seconds = _timed(
            lambda: auditor.audit(sample.dirty, n_jobs=jobs)
        )
        table_times[jobs] = seconds
        # the executor's contract: parallelism is invisible in the output
        assert jobs_report.findings == report.findings
        assert jobs_report.record_confidence == report.record_confidence

        merged, seconds = _timed(
            lambda: AuditReport.merge(
                list(
                    session.audit_chunks(
                        _chunks(sample.dirty, CHUNK_SIZE), n_jobs=jobs
                    )
                )
            )
        )
        chunk_times[jobs] = seconds
        assert merged.findings == report.findings
        assert merged.record_confidence == report.record_confidence

    lines = [
        "E13 — audit-phase throughput, batch protocol × parallel executor",
        f"workload: QUIS sample, {N_RECORDS} records; "
        f"machine: {cores} core(s)",
        "",
        "batch protocol vs row loop",
        f"{'path':>10}  {'records':>8}  {'time[s]':>8}  {'rows/s':>9}",
        f"{'batch':>10}  {N_RECORDS:>8}  {batch_seconds:>8.2f}  {batch_rate:>9.0f}",
        f"{'row loop':>10}  {ROW_LOOP_RECORDS:>8}  {row_seconds:>8.2f}  {row_rate:>9.0f}",
        f"vectorized batch path: {batch_speedup:.1f}× the row-loop throughput",
        "",
        f"jobs sweep (bit-exact with serial at every point; chunked = "
        f"--chunk-size {CHUNK_SIZE})",
        f"{'jobs':>6}  {'table[s]':>9}  {'rows/s':>9}  {'speedup':>8}  "
        f"{'chunked[s]':>10}  {'rows/s':>9}  {'speedup':>8}",
    ]
    for jobs in JOBS_SWEEP:
        lines.append(
            f"{jobs:>6}  {table_times[jobs]:>9.2f}  "
            f"{N_RECORDS / table_times[jobs]:>9.0f}  "
            f"{table_times[1] / table_times[jobs]:>7.2f}×  "
            f"{chunk_times[jobs]:>10.2f}  "
            f"{N_RECORDS / chunk_times[jobs]:>9.0f}  "
            f"{chunk_times[1] / chunk_times[jobs]:>7.2f}×"
        )
    if cores < 2:
        lines.append(
            "\nnote: single-core machine — parallel speedup is not "
            "expected here; the sweep verifies bit-exactness and records "
            "the executor overhead. Run on a multi-core box for the "
            "wall-clock win."
        )
    record_table("E13_audit_throughput", "\n".join(lines))

    # the batch redesign's reason to exist: a multiple of row-loop speed
    assert batch_speedup > 3.0
    # absolute floor so CI catches a vectorization regression
    assert batch_rate > 10_000
    # the parallel executor's reason to exist: wall-clock wins — asserted
    # only where the hardware makes them possible (the best of the two
    # fan-out axes at 4 jobs vs serial on a ≥4-core box). Shared CI
    # runners advertise 4 cores but time-share them, so CI only enforces
    # a regression floor; the full 2× bar applies on dedicated hardware.
    if cores >= 4:
        best_parallel = min(table_times[4], chunk_times[4])
        best_serial = min(table_times[1], chunk_times[1])
        required = 1.2 if os.environ.get("CI") else 2.0
        assert best_serial / best_parallel >= required, (
            f"4-job audit only {best_serial / best_parallel:.2f}× faster "
            f"than serial on a {cores}-core machine (required {required}×)"
        )


#: rows for the backend ingest comparison (write + chunked read per format)
INGEST_RECORDS = 40_000
INGEST_CHUNK = 10_000


def test_backend_ingest_throughput(tmp_path, record_table):
    """Storage-backend ingest comparison: rows/s into and out of each
    registered backend, with cross-backend equality asserted."""
    sample = generate_quis_sample(INGEST_RECORDS, seed=2003)
    table = sample.dirty
    schema = sample.schema

    formats = [("csv", "load.csv"), ("jsonl", "load.jsonl"), ("sqlite", "load.db")]
    try:
        import pyarrow  # noqa: F401

        formats.append(("parquet", "load.parquet"))
    except ImportError:
        pass

    results = {}
    baseline_rows = None
    for fmt, name in formats:
        path = tmp_path / name
        started = time.perf_counter()
        write_table(table, path)
        write_seconds = time.perf_counter() - started

        started = time.perf_counter()
        with open_source(schema, path) as source:
            rows = [row for chunk in source.chunks(INGEST_CHUNK) for row in chunk.rows]
        read_seconds = time.perf_counter() - started

        assert len(rows) == table.n_rows
        if fmt == "parquet":
            # documented float64 mapping: non-integer numerics come back
            # as floats, so exact equality is only checked numerically
            assert all(
                a == b
                or (a is not None and b is not None and float(a) == float(b))
                for row_a, row_b in zip(table.rows, rows)
                for a, b in zip(row_a, row_b)
            )
        elif baseline_rows is None:
            assert rows == table.rows
            baseline_rows = rows
        else:
            # every backend hands the auditor the identical row stream
            assert rows == baseline_rows
        results[fmt] = (write_seconds, read_seconds, path.stat().st_size)

    lines = [
        "E13b — storage-backend ingest comparison (repro.io)",
        f"workload: QUIS sample, {INGEST_RECORDS} records × {len(schema)} "
        f"attributes; chunked reads at {INGEST_CHUNK} rows/chunk",
        "read-back row streams asserted identical across backends",
        "",
        f"{'backend':>8}  {'write[s]':>9}  {'rows/s':>9}  {'read[s]':>9}  "
        f"{'rows/s':>9}  {'size[MiB]':>10}",
    ]
    for fmt, (write_seconds, read_seconds, size) in results.items():
        lines.append(
            f"{fmt:>8}  {write_seconds:>9.2f}  "
            f"{INGEST_RECORDS / write_seconds:>9.0f}  {read_seconds:>9.2f}  "
            f"{INGEST_RECORDS / read_seconds:>9.0f}  {size / 2**20:>10.2f}"
        )
    if "parquet" not in results:
        lines.append(
            "\nnote: pyarrow not installed — parquet column omitted "
            "(the backend degrades to a clean ImportError)."
        )
    record_table("E13_ingest_comparison", "\n".join(lines))

    # regression floor: every backend must ingest at a usable rate
    for fmt, (_, read_seconds, _) in results.items():
        assert INGEST_RECORDS / read_seconds > 5_000, (
            f"{fmt} chunked read only {INGEST_RECORDS / read_seconds:.0f} rows/s"
        )
