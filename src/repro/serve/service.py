"""The audit service's request handlers, independent of the transport.

:class:`AuditService` is the daemon's brain: it owns the
:class:`~repro.registry.ModelRegistry`, a digest-keyed cache of loaded
models, and the request semantics of every endpoint — the HTTP layer
(:mod:`repro.serve.http`) only moves bytes. Keeping the two apart means
the endpoint contracts are unit-testable without sockets, and an
embedding application (a loader process, a scheduler) can call the
handlers directly.

The one invariant worth stating twice: **the findings a** ``POST
/audit`` **streams are byte-identical to** ``repro audit --format
jsonl`` **on the same model and table.** Both paths collect the
findings, sort them by ``(-confidence, row, attribute)`` (the order
:class:`~repro.core.findings.AuditReport` guarantees), shape them
through :func:`~repro.core.findings.findings_to_table`, and write them
through the same :class:`~repro.io.jsonl_backend.JsonlTableSink`. A
warehouse can therefore swap the CLI for the service (or back) without
re-baselining a single downstream parser.
"""

from __future__ import annotations

import io
import json
import threading
import time
from typing import Any, Iterator, Mapping, Optional

from repro.core.auditor import AuditorConfig, DataAuditor
from repro.core.findings import Finding, findings_to_table
from repro.core.session import AuditSession
from repro.io.base import DEFAULT_CHUNK_SIZE
from repro.io.columnar import IO_PATHS, resolve_io_path
from repro.io.jsonl_backend import JsonlTableSink, JsonlTableSource
from repro.io.registry import open_source
from repro.registry import ModelRegistry, Provenance, RegistryError
from repro.schema.serialize import schema_from_dict
from repro.schema.table import Table

__all__ = ["ServiceError", "AuditService"]

#: findings per streamed response chunk — small enough to flush early,
#: large enough to amortize the write syscalls
_STREAM_BATCH = 512


class ServiceError(Exception):
    """A request failed; carries the HTTP status the transport should send."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _require(payload: Mapping[str, Any], key: str) -> Any:
    try:
        return payload[key]
    except KeyError:
        raise ServiceError(400, f"request body is missing the {key!r} field")


def _parse_io_path(payload: Mapping[str, Any]) -> str:
    """The optional ``io_path`` request field (default ``"auto"``)."""
    io_path = payload.get("io_path", "auto")
    if io_path not in IO_PATHS:
        raise ServiceError(
            400, f"'io_path' must be one of {', '.join(IO_PATHS)}, got {io_path!r}"
        )
    return io_path


def _parse_config(payload: Optional[Mapping[str, Any]]) -> AuditorConfig:
    """Build an :class:`AuditorConfig` from the JSON ``config`` object of
    a fit request (scalar knobs only — factories stay server-side)."""
    if payload is None:
        return AuditorConfig()
    allowed = {
        "min_error_confidence",
        "n_bins",
        "base_attributes",
        "audited_attributes",
        "n_jobs",
        "fit_n_jobs",
        "fit_path",
    }
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ServiceError(
            400,
            f"unknown config fields {unknown!r} "
            f"(allowed: {', '.join(sorted(allowed))})",
        )
    try:
        return AuditorConfig(**dict(payload))
    except (TypeError, ValueError) as exc:
        raise ServiceError(400, f"invalid auditor config: {exc}")


def _version_json(version) -> dict[str, Any]:
    return {
        "name": version.name,
        "version": version.version,
        "ref": version.ref,
        "digest": version.digest,
        "provenance": version.provenance.to_dict(),
    }


class AuditService:
    """Endpoint semantics of the audit daemon (see module docstring).

    Thread-safe: handlers may run concurrently (the HTTP layer runs one
    thread per request); the model cache is locked, the registry's own
    reader paths are lock-free, and its writer paths take the registry
    lockfile.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        n_jobs: int = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ):
        self.registry = registry
        self.n_jobs = n_jobs
        self.chunk_size = chunk_size
        self.started_at = time.time()
        self.requests_served = 0
        self._cache_lock = threading.Lock()
        #: digest → loaded auditor; content addressing makes entries
        #: permanently valid (an object never changes under its digest)
        self._model_cache: dict[str, DataAuditor] = {}
        self._monitors_lock = threading.Lock()
        #: name → {"watcher", "thread", "stop"} for hosted monitors
        self._monitors: dict[str, dict[str, Any]] = {}

    # -- GET /healthz --------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "registry": str(self.registry.root),
            "models": len(self.registry.list()),
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "requests_served": self.requests_served,
            "n_jobs": self.n_jobs,
        }

    # -- GET /models and /models/{ref} --------------------------------------

    def list_models(self) -> dict[str, Any]:
        models = []
        for name in self.registry.list():
            versions = self.registry.versions(name)
            models.append(
                {
                    "name": name,
                    "versions": len(versions),
                    "tags": self.registry.tags(name),
                    "latest": _version_json(versions[-1]),
                }
            )
        return {"models": models}

    def show_model(self, ref: str) -> dict[str, Any]:
        try:
            return _version_json(self.registry.resolve(ref))
        except RegistryError as exc:
            raise ServiceError(404, str(exc))

    # -- POST /fit -----------------------------------------------------------

    def fit(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Fit from a ``repro.io`` source and register the model.

        Body: ``{"name": str, "schema": {...}, "source": location,
        "format": optional registry format, "config": optional scalar
        AuditorConfig fields, "io_path": optional "auto"/"columns"/
        "rows" ingest selector (columnar backends skip row objects on
        "columns"/"auto"; models are byte-identical either way)}``.
        Returns the stored version record.
        """
        name = _require(payload, "name")
        source_uri = _require(payload, "source")
        io_path = _parse_io_path(payload)
        try:
            schema = schema_from_dict(_require(payload, "schema"))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(400, f"invalid schema: {exc}")
        config = _parse_config(payload.get("config"))
        try:
            auditor = DataAuditor(schema, config)
        except ValueError as exc:
            raise ServiceError(400, str(exc))
        fmt = payload.get("format")
        try:
            with open_source(schema, source_uri, format=fmt) as source:
                if resolve_io_path(source, io_path) == "columns":
                    table = source.read_columns()
                else:
                    table = source.read()
        except (OSError, ValueError) as exc:
            raise ServiceError(400, f"cannot read source {source_uri!r}: {exc}")
        auditor.fit(table)
        try:
            version = self.registry.put(
                auditor,
                name,
                provenance=Provenance(
                    source=str(source_uri),
                    source_format=fmt,
                    config=_config_json(config),
                    n_rows=table.n_rows,
                    fit_seconds=auditor.fit_seconds,
                ),
            )
        except RegistryError as exc:
            raise ServiceError(500, str(exc))
        with self._cache_lock:
            self._model_cache[version.digest] = auditor
        return _version_json(version)

    # -- POST /audit ---------------------------------------------------------

    def _load_model(self, ref: str) -> DataAuditor:
        try:
            version = self.registry.resolve(ref)
        except RegistryError as exc:
            raise ServiceError(404, str(exc))
        with self._cache_lock:
            cached = self._model_cache.get(version.digest)
        if cached is not None:
            return cached
        try:
            auditor = self.registry.get_version(version)
        except RegistryError as exc:
            raise ServiceError(500, str(exc))
        with self._cache_lock:
            self._model_cache[version.digest] = auditor
        return auditor

    def _table_from_rows(self, auditor: DataAuditor, rows: list) -> Table:
        """Parse an inline ``rows`` payload through the JSONL backend, so
        inline audits get the same strict schema-driven coercion (and
        the same error messages) as stored tables."""
        if not isinstance(rows, list):
            raise ServiceError(400, "'rows' must be a list of JSON objects")
        buffer = io.StringIO(
            "".join(json.dumps(row, allow_nan=False) + "\n" for row in rows)
        )
        source = JsonlTableSource(auditor.schema, buffer)
        try:
            return source.read()
        except ValueError as exc:
            raise ServiceError(400, f"invalid rows payload: {exc}")
        finally:
            source.close()

    def audit(self, payload: Mapping[str, Any]) -> tuple[dict[str, Any], Iterator[str]]:
        """Audit a stored table or an inline row payload.

        Body: ``{"model": "name[@ref]"}`` plus exactly one of
        ``"source"`` (a server-side ``repro.io`` location, optionally
        with ``"format"``) or ``"rows"`` (inline JSON objects);
        optional ``"jobs"`` and ``"chunk_size"`` override the daemon
        defaults, ``"io_path"`` (``"auto"``/``"columns"``/``"rows"``)
        selects the ingest representation for ``"source"`` audits
        (byte-identical findings either way), and ``"engine": "sql"``
        pushes the deviation screen
        into the database (:mod:`repro.compile`) when the source is
        SQLite and the model compiles — the summary's ``engine`` field
        reports the engine actually selected, with a ``notice`` line
        when the request fell back to memory. Returns ``(summary
        headers, JSONL line stream)`` — the stream is byte-identical to
        the CLI's ``repro audit --format jsonl`` on the same model and
        table, whichever engine ran.
        """
        ref = _require(payload, "model")
        auditor = self._load_model(ref)
        session = AuditSession(auditor=auditor)
        jobs = payload.get("jobs", self.n_jobs)
        io_path = _parse_io_path(payload)
        chunk_size = payload.get("chunk_size", self.chunk_size)
        if not isinstance(chunk_size, int) or chunk_size < 1:
            raise ServiceError(400, "'chunk_size' must be a positive integer")
        has_source = "source" in payload
        has_rows = "rows" in payload
        if has_source == has_rows:
            raise ServiceError(
                400, "pass exactly one of 'source' (a location) or 'rows' (inline)"
            )
        engine = payload.get("engine") or "memory"
        if engine not in ("memory", "sql"):
            raise ServiceError(400, f"'engine' must be 'memory' or 'sql', got {engine!r}")
        notice = None
        if engine == "sql":
            from repro.compile import compilation_plan, sqlite_location

            if has_source and sqlite_location(payload["source"]) is None:
                notice = "source is not SQLite; auditing in memory"
                engine = "memory"
            else:
                plan = compilation_plan(auditor)
                if not plan.compilable:
                    notice = plan.notice()
                    engine = "memory"
        findings: list[Finding] = []
        n_rows = 0
        if has_rows:
            table = self._table_from_rows(auditor, payload["rows"])
            report = session.audit(table, n_jobs=jobs, engine=engine)
            findings = report.findings  # already (-confidence, row, attribute)
            n_rows = report.n_rows
        else:
            try:
                reports = session.audit_source(
                    payload["source"],
                    chunk_size=chunk_size,
                    n_jobs=jobs,
                    engine=engine,
                    io_path=io_path,
                )
                for report in reports:
                    findings.extend(report.findings)
                    n_rows += report.n_rows
            except (OSError, ValueError) as exc:
                raise ServiceError(
                    400, f"cannot audit source {payload['source']!r}: {exc}"
                )
            # the CLI's chunked path re-sorts globally; match it exactly
            findings.sort(key=lambda f: (-f.confidence, f.row, f.attribute))
        summary = {
            "model": self.registry.resolve(ref).ref,
            "rows": n_rows,
            "findings": len(findings),
            "suspicious": len({f.row for f in findings}),
            "engine": engine,
        }
        if notice is not None:
            summary["notice"] = notice
        return summary, _findings_jsonl(findings)

    # -- GET/POST /monitors --------------------------------------------------

    def start_monitor(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Host a continuous monitor inside the daemon.

        Body: ``{"name": str, "model": "name[@ref]", "source":
        location}`` plus the optional :class:`TableWatcher
        <repro.monitor.watcher.TableWatcher>` knobs ``format``,
        ``null_marker``, ``window_rows``, ``poll_interval``, ``drift``
        (a :class:`~repro.monitor.drift.DriftConfig` object),
        ``refit`` (``off``/``recommend``/``auto``), ``refit_name``,
        ``refit_rows``, ``state``, and ``findings`` (both default to
        ``<registry>/monitors/<name>.*``). The monitor runs on a daemon
        thread in follow mode; because it tails through the torn-write
        safe tail readers, a producer appending to the source mid-poll
        never breaks it. Auto-refits land in this service's own
        registry, so the next ``POST /audit`` against ``name@latest``
        already uses the refreshed model.
        """
        from repro.monitor.drift import DriftConfig
        from repro.monitor.refit import RefitPolicy
        from repro.monitor.watcher import TableWatcher

        name = _require(payload, "name")
        if not isinstance(name, str) or not name or "/" in name:
            raise ServiceError(400, "'name' must be a non-empty string without '/'")
        ref = _require(payload, "model")
        source = _require(payload, "source")
        with self._monitors_lock:
            entry = self._monitors.get(name)
            if entry is not None and entry["thread"].is_alive():
                raise ServiceError(409, f"monitor {name!r} is already running")
        auditor = self._load_model(ref)
        try:
            resolved = self.registry.resolve(ref)
            drift = DriftConfig(**dict(payload.get("drift") or {}))
            refit_mode = payload.get("refit", "off")
            refit = RefitPolicy(
                refit_mode,
                registry=self.registry if refit_mode == "auto" else None,
                model_name=payload.get("refit_name") or resolved.name,
                refit_rows=int(payload.get("refit_rows", 4096)),
            )
            state_dir = self.registry.root / "monitors"
            state_dir.mkdir(parents=True, exist_ok=True)
            watcher = TableWatcher(
                AuditSession(auditor=auditor),
                source,
                state_path=payload.get("state") or state_dir / f"{name}.state.json",
                findings_path=(
                    payload.get("findings") or state_dir / f"{name}.findings.jsonl"
                ),
                format=payload.get("format"),
                null_marker=payload.get("null_marker", ""),
                window_rows=int(payload.get("window_rows", 256)),
                poll_interval=float(payload.get("poll_interval", 1.0)),
                n_jobs=payload.get("jobs", self.n_jobs),
                drift=drift,
                refit=refit,
                model_ref=resolved.ref,
            )
        except (OSError, TypeError, ValueError) as exc:
            raise ServiceError(400, f"cannot start monitor {name!r}: {exc}")
        stop = threading.Event()

        def _run() -> None:
            try:
                watcher.run(follow=True, stop=stop)
            except Exception as exc:  # surface in status, don't kill the daemon
                watcher.error = str(exc)
            finally:
                watcher.close()

        thread = threading.Thread(target=_run, daemon=True, name=f"monitor-{name}")
        with self._monitors_lock:
            self._monitors[name] = {"watcher": watcher, "thread": thread, "stop": stop}
        thread.start()
        return {"name": name, **watcher.status()}

    def list_monitors(self) -> dict[str, Any]:
        """Every hosted monitor with live progress and drift statistics."""
        with self._monitors_lock:
            entries = list(self._monitors.items())
        return {
            "monitors": [
                {
                    "name": name,
                    "running": entry["thread"].is_alive(),
                    **entry["watcher"].status(),
                }
                for name, entry in entries
            ]
        }

    def stop_monitors(self, timeout: float = 10.0) -> None:
        """Stop every hosted monitor (daemon shutdown path); whole-window
        state is already durable, so this is just a prompt exit."""
        with self._monitors_lock:
            entries = list(self._monitors.values())
        for entry in entries:
            entry["stop"].set()
        for entry in entries:
            entry["thread"].join(timeout)

    def mark_request(self) -> None:
        """Count one served request (called by the transport)."""
        self.requests_served += 1


def _config_json(config: AuditorConfig) -> dict[str, Any]:
    """The provenance form of an auditor config (scalar knobs only)."""
    return {
        "min_error_confidence": config.min_error_confidence,
        "n_bins": config.n_bins,
        "base_attributes": {k: list(v) for k, v in config.base_attributes.items()},
        "audited_attributes": (
            list(config.audited_attributes)
            if config.audited_attributes is not None
            else None
        ),
        "n_jobs": config.n_jobs,
        "fit_n_jobs": config.fit_n_jobs,
        "fit_path": config.fit_path,
    }


def _findings_jsonl(findings: list[Finding]) -> Iterator[str]:
    """Render findings as the CLI's JSONL byte stream, in bounded batches.

    One code path with ``repro audit --format jsonl``:
    :func:`findings_to_table` + :class:`JsonlTableSink`, just aimed at a
    string buffer per batch instead of stdout.
    """
    table = findings_to_table(findings)
    for start in range(0, max(len(table.rows), 1), _STREAM_BATCH):
        batch = Table(table.schema)
        batch.rows = table.rows[start : start + _STREAM_BATCH]
        buffer = io.StringIO()
        with JsonlTableSink(table.schema, buffer) as sink:
            sink.write(batch)
        yield buffer.getvalue()
