"""TDG logic: the test-data-generator formula language of paper sec. 4.1.

Atomic formulas (Def. 1), conjunction/disjunction (Def. 2), rules (Def. 3),
TDG-negation (Table 1), DNF, the pragmatic satisfiability test with range
and link propagation (sec. 4.1.3), implication, and the naturalness
restrictions (Defs. 4–6).
"""

from repro.logic.atoms import (
    Atom,
    Eq,
    EqAttr,
    Gt,
    GtAttr,
    IsNotNull,
    IsNull,
    Lt,
    LtAttr,
    Ne,
    NeAttr,
    PropositionalAtom,
    RelationalAtom,
)
from repro.logic.base import Formula
from repro.logic.dnf import DnfExplosionError, to_dnf
from repro.logic.formulas import And, Or, conjoin, disjoin, iter_atoms
from repro.logic.implication import equivalent, implies, is_tautology
from repro.logic.natural import (
    can_extend_rule_set,
    is_natural_formula,
    is_natural_rule,
    is_natural_rule_set,
    rule_pair_is_natural,
)
from repro.logic.negation import negate
from repro.logic.parse import ParseError, parse_formula, parse_rule, parse_rules
from repro.logic.ranges import NominalRange, OrderedRange, range_of_domain
from repro.logic.rules import Rule
from repro.logic.satisfiability import (
    ConjunctionState,
    find_conjunction_model,
    find_model,
    is_conjunction_satisfiable,
    is_satisfiable,
)

__all__ = [
    "Formula",
    "Atom",
    "PropositionalAtom",
    "RelationalAtom",
    "Eq",
    "Ne",
    "Lt",
    "Gt",
    "IsNull",
    "IsNotNull",
    "EqAttr",
    "NeAttr",
    "LtAttr",
    "GtAttr",
    "And",
    "Or",
    "conjoin",
    "disjoin",
    "iter_atoms",
    "negate",
    "to_dnf",
    "DnfExplosionError",
    "NominalRange",
    "OrderedRange",
    "range_of_domain",
    "ConjunctionState",
    "is_satisfiable",
    "is_conjunction_satisfiable",
    "find_model",
    "find_conjunction_model",
    "implies",
    "is_tautology",
    "equivalent",
    "Rule",
    "ParseError",
    "parse_formula",
    "parse_rule",
    "parse_rules",
    "is_natural_formula",
    "is_natural_rule",
    "rule_pair_is_natural",
    "can_extend_rule_set",
    "is_natural_rule_set",
]
