"""Property tests: serialization round-trips over randomly generated
tables and schemas (CSV, schema JSON, value codec)."""

import datetime
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema import (
    Schema,
    Table,
    date,
    nominal,
    numeric,
    table_from_csv_text,
    table_to_csv_text,
)
from repro.schema.serialize import schema_from_dict, schema_to_dict
from repro.schema.values import value_from_json, value_to_json

SCHEMA = Schema(
    [
        nominal("A", ["alpha", "beta", "gamma", "with,comma", "with'quote"]),
        numeric("I", -50, 50, integer=True),
        numeric("F", -1.0, 1.0),
        date("D", datetime.date(1999, 1, 1), datetime.date(2003, 12, 31)),
    ]
)


def rows():
    return st.lists(
        st.tuples(
            st.sampled_from(list(SCHEMA.attribute("A").domain.values) + [None]),
            st.one_of(st.integers(-50, 50), st.none()),
            st.one_of(
                st.floats(-1.0, 1.0, allow_nan=False).map(lambda x: round(x, 9)),
                st.none(),
            ),
            st.one_of(
                st.dates(datetime.date(1999, 1, 1), datetime.date(2003, 12, 31)),
                st.none(),
            ),
        ).map(list),
        max_size=30,
    )


class TestCsvRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(rows())
    def test_arbitrary_tables_roundtrip(self, table_rows):
        table = Table(SCHEMA, table_rows)
        text = table_to_csv_text(table)
        back = table_from_csv_text(SCHEMA, text, validate=True)
        assert back == table

    @settings(max_examples=50, deadline=None)
    @given(rows(), st.sampled_from(["\\N", "NULL", "~"]))
    def test_roundtrip_with_custom_null_marker(self, table_rows, marker):
        table = Table(SCHEMA, table_rows)
        text = table_to_csv_text(table, null_marker=marker)
        back = table_from_csv_text(SCHEMA, text, null_marker=marker)
        assert back == table


class TestSchemaJsonRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["nominal", "numeric", "date"]),
                st.booleans(),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_random_schemas_roundtrip(self, specs):
        attributes = []
        for index, (kind, nullable) in enumerate(specs):
            name = f"attr_{index}"
            if kind == "nominal":
                attributes.append(
                    nominal(name, [f"v{index}_{k}" for k in range(3)], nullable=nullable)
                )
            elif kind == "numeric":
                attributes.append(
                    numeric(name, index, index + 10, integer=index % 2 == 0, nullable=nullable)
                )
            else:
                attributes.append(
                    date(
                        name,
                        datetime.date(2000, 1, 1),
                        datetime.date(2000 + index, 12, 31),
                        nullable=nullable,
                    )
                )
        schema = Schema(attributes)
        payload = json.loads(json.dumps(schema_to_dict(schema)))
        assert schema_from_dict(payload) == schema


class TestValueCodecProperty:
    @settings(max_examples=100)
    @given(
        st.one_of(
            st.none(),
            st.text(max_size=30),
            st.integers(-(10**12), 10**12),
            st.floats(allow_nan=False, allow_infinity=False),
            st.dates(datetime.date(1900, 1, 1), datetime.date(2100, 1, 1)),
        )
    )
    def test_roundtrip(self, value):
        encoded = json.loads(json.dumps(value_to_json(value)))
        assert value_from_json(encoded) == value
