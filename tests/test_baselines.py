"""Tests for the related-work baselines (Apriori/Hipp and LOF)."""

import random

import numpy as np
import pytest

from repro.baselines import (
    AprioriMiner,
    AssociationRuleAuditor,
    LofAuditor,
    lof_scores,
)
from repro.schema import Schema, Table, nominal, numeric


def _dependency_table(n=800, seed=3, noise=0.0):
    rng = random.Random(seed)
    rule = {"a": "x", "b": "y", "c": "z"}
    rows = []
    for _ in range(n):
        a = rng.choice(["a", "b", "c"])
        b = rule[a] if rng.random() >= noise else rng.choice(["x", "y", "z"])
        rows.append([a, b, rng.choice(["p", "q"]), rng.randint(0, 100)])
    schema = Schema(
        [
            nominal("A", ["a", "b", "c"]),
            nominal("B", ["x", "y", "z"]),
            nominal("C", ["p", "q"]),
            numeric("N", 0, 100, integer=True),
        ]
    )
    return Table(schema, rows)


class TestAprioriMiner:
    def test_finds_functional_dependency_rules(self):
        table = _dependency_table()
        miner = AprioriMiner(min_support=0.05, min_confidence=0.95)
        rules = miner.rules(miner.transactions_of(table))
        as_text = {str(r).split(" [")[0] for r in rules}
        assert "A = a → B = x" in as_text
        assert "B = y → A = b" in as_text

    def test_support_threshold_prunes(self):
        table = _dependency_table()
        strict = AprioriMiner(min_support=0.9, min_confidence=0.5)
        assert strict.rules(strict.transactions_of(table)) == []

    def test_confidence_values_correct(self):
        # manual 4-row table: A=a → B=x holds 2/3 of the time
        schema = Schema([nominal("A", ["a", "b"]), nominal("B", ["x", "y"])])
        table = Table(schema, [["a", "x"], ["a", "x"], ["a", "y"], ["b", "y"]])
        miner = AprioriMiner(min_support=0.25, min_confidence=0.5)
        rules = miner.rules(miner.transactions_of(table))
        rule = next(
            r
            for r in rules
            if r.premise == frozenset({("A", "a")}) and r.consequent == ("B", "x")
        )
        assert rule.confidence == pytest.approx(2 / 3)
        assert rule.support == 2

    def test_numeric_attributes_ignored(self):
        table = _dependency_table()
        miner = AprioriMiner(min_support=0.01, min_confidence=0.5)
        transactions = miner.transactions_of(table)
        assert all("N" not in t for t in transactions)

    def test_nulls_skipped(self):
        schema = Schema([nominal("A", ["a"]), nominal("B", ["x"])])
        table = Table(schema, [["a", None], [None, "x"]])
        transactions = AprioriMiner().transactions_of(table)
        assert transactions == [{"A": "a"}, {"B": "x"}]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AprioriMiner(min_support=0.0)
        with pytest.raises(ValueError):
            AprioriMiner(min_confidence=1.5)
        with pytest.raises(ValueError):
            AprioriMiner(max_itemset_size=1)

    def test_itemsets_never_repeat_attribute(self):
        table = _dependency_table()
        miner = AprioriMiner(min_support=0.02, min_confidence=0.5)
        for itemset in miner.frequent_itemsets(miner.transactions_of(table)):
            attributes = [a for a, _ in itemset]
            assert len(set(attributes)) == len(attributes)


class TestAssociationRuleAuditor:
    def test_detects_dependency_violation(self):
        table = _dependency_table()
        auditor = AssociationRuleAuditor(
            table.schema, miner=AprioriMiner(min_support=0.05, min_confidence=0.95)
        ).fit(table)
        dirty = table.copy()
        row = next(i for i in range(dirty.n_rows) if dirty.cell(i, "A") == "a")
        dirty.set_cell(row, "B", "y")
        report = auditor.audit(dirty)
        assert report.is_flagged(row)
        # the violated rules propose consistent repairs in either direction:
        # fix B back to x (from A=a → B=x) or relabel A to b (from B=y → A=b)
        proposals = {
            (finding.attribute, finding.proposal)
            for finding in report.findings_for_row(row)
        }
        assert proposals <= {("B", "x"), ("A", "b")}
        assert proposals

    def test_additive_score_capped_in_report(self):
        table = _dependency_table()
        auditor = AssociationRuleAuditor(table.schema).fit(table)
        dirty = table.copy()
        dirty.set_cell(0, "B", "z" if dirty.cell(0, "B") != "z" else "x")
        report = auditor.audit(dirty)
        assert all(0.0 <= c <= 1.0 for c in report.record_confidence)

    def test_unfitted_raises(self):
        table = _dependency_table()
        with pytest.raises(RuntimeError):
            AssociationRuleAuditor(table.schema).audit(table)

    def test_numeric_corruption_invisible(self):
        # the paper's criticism: numeric dependencies are not modeled
        table = _dependency_table()
        auditor = AssociationRuleAuditor(table.schema).fit(table)
        dirty = table.copy()
        dirty.set_cell(5, "N", 0)
        report = auditor.audit(dirty)
        assert not report.is_flagged(5)


class TestLof:
    def test_clear_numeric_outlier_scores_high(self):
        schema = Schema([numeric("X", 0, 1000), numeric("Y", 0, 1000)])
        rng = random.Random(4)
        rows = [[rng.uniform(0, 10), rng.uniform(0, 10)] for _ in range(150)]
        rows.append([900.0, 900.0])
        table = Table(schema, rows)
        scores = lof_scores(table, k=8)
        assert int(np.argmax(scores)) == 150
        assert scores[150] > 2.0

    def test_uniform_cluster_scores_near_one(self):
        schema = Schema([numeric("X", 0, 1)])
        rng = random.Random(5)
        table = Table(schema, [[rng.uniform(0, 1)] for _ in range(200)])
        scores = lof_scores(table, k=10)
        assert np.median(scores) == pytest.approx(1.0, abs=0.3)

    def test_tiny_table_degenerates_gracefully(self):
        schema = Schema([numeric("X", 0, 1)])
        table = Table(schema, [[0.1], [0.2]])
        assert (lof_scores(table, k=5) == 1.0).all()

    def test_invalid_k(self):
        schema = Schema([numeric("X", 0, 1)])
        with pytest.raises(ValueError):
            lof_scores(Table(schema, [[0.1]] * 10), k=0)

    def test_auditor_interface(self):
        schema = Schema([numeric("X", 0, 1000), numeric("Y", 0, 1000)])
        rng = random.Random(6)
        rows = [[rng.uniform(0, 10), rng.uniform(0, 10)] for _ in range(150)]
        rows.append([950.0, 950.0])
        table = Table(schema, rows)
        auditor = LofAuditor(schema, k=8, threshold=1.5)
        report = auditor.fit(table).audit(table)
        assert report.is_flagged(150)
        assert all(0.0 <= c <= 1.0 for c in report.record_confidence)

    def test_subsampling_keeps_report_size(self):
        schema = Schema([numeric("X", 0, 1)])
        rng = random.Random(7)
        table = Table(schema, [[rng.uniform(0, 1)] for _ in range(300)])
        auditor = LofAuditor(schema, k=5, max_rows=100)
        report = auditor.fit(table).audit(table)
        assert report.n_rows == 300

    def test_rarity_confounded_with_error_on_nominal_data(self):
        """The paper's sec.-7 point, demonstrated: on mostly-nominal data
        LOF cannot distinguish a *corrupted* record from a *legitimately
        rare* one — both are simply far from the dense value clusters."""
        rule = {"a": "x", "b": "y", "c": "z"}
        table = _dependency_table(n=400, noise=0.03)  # 3 % legit exceptions
        dirty = table.copy()
        row = next(
            i
            for i in range(dirty.n_rows)
            if dirty.cell(i, "A") == "a" and dirty.cell(i, "B") == "x"
        )
        dirty.set_cell(row, "B", "y")  # a genuine corruption
        scores = lof_scores(dirty, k=10)
        legit_rare = [
            i
            for i in range(table.n_rows)
            if table.cell(i, "B") != rule[table.cell(i, "A")] and i != row
        ]
        assert legit_rare
        # the corrupted record's score sits inside the legit-rare range —
        # no threshold separates error from rarity
        assert scores[row] <= max(scores[i] for i in legit_rare) * 1.5
        assert max(scores[i] for i in legit_rare) > np.median(scores) * 3
