"""Tests for attributes, schemas, and tables."""

import datetime

import pytest

from repro.schema import (
    Attribute,
    AttributeKind,
    NominalDomain,
    Schema,
    Table,
    date,
    nominal,
    numeric,
)


class TestAttribute:
    def test_shorthands(self):
        a = nominal("A", ["x", "y"])
        n = numeric("N", 0, 5, integer=True)
        d = date("D", datetime.date(2000, 1, 1), datetime.date(2000, 2, 1))
        assert a.kind is AttributeKind.NOMINAL
        assert n.kind is AttributeKind.NUMERIC
        assert d.kind is AttributeKind.DATE

    def test_admits_respects_nullability(self):
        a = nominal("A", ["x"], nullable=False)
        assert a.admits("x")
        assert not a.admits(None)
        assert nominal("B", ["x"]).admits(None)

    def test_admits_checks_domain(self):
        assert not nominal("A", ["x"]).admits("zzz")
        assert not numeric("N", 0, 1).admits(2)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Attribute("", NominalDomain(["a"]))

    def test_equality(self):
        assert nominal("A", ["x"]) == nominal("A", ["x"])
        assert nominal("A", ["x"]) != nominal("A", ["x"], nullable=False)


class TestSchema:
    def test_lookup(self):
        schema = Schema([nominal("A", ["x"]), numeric("N", 0, 1)])
        assert schema.attribute("A").name == "A"
        assert schema.position("N") == 1
        assert "A" in schema and "Z" not in schema
        assert schema.names == ("A", "N")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema([nominal("A", ["x"]), nominal("A", ["y"])])

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            Schema([])

    def test_unknown_attribute_raises(self):
        schema = Schema([nominal("A", ["x"])])
        with pytest.raises(KeyError):
            schema.attribute("B")
        with pytest.raises(KeyError):
            schema.position("B")

    def test_of_kind_and_ordered(self):
        schema = Schema(
            [
                nominal("A", ["x"]),
                numeric("N", 0, 1),
                date("D", datetime.date(2000, 1, 1), datetime.date(2000, 1, 2)),
            ]
        )
        assert [a.name for a in schema.of_kind(AttributeKind.NOMINAL)] == ["A"]
        assert [a.name for a in schema.ordered_attributes()] == ["N", "D"]

    def test_validate_record(self):
        schema = Schema([nominal("A", ["x"]), numeric("N", 0, 1)])
        schema.validate_record({"A": "x", "N": 0.5})
        with pytest.raises(ValueError, match="missing"):
            schema.validate_record({"A": "x"})
        with pytest.raises(ValueError, match="unknown"):
            schema.validate_record({"A": "x", "N": 0.5, "Z": 1})
        with pytest.raises(ValueError, match="not admissible"):
            schema.validate_record({"A": "zzz", "N": 0.5})

    def test_validate_row(self):
        schema = Schema([nominal("A", ["x"]), numeric("N", 0, 1)])
        schema.validate_row(["x", 1])
        with pytest.raises(ValueError, match="cells"):
            schema.validate_row(["x"])
        with pytest.raises(ValueError):
            schema.validate_row(["x", 7])


@pytest.fixture
def small_table() -> Table:
    schema = Schema([nominal("A", ["x", "y"]), numeric("N", 0, 10, integer=True)])
    return Table(schema, [["x", 1], ["y", 2], [None, 3]])


class TestTable:
    def test_dimensions(self, small_table):
        assert small_table.n_rows == 3
        assert small_table.n_cols == 2
        assert len(small_table) == 3

    def test_record_view_is_mapping(self, small_table):
        record = small_table.record(0)
        assert record["A"] == "x"
        assert record["N"] == 1
        assert dict(record) == {"A": "x", "N": 1}
        assert record.to_dict() == {"A": "x", "N": 1}

    def test_column(self, small_table):
        assert small_table.column("A") == ["x", "y", None]
        assert small_table.column("N") == [1, 2, 3]

    def test_cell_access_and_mutation(self, small_table):
        assert small_table.cell(1, "N") == 2
        small_table.set_cell(1, "N", 9)
        assert small_table.cell(1, "N") == 9

    def test_append_positional_and_mapping(self, small_table):
        small_table.append(["x", 5])
        small_table.append({"N": 6, "A": "y"})
        assert small_table.row(3) == ["x", 5]
        assert small_table.row(4) == ["y", 6]

    def test_append_validate(self, small_table):
        with pytest.raises(ValueError):
            small_table.append(["zzz", 5], validate=True)

    def test_copy_is_deep_for_rows(self, small_table):
        dup = small_table.copy()
        dup.set_cell(0, "N", 999)
        assert small_table.cell(0, "N") == 1

    def test_select_and_head(self, small_table):
        head = small_table.head(2)
        assert head.n_rows == 2
        picked = small_table.select([2, 0])
        assert picked.column("N") == [3, 1]

    def test_delete_row(self, small_table):
        removed = small_table.delete_row(1)
        assert removed == ["y", 2]
        assert small_table.n_rows == 2

    def test_validate_reports_row_index(self):
        schema = Schema([numeric("N", 0, 1)])
        table = Table(schema, [[0.5], [42]])
        with pytest.raises(ValueError, match="row 1"):
            table.validate()

    def test_records_iteration(self, small_table):
        names = [r["A"] for r in small_table.records()]
        assert names == ["x", "y", None]

    def test_equality(self, small_table):
        assert small_table == small_table.copy()
        other = small_table.copy()
        other.set_cell(0, "N", 5)
        assert small_table != other
