"""Regime-shifting test streams for the continuous-auditing scenario.

The monitor's whole reason to exist is data whose *regime changes over
time* — a feed that was fine yesterday starts mis-coding a column
today. :func:`quis_regime_stream` manufactures exactly that from the
QUIS simulator: one clean engine-composition stream, cut into segments,
each segment corrupted by the pollution pipeline at its own rate. A
``[(5000, 0.004), (5000, 0.08)]`` spec is the canonical step change the
drift tests and the E15 bench use; a single-segment spec is the
stationary control that must *not* alarm.

Only cell-level polluters (wrong-value, null-value) are used — row
duplicators/deleters would change row counts and break the
segment-boundary bookkeeping a streaming test needs.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.pollution.log import PollutionLog
from repro.pollution.pipeline import PollutionPipeline
from repro.pollution.polluters import NullValuePolluter, WrongValuePolluter
from repro.quis.simulator import generate_clean_quis
from repro.schema.table import Table

__all__ = ["quis_regime_stream"]


def quis_regime_stream(
    segments: Sequence[tuple[int, float]],
    *,
    seed: int = 2003,
    null_rate: float = 0.0,
) -> tuple[Table, PollutionLog]:
    """A QUIS stream whose pollution rate changes at segment boundaries.

    *segments* is ``[(n_rows, error_rate), ...]``, concatenated in
    order; every segment keeps exactly its ``n_rows`` rows (cell
    polluters only), so segment *k* starts at stream row
    ``sum(n for n, _ in segments[:k])``. Returns the dirty stream table
    and the merged ground-truth log with stream-global row indices.
    """
    if not segments:
        raise ValueError("need at least one (n_rows, error_rate) segment")
    rng = random.Random(seed)
    stream = Table(generate_clean_quis(1, rng).schema)
    merged = PollutionLog()
    offset = 0
    for n_rows, error_rate in segments:
        if n_rows < 1:
            raise ValueError(f"segment row counts must be >= 1, got {n_rows}")
        clean = generate_clean_quis(n_rows, rng)
        polluters = [WrongValuePolluter(error_rate)]
        if null_rate > 0:
            polluters.append(NullValuePolluter(null_rate))
        dirty, log = PollutionPipeline(polluters).apply(clean, rng)
        if dirty.n_rows != n_rows:
            raise AssertionError("cell polluters must preserve the row count")
        stream.rows.extend(dirty.rows)
        for change in log.cell_changes:
            merged.record_cell(
                change.row + offset,
                change.attribute,
                change.before,
                change.after,
                change.polluter,
            )
        offset += n_rows
    return stream, merged
