"""JSON-compatible (de)serialization of schemas.

Needed for the asynchronous-auditing workflow (paper sec. 2.2): the
structure model induced offline is persisted together with the schema it
was induced for, and the online deviation-detection step reloads both.
"""

from __future__ import annotations

import datetime
from typing import Any, Mapping

from repro.schema.attribute import Attribute
from repro.schema.domain import DateDomain, Domain, NominalDomain, NumericDomain, TextDomain
from repro.schema.schema import Schema

__all__ = ["schema_to_dict", "schema_from_dict", "domain_to_dict", "domain_from_dict"]


def domain_to_dict(domain: Domain) -> dict[str, Any]:
    """Serialize one domain to plain JSON types."""
    if isinstance(domain, NominalDomain):
        return {"kind": "nominal", "values": list(domain.values)}
    if isinstance(domain, NumericDomain):
        return {
            "kind": "numeric",
            "low": domain.low,
            "high": domain.high,
            "integer": domain.integer,
        }
    if isinstance(domain, DateDomain):
        return {
            "kind": "date",
            "start": domain.start.isoformat(),
            "end": domain.end.isoformat(),
        }
    if isinstance(domain, TextDomain):
        return {"kind": "text"}
    raise TypeError(f"unsupported domain type: {type(domain).__name__}")


def domain_from_dict(payload: Mapping[str, Any]) -> Domain:
    """Inverse of :func:`domain_to_dict`."""
    kind = payload.get("kind")
    if kind == "nominal":
        return NominalDomain(payload["values"])
    if kind == "numeric":
        return NumericDomain(
            payload["low"], payload["high"], integer=bool(payload.get("integer", False))
        )
    if kind == "date":
        return DateDomain(
            datetime.date.fromisoformat(payload["start"]),
            datetime.date.fromisoformat(payload["end"]),
        )
    if kind == "text":
        return TextDomain()
    raise ValueError(f"unknown domain kind: {kind!r}")


def schema_to_dict(schema: Schema) -> dict[str, Any]:
    """Serialize a schema to plain JSON types."""
    return {
        "attributes": [
            {
                "name": attribute.name,
                "nullable": attribute.nullable,
                "domain": domain_to_dict(attribute.domain),
            }
            for attribute in schema.attributes
        ]
    }


def schema_from_dict(payload: Mapping[str, Any]) -> Schema:
    """Inverse of :func:`schema_to_dict`."""
    return Schema(
        [
            Attribute(
                entry["name"],
                domain_from_dict(entry["domain"]),
                nullable=bool(entry.get("nullable", True)),
            )
            for entry in payload["attributes"]
        ]
    )
