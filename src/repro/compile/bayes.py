"""Naive Bayes → SQL compilation (arithmetic log-posterior scoring).

Unlike the finite-group families, a naive Bayes prediction is a product
over every base attribute, so the screen recomputes the log-posterior
arithmetic in SQL: per attribute one *code* alias (category / bin index,
``-1`` for null), then per class one ``lp_c`` alias summing the bound
log-prior and one ``CASE``-selected log-likelihood term per attribute —
in the exact factor order
:meth:`~repro.mining.naive_bayes.NaiveBayesClassifier.predict_batch`
uses, with null contributing ``+ 0.0`` (exact: every partial sum is
strictly negative, so no ``-0.0`` edge exists).

**Parity argument (margin certification).** SQLite evaluates ``+`` on
IEEE doubles left-to-right, matching numpy's per-attribute ``+=``
sequence; the only divergence is that the bound constants come from
``np.log`` over whole tables while numpy logs gathered copies, which can
differ by ~1 ulp per term. With term magnitudes far below 1e3, the
accumulated drift stays far below the 1e-9 certification margin. A row
is **certified clean** only when its observed class holds the strict
log-posterior maximum with a gap above the margin — then the Python
posterior (after exp and normalization, which strictly preserve such
gaps) predicts the observed class, making the error confidence exactly
zero, below any valid threshold. Everything else — ties, near-ties,
nulls that SQL routed differently than expected — is suspect and
re-checked in Python.
"""

from __future__ import annotations

import numpy as np

from repro.compile.expressions import SqlBuilder, cut_count_expr
from repro.compile.screen import FamilyScreen, NotCompilable

__all__ = ["compile_naive_bayes"]

#: Log-posterior gap below which a SQL argmax is not trusted (absorbs
#: the ~ulp-level drift between SQL and numpy accumulation).
_MARGIN = "1e-09"


def compile_naive_bayes(
    builder: SqlBuilder, classifier, config, obs_ref: str
) -> FamilyScreen:
    """Compile a fitted
    :class:`~repro.mining.naive_bayes.NaiveBayesClassifier` into a
    :class:`~repro.compile.screen.FamilyScreen`."""
    dataset = classifier.dataset
    priors = classifier.priors
    if dataset is None or priors is None:
        raise NotCompilable("naive Bayes classifier is not fitted")
    n_labels = len(dataset.class_encoder.labels)
    log_priors = np.log(priors)
    terms: list[list[str]] = [
        [builder.bind(float(log_priors[label]))] for label in range(n_labels)
    ]
    code_aliases: list[tuple[str, str]] = []
    for index, (name, likelihood) in enumerate(
        classifier.likelihood_tables().items()
    ):
        encoder = dataset.encoders[name]
        col = builder.col(name)
        n_values = likelihood.shape[1]
        if encoder.categorical:
            arms = "".join(
                f" WHEN {col} = {builder.bind(value)} THEN {code}"
                for code, value in enumerate(encoder.attribute.domain.values)  # type: ignore[attr-defined]
            )
            code_sql = (
                f"CASE WHEN {col} IS NULL THEN -1{arms}"
                f" ELSE {encoder.unknown_code} END"
            )
        else:
            discretizer = classifier.bin_discretizer(name)
            if discretizer is None:
                raise NotCompilable(
                    f"ordered attribute {name!r} has a likelihood table "
                    f"but no discretizer"
                )
            bins = cut_count_expr(builder, encoder.attribute, discretizer.cut_points)
            code_sql = f"CASE WHEN {col} IS NULL THEN -1 ELSE {bins} END"
        alias = f"__audit_nb{index}"
        code_aliases.append((alias, code_sql))
        code_ref = builder.dialect.quote(alias)
        log_likelihood = np.log(likelihood)
        for label in range(n_labels):
            value_arms = "".join(
                f" WHEN {code} THEN {builder.bind(float(log_likelihood[label, code]))}"
                for code in range(n_values)
            )
            terms[label].append(
                f"(CASE {code_ref} WHEN -1 THEN 0.0{value_arms} ELSE 0.0 END)"
            )
    lp_aliases = [
        (f"__audit_lp{label}", " + ".join(terms[label]))
        for label in range(n_labels)
    ]
    lp_refs = [builder.dialect.quote(name) for name, _sql in lp_aliases]
    mx_alias = ("__audit_mx", f"MAX({', '.join(lp_refs)})")
    mx_ref = builder.dialect.quote("__audit_mx")
    observed_arms = "".join(
        f" WHEN {label} THEN {lp_refs[label]}" for label in range(n_labels)
    )
    observed_lp = f"CASE {obs_ref}{observed_arms} ELSE {mx_ref} - 1.0 END"
    near_top = " + ".join(
        f"(CASE WHEN {ref} > {mx_ref} - {_MARGIN} THEN 1 ELSE 0 END)"
        for ref in lp_refs
    )
    certified = (
        f"({observed_lp}) = {mx_ref} AND ({near_top}) = 1"
    )
    levels = (
        [code_aliases, lp_aliases, [mx_alias]]
        if code_aliases
        else [lp_aliases, [mx_alias]]
    )
    return FamilyScreen(suspect_sql=f"NOT ({certified})", levels=levels)
