"""Columnar I/O suite: :class:`ColumnBatch`, negotiation, and per-backend
row/column parity.

The columnar data plane (:mod:`repro.io.columnar`) must be invisible in
the output: for every backend, every chunk size, and every entry point,
the column path yields exactly the cell values, errors, reports, and
models the row path yields. This suite pins:

* the :class:`ColumnBatch` container itself (pivot round trips, null
  masks, concat, validation, pickling);
* the ``io_path`` negotiation rule (``auto`` picks columns only on
  natively columnar backends);
* per-backend value parity (``read_columns`` vs ``read``, batch
  boundaries vs ``chunks``), including the chunked-equals-whole
  micro-assert for the row path's rewritten ``chunks()``;
* byte-identical extraction errors — mistyped cells and structural
  failures must surface the row path's first-error-in-row-order message
  even though the column path converts column-at-a-time;
* session (``audit_source`` / ``fit_source``) and CLI (``--io-path``)
  parity end to end.
"""

import datetime
import pickle
import sqlite3

import numpy as np
import pytest

from repro import cli
from repro.core import AuditorConfig, AuditReport, AuditSession
from repro.core.serialize import auditor_to_dict
from repro.io import ColumnBatch, open_source, resolve_io_path, write_table
from repro.io.base import TableSource
from repro.io.columnar import ColumnarSource
from repro.quis import generate_quis_sample
from repro.schema import Schema, Table, date, nominal, numeric

try:
    import pyarrow  # noqa: F401

    HAVE_PYARROW = True
except ImportError:
    HAVE_PYARROW = False

BACKENDS = ["csv", "jsonl", "sqlite"] + (["parquet"] if HAVE_PYARROW else [])

_EXT = {"csv": "t.csv", "jsonl": "t.jsonl", "sqlite": "t.db", "parquet": "t.parquet"}


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            nominal("A", ["x", "y", "z"]),
            numeric("N", 0, 2**70, integer=True),
            numeric("F", 0.0, 1.0),
            date("D", datetime.date(2000, 1, 1), datetime.date(2001, 1, 1)),
        ]
    )


@pytest.fixture
def table(schema) -> Table:
    # nulls, an out-of-domain nominal, and integers beyond 2**53 (where
    # a float64 detour would corrupt the value) all ride along
    return Table(
        schema,
        [
            ["x", 5, 0.25, datetime.date(2000, 3, 1)],
            ["zzz", 2**60 + 1, 0.5, None],
            [None, None, None, datetime.date(2000, 12, 31)],
            ["y", 0, 0.125, datetime.date(2000, 6, 15)],
            ["z", 2**53 + 1, 1.0, datetime.date(2000, 1, 1)],
        ],
    )


def _location(tmp_path, fmt: str, table: Table) -> str:
    location = str(tmp_path / _EXT[fmt])
    write_table(table, location)
    return location


# -- the ColumnBatch container -------------------------------------------------


class TestColumnBatch:
    def test_pivot_round_trip(self, schema, table):
        batch = ColumnBatch.from_table(table)
        assert batch.n_rows == table.n_rows
        assert batch.schema == schema
        for name in schema.names:
            assert batch.column(name) == table.column(name)
        assert batch.to_table().rows == table.rows

    def test_empty_table(self, schema):
        batch = ColumnBatch.from_table(Table(schema))
        assert batch.n_rows == 0
        assert batch.to_table().rows == []

    def test_null_mask_cached(self, schema, table):
        batch = ColumnBatch.from_table(table)
        mask = batch.null_mask("N")
        assert mask.dtype == bool
        assert mask.tolist() == [v is None for v in table.column("N")]
        assert batch.null_mask("N") is mask  # cached

    def test_numeric_view_defaults_to_none(self, schema, table):
        assert ColumnBatch.from_table(table).numeric_view("F") is None

    def test_concat(self, schema, table):
        whole = ColumnBatch.from_table(table)
        parts = [
            ColumnBatch(
                schema,
                {name: whole.column(name)[i : i + 2] for name in schema.names},
            )
            for i in range(0, table.n_rows, 2)
        ]
        merged = ColumnBatch.concat(schema, parts)
        assert merged.n_rows == table.n_rows
        for name in schema.names:
            assert merged.column(name) == whole.column(name)

    def test_validate_matches_table_validate(self, schema, table):
        bad = Table(schema, [row[:] for row in table.rows])
        bad.rows[2][1] = -5  # below the numeric domain
        batch = ColumnBatch.from_table(bad)
        with pytest.raises(ValueError) as row_err:
            bad.validate()
        with pytest.raises(ValueError) as col_err:
            batch.validate()
        assert str(col_err.value) == str(row_err.value)

    def test_pickle_drops_mask_cache(self, schema, table):
        batch = ColumnBatch.from_table(table)
        batch.null_mask("A")
        clone = pickle.loads(pickle.dumps(batch))
        assert clone._masks == {}
        assert clone.n_rows == batch.n_rows
        for name in schema.names:
            assert clone.column(name) == batch.column(name)


# -- negotiation ---------------------------------------------------------------


class _RowOnlySource(TableSource):
    """A third-party-style source implementing only the row contract."""

    def __init__(self, table: Table):
        super().__init__(table.schema)
        self._table = table

    def _iter_rows(self):
        yield from ([*row] for row in self._table.rows)


class TestNegotiation:
    def test_auto_prefers_columns_on_native_backends(self, tmp_path, schema, table):
        for fmt in BACKENDS:
            subdir = tmp_path / fmt
            subdir.mkdir()
            with open_source(schema, _location(subdir, fmt, table)) as source:
                assert source.supports_columns
                assert isinstance(source, ColumnarSource)
                assert resolve_io_path(source, "auto") == "columns"

    def test_auto_falls_back_to_rows(self, table):
        source = _RowOnlySource(table)
        assert not source.supports_columns
        assert resolve_io_path(source, "auto") == "rows"

    def test_explicit_values_pass_through(self, table):
        source = _RowOnlySource(table)
        assert resolve_io_path(source, "columns") == "columns"
        assert resolve_io_path(source, "rows") == "rows"

    def test_invalid_io_path_rejected(self, table):
        with pytest.raises(ValueError, match="io_path"):
            resolve_io_path(_RowOnlySource(table), "fast")

    def test_row_only_source_still_pivots(self, table):
        """Forcing columns on a row-only source uses the pivot fallback."""
        source = _RowOnlySource(table)
        batch = source.read_columns()
        for name in table.schema.names:
            assert batch.column(name) == table.column(name)


# -- per-backend value parity --------------------------------------------------


@pytest.mark.parametrize("fmt", BACKENDS)
class TestBackendParity:
    def test_read_columns_matches_read(self, tmp_path, schema, table, fmt):
        location = _location(tmp_path, fmt, table)
        with open_source(schema, location) as source:
            rows = source.read()
        with open_source(schema, location) as source:
            batch = source.read_columns()
        assert batch.n_rows == rows.n_rows
        for name in schema.names:
            assert batch.column(name) == rows.column(name)

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 1000])
    def test_batch_boundaries_match_chunks(
        self, tmp_path, schema, table, fmt, chunk_size
    ):
        location = _location(tmp_path, fmt, table)
        with open_source(schema, location) as source:
            chunks = list(source.chunks(chunk_size))
        with open_source(schema, location) as source:
            batches = list(source.column_batches(chunk_size))
        assert [b.n_rows for b in batches] == [c.n_rows for c in chunks]
        for chunk, batch in zip(chunks, batches):
            for name in schema.names:
                assert batch.column(name) == chunk.column(name)

    @pytest.mark.parametrize("chunk_size", [1, 3, 1000])
    def test_chunked_read_equals_whole_read(
        self, tmp_path, schema, table, fmt, chunk_size
    ):
        """The rewritten ``chunks()`` assembles exactly ``read()``'s rows."""
        location = _location(tmp_path, fmt, table)
        with open_source(schema, location) as source:
            whole = source.read()
        with open_source(schema, location) as source:
            stitched = [row for chunk in source.chunks(chunk_size) for row in chunk.rows]
        assert stitched == whole.rows

    def test_validate_parity(self, tmp_path, schema, table, fmt):
        # the out-of-domain nominal converts fine but fails validation:
        # both paths must report the same row and message
        location = _location(tmp_path, fmt, table)
        with open_source(schema, location) as source:
            with pytest.raises(ValueError) as row_err:
                source.read(validate=True)
        with open_source(schema, location) as source:
            with pytest.raises(ValueError) as col_err:
                source.read_columns(validate=True)
        assert str(col_err.value) == str(row_err.value)


# -- byte-identical extraction errors ------------------------------------------


def _read_errors(schema, location) -> tuple[str, str]:
    """(row-path error, column-path error) for a broken stored table."""
    with open_source(schema, location) as source:
        with pytest.raises(ValueError) as row_err:
            source.read()
    with open_source(schema, location) as source:
        with pytest.raises(ValueError) as col_err:
            for _ in source.column_batches(2):
                pass
    return str(row_err.value), str(col_err.value)


class TestErrorParity:
    def test_csv_mistyped_cell(self, tmp_path, schema):
        location = tmp_path / "bad.csv"
        location.write_text(
            "A,N,F,D\nx,1,0.5,2000-03-01\ny,oops,0.5,2000-03-01\n", encoding="utf-8"
        )
        row_msg, col_msg = _read_errors(schema, str(location))
        assert col_msg == row_msg
        assert "line 3" in row_msg and "'N'" in row_msg

    def test_csv_cell_error_before_structural_error(self, tmp_path, schema):
        # row 2 has a bad cell, row 3 has a bad field count: the row path
        # reports the *cell* error first, so the column path must too
        location = tmp_path / "bad.csv"
        location.write_text(
            "A,N,F,D\nx,oops,0.5,2000-03-01\ny,1\n", encoding="utf-8"
        )
        row_msg, col_msg = _read_errors(schema, str(location))
        assert col_msg == row_msg
        assert "line 2" in row_msg

    def test_csv_structural_error_alone(self, tmp_path, schema):
        location = tmp_path / "bad.csv"
        location.write_text(
            "A,N,F,D\nx,1,0.5,2000-03-01\ny,1\n", encoding="utf-8"
        )
        row_msg, col_msg = _read_errors(schema, str(location))
        assert col_msg == row_msg
        assert "expected 4 fields" in row_msg

    def test_jsonl_mistyped_cell(self, tmp_path, schema):
        location = tmp_path / "bad.jsonl"
        location.write_text(
            '{"A":"x","N":1,"F":0.5,"D":"2000-03-01"}\n'
            '{"A":"x","N":"oops","F":0.5,"D":"2000-03-01"}\n',
            encoding="utf-8",
        )
        row_msg, col_msg = _read_errors(schema, str(location))
        assert col_msg == row_msg
        assert "line 2" in row_msg and "'N'" in row_msg

    def test_jsonl_cell_error_before_structural_error(self, tmp_path, schema):
        location = tmp_path / "bad.jsonl"
        location.write_text(
            '{"A":"x","N":true,"F":0.5,"D":"2000-03-01"}\n'
            "not json\n",
            encoding="utf-8",
        )
        row_msg, col_msg = _read_errors(schema, str(location))
        assert col_msg == row_msg
        assert "line 1" in row_msg

    def test_jsonl_structural_error_alone(self, tmp_path, schema):
        location = tmp_path / "bad.jsonl"
        location.write_text(
            '{"A":"x","N":1,"F":0.5,"D":"2000-03-01"}\n'
            '{"A":"x","F":0.5,"D":"2000-03-01"}\n',
            encoding="utf-8",
        )
        row_msg, col_msg = _read_errors(schema, str(location))
        assert col_msg == row_msg
        assert "keys do not match" in row_msg

    def test_sqlite_mistyped_cell(self, tmp_path, schema):
        location = tmp_path / "bad.db"
        connection = sqlite3.connect(location)
        connection.execute('CREATE TABLE data ("A" TEXT, "N", "F", "D" TEXT)')
        connection.execute(
            "INSERT INTO data VALUES ('x', 1, 0.5, '2000-03-01')"
        )
        connection.execute(
            "INSERT INTO data VALUES ('y', 'oops', 0.5, '2000-03-01')"
        )
        connection.commit()
        connection.close()
        row_msg, col_msg = _read_errors(schema, str(location))
        assert col_msg == row_msg
        assert "row 2" in row_msg and "'N'" in row_msg


# -- session parity ------------------------------------------------------------


def _merged_report(session, location, *, io_path, chunk_size, n_jobs=1) -> AuditReport:
    return AuditReport.merge(
        session.audit_source(
            location, chunk_size=chunk_size, io_path=io_path, n_jobs=n_jobs
        )
    )


@pytest.mark.parametrize("fmt", BACKENDS)
class TestSessionParity:
    @pytest.fixture
    def stored_sample(self, tmp_path, fmt):
        sample = generate_quis_sample(300, seed=2003)
        return sample, _location(tmp_path, fmt, sample.dirty)

    def test_audit_source_parity(self, stored_sample, fmt):
        sample, location = stored_sample
        session = AuditSession(sample.dirty.schema, AuditorConfig())
        session.fit(sample.dirty)
        reference = session.audit(sample.dirty)
        for chunk_size in (64, 1000):
            rows = _merged_report(
                session, location, io_path="rows", chunk_size=chunk_size
            )
            cols = _merged_report(
                session, location, io_path="columns", chunk_size=chunk_size
            )
            auto = _merged_report(
                session, location, io_path="auto", chunk_size=chunk_size
            )
            assert rows.findings == cols.findings == auto.findings
            assert rows.findings == reference.findings
            assert rows.record_confidence == cols.record_confidence

    def test_fit_source_parity(self, stored_sample, fmt):
        sample, location = stored_sample
        fingerprints = set()
        for io_path in ("rows", "columns", "auto"):
            session = AuditSession(sample.dirty.schema, AuditorConfig())
            session.fit_source(location, io_path=io_path)
            fingerprints.add(
                str(sorted(auditor_to_dict(session.auditor).items()))
            )
        assert len(fingerprints) == 1


# -- CLI parity ----------------------------------------------------------------


def test_cli_io_path_parity(tmp_path):
    sample = generate_quis_sample(200, seed=2003)
    db = str(tmp_path / "wh.db")
    write_table(sample.dirty, db)
    from repro.schema.serialize import schema_to_dict
    import json

    schema_path = tmp_path / "schema.json"
    schema_path.write_text(
        json.dumps(schema_to_dict(sample.dirty.schema)), encoding="utf-8"
    )
    models, findings = {}, {}
    for io_path in ("rows", "columns"):
        model = str(tmp_path / f"model_{io_path}.json")
        out = str(tmp_path / f"findings_{io_path}.jsonl")
        assert cli.main(
            [
                "fit",
                "--schema", str(schema_path),
                "--input", db,
                "--model-out", model,
                "--io-path", io_path,
            ]
        ) == 0
        assert cli.main(
            [
                "audit",
                "--model", model,
                "--input", db,
                "--findings-out", out,
                "--io-path", io_path,
            ]
        ) == 0
        models[io_path] = open(model, encoding="utf-8").read()
        findings[io_path] = open(out, encoding="utf-8").read()
    assert models["rows"] == models["columns"]
    assert findings["rows"] == findings["columns"]
