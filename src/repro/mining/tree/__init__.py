"""C4.5-style decision trees with the paper's data-auditing adjustments."""

from repro.mining.tree.classify import predict_counts, predict_distribution
from repro.mining.tree.grow import PruningStrategy, TreeConfig, TreeGrower, grow_tree
from repro.mining.tree.node import Leaf, Node, NominalSplit, NumericSplit
from repro.mining.tree.prune import (
    leaf_detection_useful,
    pessimistic_error,
    prune_expected_error_confidence,
    prune_pessimistic,
    subtree_expected_error_confidence,
    subtree_has_useful_leaf,
)
from repro.mining.tree.render import render_tree
from repro.mining.tree.rules import PathCondition, TreeRule, extract_rules

__all__ = [
    "Node",
    "Leaf",
    "NominalSplit",
    "NumericSplit",
    "PruningStrategy",
    "TreeConfig",
    "TreeGrower",
    "grow_tree",
    "predict_counts",
    "predict_distribution",
    "pessimistic_error",
    "prune_pessimistic",
    "leaf_detection_useful",
    "subtree_has_useful_leaf",
    "subtree_expected_error_confidence",
    "prune_expected_error_confidence",
    "PathCondition",
    "TreeRule",
    "extract_rules",
    "render_tree",
]
