"""Tests for the binomial confidence-interval bounds."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mining import (
    ConfidenceBounds,
    IntervalMethod,
    clopper_pearson_lower,
    clopper_pearson_upper,
    normal_quantile,
    wilson_lower,
    wilson_upper,
)


class TestNormalQuantile:
    def test_median(self):
        assert abs(normal_quantile(0.5)) < 1e-9

    def test_known_values(self):
        assert math.isclose(normal_quantile(0.975), 1.959964, abs_tol=1e-5)
        assert math.isclose(normal_quantile(0.95), 1.644854, abs_tol=1e-5)
        assert math.isclose(normal_quantile(0.025), -1.959964, abs_tol=1e-5)

    def test_tails(self):
        assert normal_quantile(1e-9) < -5
        assert normal_quantile(1 - 1e-9) > 5

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)

    @given(st.floats(0.001, 0.999))
    def test_antisymmetric(self, p):
        assert math.isclose(normal_quantile(p), -normal_quantile(1 - p), abs_tol=1e-7)


class TestWilsonBounds:
    @given(
        st.floats(0.0, 1.0),
        st.integers(1, 10_000),
        st.floats(0.55, 0.999),
    )
    def test_bounds_bracket_estimate(self, p, n, confidence):
        low = wilson_lower(p, n, confidence)
        high = wilson_upper(p, n, confidence)
        assert 0.0 <= low <= p + 1e-12
        assert p - 1e-12 <= high <= 1.0

    @given(st.floats(0.05, 0.95), st.floats(0.6, 0.99))
    def test_bounds_tighten_with_n(self, p, confidence):
        widths = [
            wilson_upper(p, n, confidence) - wilson_lower(p, n, confidence)
            for n in (10, 100, 1000)
        ]
        assert widths[0] > widths[1] > widths[2]

    @given(st.floats(0.05, 0.95), st.integers(5, 1000))
    def test_bounds_widen_with_confidence(self, p, n):
        narrow = wilson_upper(p, n, 0.7) - wilson_lower(p, n, 0.7)
        wide = wilson_upper(p, n, 0.99) - wilson_lower(p, n, 0.99)
        assert wide > narrow

    def test_zero_n_is_vacuous(self):
        assert wilson_lower(0.5, 0, 0.95) == 0.0
        assert wilson_upper(0.5, 0, 0.95) == 1.0

    def test_pure_proportion_small_n(self):
        # even a perfectly pure sample of 5 leaves real uncertainty
        assert wilson_lower(1.0, 5, 0.95) < 0.8
        assert wilson_lower(1.0, 1000, 0.95) > 0.99


class TestClopperPearson:
    def test_exact_bounds_bracket(self):
        low = clopper_pearson_lower(0.9, 100, 0.95)
        high = clopper_pearson_upper(0.9, 100, 0.95)
        assert low < 0.9 < high

    def test_extreme_proportions(self):
        assert clopper_pearson_lower(0.0, 50, 0.95) == 0.0
        assert clopper_pearson_upper(1.0, 50, 0.95) == 1.0
        # rule of three: upper bound of 0/n at 95 % ≈ 3/n
        assert math.isclose(clopper_pearson_upper(0.0, 100, 0.95), 0.0295, abs_tol=0.003)

    def test_agrees_with_wilson_roughly(self):
        for p, n in [(0.5, 200), (0.9, 500), (0.1, 50)]:
            assert abs(clopper_pearson_upper(p, n, 0.95) - wilson_upper(p, n, 0.95)) < 0.05


class TestConfidenceBounds:
    def test_methods_dispatch(self):
        wilson = ConfidenceBounds(0.9, IntervalMethod.WILSON)
        exact = ConfidenceBounds(0.9, IntervalMethod.CLOPPER_PEARSON)
        assert wilson.left_bound(0.8, 100) != exact.left_bound(0.8, 100)
        assert wilson.left_bound(0.8, 100) == wilson_lower(0.8, 100, 0.9)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            ConfidenceBounds(0.4)
        with pytest.raises(ValueError):
            ConfidenceBounds(1.0)

    def test_pessimistic_error_is_right_bound(self):
        bounds = ConfidenceBounds(0.75)
        assert bounds.pessimistic_error(0.1, 50) == bounds.right_bound(0.1, 50)
        assert bounds.pessimistic_error(0.0, 10) > 0.0  # pessimism on pure leaves
