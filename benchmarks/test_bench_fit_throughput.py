"""E12b — fit throughput: vectorized column path vs the row-path oracle.

Companion sweep to E12 scaling, isolating structure induction. The fit
hot path encodes every table column exactly once into NumPy arrays
shared by all per-attribute classifiers (``fit_path="columns"``) and can
fan the per-attribute fits out over a process pool (``fit_n_jobs``); the
legacy cell-at-a-time path (``fit_path="rows"``) is kept as the parity
oracle. This bench measures all three configurations on QUIS samples,
verifies the fitted models are byte-identical, and records the speedups.

The ≥5× target is a multi-core number (per-attribute fan-out on ≥4
cores); on smaller machines the honest single-core speedup is recorded
and only column-vs-row improvement is asserted.
"""

import json
import os
import time

from repro.core import AuditorConfig, DataAuditor
from repro.core.serialize import auditor_to_dict
from repro.quis import generate_quis_sample

SIZES = (20_000, 80_000)

_CORES = os.cpu_count() or 1


def _fit_seconds(sample, *, fit_path: str, fit_n_jobs: int = 1) -> tuple[float, DataAuditor]:
    auditor = DataAuditor(
        sample.schema,
        AuditorConfig(
            min_error_confidence=0.8, fit_path=fit_path, fit_n_jobs=fit_n_jobs
        ),
    )
    started = time.perf_counter()
    auditor.fit(sample.dirty)
    return time.perf_counter() - started, auditor


def test_fit_throughput_sweep(benchmark, record_table):
    jobs = min(_CORES, 8)

    def run_all():
        measurements = []
        for size in SIZES:
            sample = generate_quis_sample(size, seed=2003)
            rows_s, rows_auditor = _fit_seconds(sample, fit_path="rows")
            cols_s, cols_auditor = _fit_seconds(sample, fit_path="columns")
            if jobs > 1:
                par_s, par_auditor = _fit_seconds(
                    sample, fit_path="columns", fit_n_jobs=jobs
                )
            else:
                par_s, par_auditor = cols_s, cols_auditor
            documents = {
                json.dumps(auditor_to_dict(a), sort_keys=True)
                for a in (rows_auditor, cols_auditor, par_auditor)
            }
            assert len(documents) == 1, "fit paths produced different models"
            measurements.append((size, rows_s, cols_s, par_s))
        return measurements

    measurements = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "E12b — fit throughput: row-path oracle vs vectorized columns vs "
        f"parallel columns ({_CORES} core(s), fit_n_jobs={jobs})",
        f"{'records':>9}  {'rows[s]':>8}  {'cols[s]':>8}  {'par[s]':>8}  "
        f"{'cols×':>6}  {'par×':>6}",
    ]
    for size, rows_s, cols_s, par_s in measurements:
        lines.append(
            f"{size:>9}  {rows_s:>8.2f}  {cols_s:>8.2f}  {par_s:>8.2f}  "
            f"{rows_s / cols_s:>6.2f}  {rows_s / par_s:>6.2f}"
        )
    lines.append(
        "\nmodels byte-identical across all three configurations at every size"
    )
    if _CORES < 4:
        lines.append(
            f"(single-/low-core host: the ≥5× target needs the per-attribute "
            f"fan-out on ≥4 cores; honest numbers above)"
        )
    record_table("E12_fit_throughput", "\n".join(lines))

    size, rows_s, cols_s, par_s = measurements[-1]
    # the vectorized path must beat the row path outright on one core
    assert cols_s < rows_s
    # the multi-core fan-out target (acceptance: ≥5× at 80k rows)
    if _CORES >= 4:
        assert rows_s / par_s >= 5.0
