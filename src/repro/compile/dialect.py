"""SQL dialect descriptors for the model compiler.

The compiler (:mod:`repro.compile`) emits one deviation-screening query
per audited attribute. Everything dialect-specific — identifier quoting,
parameter placeholders, the storage-cleanliness guards, the row-number
window — is routed through a :class:`SqlDialect` so that DuckDB or
PostgreSQL backends can slot in later by providing another instance;
today only :data:`SQLITE` is implemented and executable.

Parameters are always *bound*, never inlined as text: a bound ``float``
arrives in the engine as the exact IEEE double Python holds, which the
byte-parity contract of :mod:`repro.compile.engine` depends on
(``docs/sql_compilation.md``). Placeholders are numbered (``?3``) so a
query can be assembled from fragments built in any order.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SqlDialect", "SQLITE"]


@dataclass(frozen=True)
class SqlDialect:
    """Descriptor of one SQL target.

    Attributes
    ----------
    name:
        Registry key (``"sqlite"``); the execution engine refuses
        dialects it cannot run.
    max_parameters:
        Upper bound on bound parameters per statement. Compilation
        fails over to the in-memory path when a model needs more.
    max_expression_depth:
        Upper bound on expression-tree nesting (deep decision trees
        compile to deeply nested ``CASE`` expressions).
    """

    name: str
    max_parameters: int = 32766
    max_expression_depth: int = 900

    def quote(self, identifier: str) -> str:
        """Quote *identifier* for use as a column or table name."""
        return '"' + identifier.replace('"', '""') + '"'

    def placeholder(self, index: int) -> str:
        """The 1-based numbered parameter placeholder (``?3``)."""
        return f"?{index}"


#: The one executable dialect: the stdlib ``sqlite3`` backend.
SQLITE = SqlDialect(name="sqlite")
