"""Hypothesis strategies shared by the property-based tests.

Everything is generated against the *tiny* logic schema (two nominal, two
small integer attributes) so that satisfiability and implication verdicts
can be cross-checked by brute-force enumeration of all possible records.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from hypothesis import strategies as st

from repro.logic import (
    And,
    Atom,
    Eq,
    EqAttr,
    Formula,
    Gt,
    GtAttr,
    IsNotNull,
    IsNull,
    Lt,
    LtAttr,
    Ne,
    NeAttr,
    Or,
    Rule,
)
from repro.schema import Schema, nominal, numeric

#: The schema every generated formula refers to.
TINY = Schema(
    [
        nominal("A", ["a", "b", "c"]),
        nominal("B", ["x", "y"]),
        numeric("N", 0, 3, integer=True),
        numeric("M", 0, 3, integer=True),
    ]
)

_NOMINAL = {"A": ["a", "b", "c"], "B": ["x", "y"]}
_NUMERIC = {"N": [0, 1, 2, 3], "M": [0, 1, 2, 3]}
_ALL_ATTRS = ["A", "B", "N", "M"]


def records() -> st.SearchStrategy[dict]:
    """Random records over the tiny schema, nulls included."""
    return st.fixed_dictionaries(
        {
            "A": st.sampled_from(["a", "b", "c", None]),
            "B": st.sampled_from(["x", "y", None]),
            "N": st.sampled_from([0, 1, 2, 3, None]),
            "M": st.sampled_from([0, 1, 2, 3, None]),
        }
    )


def all_records() -> Iterator[dict]:
    """Exhaustive enumeration of every record over the tiny schema."""
    for a, b, n, m in itertools.product(
        ["a", "b", "c", None], ["x", "y", None], [0, 1, 2, 3, None], [0, 1, 2, 3, None]
    ):
        yield {"A": a, "B": b, "N": n, "M": m}


def propositional_atoms() -> st.SearchStrategy[Atom]:
    nominal_eq = st.builds(
        lambda attr, idx: Eq(attr, _NOMINAL[attr][idx % len(_NOMINAL[attr])]),
        st.sampled_from(["A", "B"]),
        st.integers(0, 2),
    )
    nominal_ne = st.builds(
        lambda attr, idx: Ne(attr, _NOMINAL[attr][idx % len(_NOMINAL[attr])]),
        st.sampled_from(["A", "B"]),
        st.integers(0, 2),
    )
    numeric_cmp = st.builds(
        lambda attr, value, op: op(attr, value),
        st.sampled_from(["N", "M"]),
        st.integers(0, 3),
        st.sampled_from([Eq, Ne, Lt, Gt]),
    )
    null_test = st.builds(
        lambda attr, op: op(attr),
        st.sampled_from(_ALL_ATTRS),
        st.sampled_from([IsNull, IsNotNull]),
    )
    return st.one_of(nominal_eq, nominal_ne, numeric_cmp, null_test)


def relational_atoms() -> st.SearchStrategy[Atom]:
    nominal_rel = st.builds(
        lambda op: op("A", "B"), st.sampled_from([EqAttr, NeAttr])
    )
    numeric_rel = st.builds(
        lambda op, flip: op("M", "N") if flip else op("N", "M"),
        st.sampled_from([EqAttr, NeAttr, LtAttr, GtAttr]),
        st.booleans(),
    )
    return st.one_of(nominal_rel, numeric_rel)


def atoms() -> st.SearchStrategy[Atom]:
    """Random atomic TDG-formulae over the tiny schema."""
    return st.one_of(propositional_atoms(), relational_atoms())


def _connect(children: st.SearchStrategy[Formula]) -> st.SearchStrategy[Formula]:
    parts = st.lists(children, min_size=2, max_size=3)

    def build(kind_and_parts):
        kind, part_list = kind_and_parts
        distinct = []
        for part in part_list:
            if part not in distinct:
                distinct.append(part)
        if len(distinct) < 2:
            return distinct[0]
        return And(*distinct) if kind == "and" else Or(*distinct)

    return st.tuples(st.sampled_from(["and", "or"]), parts).map(build)


def formulas(max_depth: int = 3) -> st.SearchStrategy[Formula]:
    """Random TDG-formulae of bounded nesting depth."""
    return st.recursive(atoms(), _connect, max_leaves=6)


def rules() -> st.SearchStrategy[Rule]:
    """Random (not necessarily natural) TDG-rules."""
    return st.builds(Rule, formulas(), formulas())
