"""Disjunctive normal form of TDG-formulae.

The pragmatic satisfiability test (sec. 4.1.3) first transforms the
formula into DNF; the formula is satisfiable iff some disjunct is. A
disjunct is represented as a tuple of atoms (an implicit conjunction).

TDG-formulae are negation-free, so the usual distribution laws suffice.
DNF can blow up exponentially; the rule generator caps formula complexity,
and :func:`to_dnf` enforces a configurable safety limit on the number of
disjuncts.
"""

from __future__ import annotations

from repro.logic.atoms import Atom
from repro.logic.base import Formula
from repro.logic.formulas import And, Or

__all__ = ["to_dnf", "DnfExplosionError"]

#: Default limit on the number of DNF disjuncts.
DEFAULT_MAX_DISJUNCTS = 4096


class DnfExplosionError(RuntimeError):
    """Raised when DNF conversion would exceed the disjunct limit."""


def to_dnf(formula: Formula, *, max_disjuncts: int = DEFAULT_MAX_DISJUNCTS) -> list[tuple[Atom, ...]]:
    """Convert *formula* to DNF: a list of conjunctions of atoms.

    Each returned tuple has duplicate atoms removed (order preserved);
    duplicate disjuncts are removed as well.
    """
    disjuncts = _convert(formula, max_disjuncts)
    result: list[tuple[Atom, ...]] = []
    seen: set[frozenset[Atom]] = set()
    for conj in disjuncts:
        deduped: list[Atom] = []
        inner_seen: set[Atom] = set()
        for atom in conj:
            if atom not in inner_seen:
                inner_seen.add(atom)
                deduped.append(atom)
        key = frozenset(deduped)
        if key not in seen:
            seen.add(key)
            result.append(tuple(deduped))
    return result


def _convert(formula: Formula, max_disjuncts: int) -> list[tuple[Atom, ...]]:
    if isinstance(formula, Atom):
        return [(formula,)]
    if isinstance(formula, Or):
        out: list[tuple[Atom, ...]] = []
        for part in formula.parts:
            out.extend(_convert(part, max_disjuncts))
            if len(out) > max_disjuncts:
                raise DnfExplosionError(
                    f"DNF exceeds {max_disjuncts} disjuncts; simplify the formula"
                )
        return out
    if isinstance(formula, And):
        # cross product of the parts' DNFs
        product: list[tuple[Atom, ...]] = [()]
        for part in formula.parts:
            part_dnf = _convert(part, max_disjuncts)
            product = [
                existing + candidate for existing in product for candidate in part_dnf
            ]
            if len(product) > max_disjuncts:
                raise DnfExplosionError(
                    f"DNF exceeds {max_disjuncts} disjuncts; simplify the formula"
                )
        return product
    raise TypeError(f"cannot convert {type(formula).__name__} to DNF")
