"""E5 / sec. 6.1 claim — correction quality correlates with sensitivity.

Paper: *"it was observed that the quality of correction is highly
correlated to sensitivity."* The bench collects (sensitivity,
correction-quality) pairs across a spread of settings and reports the
Pearson correlation.
"""

import dataclasses
import math

from repro.testenv import ExperimentConfig

SETTINGS = [
    dict(n_records=1500, n_rules=100),
    dict(n_records=3000, n_rules=100),
    dict(n_records=6000, n_rules=100),
    dict(n_records=4000, n_rules=10),
    dict(n_records=4000, n_rules=25),
    dict(n_records=4000, n_rules=50),
    dict(n_records=4000, n_rules=150),
    dict(n_records=4000, n_rules=100, pollution_factor=0.5),
    dict(n_records=4000, n_rules=100, pollution_factor=2.0),
    dict(n_records=4000, n_rules=100, pollution_factor=3.0),
    dict(n_records=4000, n_rules=100, pollution_factor=4.0),
]


def _pearson(xs, ys):
    n = len(xs)
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def test_correction_quality_tracks_sensitivity(benchmark, environment, record_table):
    def run_all():
        results = []
        for overrides in SETTINGS:
            config = dataclasses.replace(ExperimentConfig(), **overrides)
            results.append((overrides, environment.run(config)))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    sensitivities = [result.sensitivity for _, result in results]
    qualities = [result.evaluation.correction_quality for _, result in results]
    correlation = _pearson(sensitivities, qualities)

    lines = [
        "E5 — correction quality vs. sensitivity across settings",
        f"{'setting':>42}  sensitivity  corr.quality",
    ]
    for overrides, result in results:
        name = ", ".join(f"{k}={v}" for k, v in overrides.items())
        lines.append(
            f"{name:>42}  {result.sensitivity:>11.3f}  "
            f"{result.evaluation.correction_quality:>+12.3f}"
        )
    lines.append(f"\nPearson correlation(sensitivity, correction quality) = {correlation:.3f}")
    record_table("E5_correction_quality", "\n".join(lines))

    # The paper claims "highly correlated"; what reproduces robustly is a
    # clearly positive association — the settings with the weakest
    # detection also gain the least from corrections. Absolute quality
    # values sit well below sensitivity because only the top finding per
    # record is corrected and discretized numeric proposals (bin medians)
    # rarely hit the clean value exactly (see EXPERIMENTS.md).
    assert correlation > 0.3
    # corrections never meaningfully degrade the data in these settings
    assert all(quality > -0.05 for quality in qualities)
    # the strongest-detection setting clearly beats the weakest
    paired = sorted(zip(sensitivities, qualities))
    assert paired[-1][1] > paired[0][1]
