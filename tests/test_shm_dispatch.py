"""Shared-memory dispatch suite: transport parity and segment hygiene.

The parallel executor's shared-memory transport (:mod:`repro.core.shm`)
publishes the encoded columns once and has workers attach read-only
views instead of receiving pickled payloads. Its contract is twofold:

* **invisible in the output** — ``dispatch="shared"`` is bit-exact with
  ``dispatch="pickle"`` and with the serial path, for both the audit and
  the fit fan-out;
* **leak-free** — every published ``/dev/shm`` segment is unlinked on
  the success path, on worker failure, and (via the resource tracker)
  when the owning process is killed before it can clean up.

The hygiene half is exercised the unpleasant way: subprocesses that
exit normally, crash a worker mid-fit, and get SIGTERMed while their
segments are live, with the parent test polling ``/dev/shm`` for
stragglers afterwards.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import AuditorConfig, AuditReport, DataAuditor
from repro.core.parallel import (
    DISPATCH_MODES,
    audit_table_parallel,
    fit_table_parallel,
)
from repro.core.shm import (
    SEGMENT_PREFIX,
    ArrayRef,
    SharedColumnStore,
    attach_array,
    shared_memory_available,
)
from repro.quis import generate_quis_sample

SHM_DIR = Path("/dev/shm")

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="POSIX shared memory unavailable (or REPRO_DISABLE_SHM set)",
)

_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _subprocess_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _stray_segments() -> list[str]:
    if not SHM_DIR.is_dir():
        return []
    return sorted(p.name for p in SHM_DIR.glob(f"{SEGMENT_PREFIX}-*"))


def _assert_no_strays(timeout: float = 1.0) -> None:
    """Segments may be reclaimed asynchronously (resource tracker), so
    poll briefly before declaring a leak."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not _stray_segments():
            return
        time.sleep(0.05)
    assert _stray_segments() == []


def _assert_bit_exact(a: AuditReport, b: AuditReport) -> None:
    assert a.n_rows == b.n_rows
    assert a.record_confidence == b.record_confidence
    assert a.findings == b.findings


def _fit_fingerprint(classifiers) -> bytes:
    return json.dumps(
        {name: c.fit_state() for name, c in classifiers.items()}, sort_keys=True
    ).encode()


class _CrashingClassifier:
    def fit(self, dataset):
        raise RuntimeError("worker crash for the leak test")


def _make_crashing(config):
    return _CrashingClassifier()


@pytest.fixture(scope="module")
def quis_audit():
    """A fitted auditor plus its training table (QUIS sample workload)."""
    sample = generate_quis_sample(150, seed=2003)
    auditor = DataAuditor(
        sample.dirty.schema, AuditorConfig(min_error_confidence=0.8)
    ).fit(sample.dirty)
    return auditor, sample.dirty


@pytest.fixture
def shm_probe_reset():
    """Reset the cached availability probe around env-var tests."""
    from repro.core import shm

    shm._available = None
    yield
    shm._available = None


# -- the store itself ----------------------------------------------------------


@needs_shm
class TestSharedColumnStore:
    def test_share_attach_round_trip(self):
        published = np.arange(64, dtype=np.int64).reshape(8, 8)
        with SharedColumnStore() as store:
            ref = store.share(published)
            assert ref.name.startswith(SEGMENT_PREFIX)
            view = attach_array(ref)
            assert view.dtype == published.dtype
            assert view.shape == published.shape
            assert (view == published).all()
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 99
        _assert_no_strays()

    def test_refs_pickle_small(self):
        import pickle

        big = np.zeros(100_000, dtype=np.float64)
        with SharedColumnStore() as store:
            ref = store.share(big)
            # the descriptor, not the data, crosses the pickle boundary
            assert len(pickle.dumps(ref)) < 500
            assert isinstance(ref, ArrayRef)
        _assert_no_strays()

    def test_close_is_idempotent_and_share_after_close_fails(self):
        store = SharedColumnStore()
        store.share(np.arange(4))
        store.close()
        store.close()
        with pytest.raises(RuntimeError):
            store.share(np.arange(4))
        _assert_no_strays()

    def test_abandoned_store_is_finalized(self):
        store = SharedColumnStore()
        store.share(np.arange(16))
        assert _stray_segments()
        del store  # the weakref finalizer must reclaim the segment
        _assert_no_strays()


# -- transport parity ----------------------------------------------------------


class TestDispatchParity:
    def test_invalid_dispatch_rejected(self, quis_audit):
        auditor, table = quis_audit
        with pytest.raises(ValueError, match="dispatch"):
            audit_table_parallel(auditor, table, 2, dispatch="carrier-pigeon")

    @pytest.mark.parametrize("dispatch", DISPATCH_MODES)
    def test_audit_transports_bit_exact(self, quis_audit, dispatch):
        auditor, table = quis_audit
        serial = auditor.audit(table)
        parallel = audit_table_parallel(auditor, table, 2, dispatch=dispatch)
        _assert_bit_exact(parallel, serial)
        _assert_no_strays()

    @pytest.mark.parametrize("dispatch", DISPATCH_MODES)
    def test_fit_transports_bit_exact(self, quis_audit, dispatch):
        fitted, table = quis_audit
        reference = _fit_fingerprint(fitted.classifiers)
        fresh = DataAuditor(table.schema, AuditorConfig(min_error_confidence=0.8))
        classifiers = fit_table_parallel(fresh, table, 2, dispatch=dispatch)
        assert _fit_fingerprint(classifiers) == reference
        _assert_no_strays()

    def test_rows_fit_path_refuses_shared(self, quis_audit):
        _, table = quis_audit
        auditor = DataAuditor(
            table.schema,
            AuditorConfig(min_error_confidence=0.8, fit_path="rows"),
        )
        with pytest.raises(ValueError, match="fit_path"):
            fit_table_parallel(auditor, table, 2, dispatch="shared")

    def test_rows_fit_path_auto_falls_back(self, quis_audit):
        fitted, table = quis_audit
        auditor = DataAuditor(
            table.schema,
            AuditorConfig(min_error_confidence=0.8, fit_path="rows"),
        )
        classifiers = fit_table_parallel(auditor, table, 2, dispatch="auto")
        assert _fit_fingerprint(classifiers) == _fit_fingerprint(fitted.classifiers)
        _assert_no_strays()

    def test_disable_env_knob(self, quis_audit, shm_probe_reset, monkeypatch):
        auditor, table = quis_audit
        monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
        # auto silently degrades to the pickle transport…
        serial = auditor.audit(table)
        _assert_bit_exact(
            audit_table_parallel(auditor, table, 2, dispatch="auto"), serial
        )
        # …while an explicit shared request fails loudly, naming the knob
        with pytest.raises(RuntimeError, match="REPRO_DISABLE_SHM"):
            audit_table_parallel(auditor, table, 2, dispatch="shared")


# -- segment hygiene under failure ---------------------------------------------


@needs_shm
@pytest.mark.skipif(not SHM_DIR.is_dir(), reason="no /dev/shm to inspect")
class TestSegmentHygiene:
    def test_normal_exit_leaves_nothing(self, tmp_path):
        script = tmp_path / "normal_exit.py"
        script.write_text(
            textwrap.dedent(
                """
                from repro.core import AuditorConfig, DataAuditor
                from repro.core.parallel import audit_table_parallel
                from repro.quis import generate_quis_sample

                sample = generate_quis_sample(120, seed=2003)
                auditor = DataAuditor(sample.dirty.schema, AuditorConfig()).fit(
                    sample.dirty
                )
                report = audit_table_parallel(
                    auditor, sample.dirty, 2, dispatch="shared"
                )
                assert report.n_rows == sample.dirty.n_rows
                """
            ),
            encoding="utf-8",
        )
        result = subprocess.run(
            [sys.executable, str(script)],
            env=_subprocess_env(),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        _assert_no_strays(timeout=5.0)

    def test_worker_crash_cleans_segments(self, quis_audit):
        _, table = quis_audit
        auditor = DataAuditor(
            table.schema,
            AuditorConfig(classifier_factory=_make_crashing),
        )
        with pytest.raises(RuntimeError, match="worker crash"):
            fit_table_parallel(auditor, table, 2, dispatch="shared")
        _assert_no_strays(timeout=5.0)

    def test_sigterm_mid_run_is_reclaimed(self, tmp_path):
        """Kill the owner while its segments are live: the resource
        tracker (which survives just long enough to notice) must unlink
        what the finalizers never got to."""
        script = tmp_path / "hold_segments.py"
        script.write_text(
            textwrap.dedent(
                """
                import sys
                import time

                import numpy as np

                from repro.core.shm import SharedColumnStore

                store = SharedColumnStore()
                ref = store.share(np.arange(10_000, dtype=np.int64))
                print(ref.name, flush=True)
                time.sleep(120)  # hold the segment until killed
                """
            ),
            encoding="utf-8",
        )
        process = subprocess.Popen(
            [sys.executable, str(script)],
            env=_subprocess_env(),
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            name = process.stdout.readline().strip()
            assert name.startswith(SEGMENT_PREFIX)
            assert (SHM_DIR / name).exists()
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline and (SHM_DIR / name).exists():
            time.sleep(0.1)
        assert not (SHM_DIR / name).exists()
        _assert_no_strays(timeout=5.0)
