"""The continuous auditor: tail a growing table, audit it in windows.

:class:`TableWatcher` is the subsystem's engine. It polls a
:class:`~repro.monitor.tail.TailReader` for newly-complete rows, audits
them in **fixed windows** of ``window_rows`` (anchored at the committed
row count, *not* at poll batches — so the findings the monitor produces
are a pure function of the stream contents, never of poll timing), and
after each window durably commits, in this order:

1. the window's findings are appended to the findings JSONL file and
   fsynced;
2. the watermark (rows, source offset, findings length, drift state,
   model ref) is atomically replaced.

A crash between the two steps leaves findings the watermark does not
cover; resume truncates the findings file back to the watermark's
length and re-audits from the watermark's source offset — the resumed
file is byte-identical to an uninterrupted run. Within a window the
findings are rendered exactly as ``repro audit --format jsonl`` renders
them (same ``findings_to_table`` → ``JsonlTableSink`` path), so the
cumulative ranked report compares byte-for-byte with a one-shot audit
of the same rows.

Each committed window also feeds the per-attribute
:class:`~repro.monitor.drift.DriftTracker`; sustained drift is answered
by the :class:`~repro.monitor.refit.RefitPolicy` — logged, recorded as
a recommendation, or auto-refit on a rolling buffer of recent rows and
registered to the model registry (the ``latest`` tag flip is what lets
a running ``repro serve`` pick the new model up without restart).

In catch-up mode (``run()``) the watcher drains the source and finally
audits the trailing partial window, so every complete row is covered.
In follow mode (``run(follow=True)``) partial windows are **never**
flushed — a SIGTERM'd follower leaves only whole-window state behind,
which is exactly what makes kill-and-resume deterministic.
"""

from __future__ import annotations

import io
import logging
import os
import threading
from collections import deque
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Union

from repro.core.findings import (
    AuditReport,
    Finding,
    findings_schema,
    findings_to_table,
)
from repro.io.jsonl_backend import JsonlTableSink, JsonlTableSource
from repro.schema.schema import Schema
from repro.schema.table import Table
from repro.schema.types import Value

from .drift import DriftConfig, DriftEvent, DriftTracker
from .refit import RefitPolicy, perform_refit, refit_event_record
from .tail import open_tail
from .watermark import Watermark, load_watermark

__all__ = ["MonitorReport", "TableWatcher"]

logger = logging.getLogger("repro.monitor")


class MonitorReport:
    """The cumulative audit of every row a monitor has committed.

    Grows window by window via :meth:`extend`; ranking is global, so
    :meth:`ranked_findings` of a monitor that consumed *N* rows equals
    the ranked findings of a one-shot audit of those *N* rows (the
    chunked-merge parity guarantee of :class:`AuditReport.merge`). A
    report seeded from a reloaded findings file (:meth:`resumed`) keeps
    counting and ranking but can no longer rebuild the full
    :class:`AuditReport` — record confidences of pre-resume rows were
    not persisted, only their findings.
    """

    def __init__(self, min_error_confidence: float, *, schema: Optional[Schema] = None):
        self.min_error_confidence = min_error_confidence
        self.schema = schema
        self.n_rows = 0
        self.findings: list[Finding] = []  #: window order (ranked per window)
        self._window_reports: Optional[list[AuditReport]] = []

    @classmethod
    def resumed(
        cls,
        min_error_confidence: float,
        findings: Iterable[Finding],
        n_rows: int,
        *,
        schema: Optional[Schema] = None,
    ) -> "MonitorReport":
        """A report seeded from persisted findings after a restart."""
        report = cls(min_error_confidence, schema=schema)
        report.findings = list(findings)
        report.n_rows = n_rows
        report._window_reports = None
        return report

    def extend(self, report: AuditReport) -> None:
        """Append one committed window's :class:`AuditReport`."""
        if report.min_error_confidence != self.min_error_confidence:
            raise ValueError("window report has a different confidence threshold")
        if report.row_offset != self.n_rows:
            raise ValueError(
                f"window is not stream-contiguous: expected rows from "
                f"{self.n_rows}, got row_offset={report.row_offset}"
            )
        self.findings.extend(report.findings)
        self.n_rows += report.n_rows
        if self._window_reports is not None:
            self._window_reports.append(report)

    @property
    def n_findings(self) -> int:
        return len(self.findings)

    @property
    def n_suspicious(self) -> int:
        """Distinct flagged rows (Def.-8 suspicious records)."""
        return len({finding.row for finding in self.findings})

    def ranked_findings(self, limit: Optional[int] = None) -> list[Finding]:
        """All findings ranked globally — the one-shot-audit ordering."""
        ranked = sorted(
            self.findings, key=lambda f: (-f.confidence, f.row, f.attribute)
        )
        return ranked[: limit if limit is not None else len(ranked)]

    def attribute_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.attribute] = counts.get(finding.attribute, 0) + 1
        return counts

    def as_audit_report(self) -> AuditReport:
        """The equivalent whole-stream :class:`AuditReport` (merge of all
        committed windows). Unavailable after a resume."""
        if self._window_reports is None:
            raise ValueError(
                "this report was resumed from persisted findings; "
                "record confidences of pre-resume windows are gone"
            )
        if not self._window_reports:
            return AuditReport(0, [], [], self.min_error_confidence, schema=self.schema)
        return AuditReport.merge(self._window_reports)

    def __repr__(self) -> str:
        return (
            f"MonitorReport(rows={self.n_rows}, findings={self.n_findings}, "
            f"suspicious={self.n_suspicious})"
        )


def _render_findings_jsonl(findings: list[Finding]) -> str:
    """Exactly the CLI/service findings byte stream for one window."""
    if not findings:
        return ""
    buffer = io.StringIO()
    with JsonlTableSink(findings_schema(), buffer) as sink:
        sink.write(findings_to_table(findings))
    return buffer.getvalue()


def _load_findings_file(path: Path) -> list[Finding]:
    """Reload persisted findings; rendering them again reproduces the
    file's bytes exactly (values are already in canonical text form)."""
    findings: list[Finding] = []
    with open(path, "r", encoding="utf-8") as handle:
        source = JsonlTableSource(findings_schema(), handle)
        for cells in source._iter_rows():
            row, attribute, observed, observed_label, expected, conf, support, prop = cells
            findings.append(
                Finding(
                    row=int(row),
                    attribute=attribute,
                    observed_label=observed_label,
                    observed_value=observed,
                    predicted_label=expected,
                    confidence=conf,
                    support=support,
                    proposal=prop,
                )
            )
    return findings


class TableWatcher:
    """Tail one growing source and audit it continuously (module docstring)."""

    def __init__(
        self,
        session,  # AuditSession (untyped to avoid the circular import)
        location: Union[str, Path],
        *,
        state_path: Union[str, Path],
        findings_path: Union[str, Path],
        format: Optional[str] = None,
        null_marker: str = "",
        window_rows: int = 256,
        poll_interval: float = 1.0,
        n_jobs: Optional[int] = None,
        drift: Optional[DriftConfig] = None,
        refit: Optional[RefitPolicy] = None,
        model_ref: Optional[str] = None,
        emit: Optional[Callable[[str], None]] = None,
    ):
        if not session.is_fitted:
            raise ValueError("monitor needs a fitted session (fit or load a model)")
        if window_rows < 1:
            raise ValueError(f"window_rows must be >= 1, got {window_rows}")
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {poll_interval}")
        self.session = session
        self.location = location
        self.source_format = format
        self.state_path = Path(state_path)
        self.findings_path = Path(findings_path)
        self.window_rows = window_rows
        self.poll_interval = poll_interval
        self.n_jobs = n_jobs
        self.refit = refit or RefitPolicy("off")
        self.model_ref = model_ref
        self.emit = emit
        self.error: Optional[str] = None
        self._lock = threading.Lock()
        self._pending: list[list[Value]] = []
        self._pending_offsets: list[int] = []
        self._buffer: Optional[deque] = (
            deque(maxlen=self.refit.refit_rows) if self.refit.wants_buffer else None
        )

        self._tail = open_tail(
            session.schema, location, format=format, null_marker=null_marker
        )
        drift_config = drift or DriftConfig()
        attributes = session.auditor.audited_attributes()

        watermark = load_watermark(self.state_path)
        if watermark is not None:
            self._resume(watermark, drift_config, attributes)
        else:
            self.watermark = Watermark(source_offset=self._tail.start_offset())
            self.watermark.model_ref = model_ref
            self.tracker = DriftTracker(attributes, drift_config)
            self.report = MonitorReport(
                session.config.min_error_confidence, schema=session.schema
            )
            self.findings_path.parent.mkdir(parents=True, exist_ok=True)
            self._findings = open(self.findings_path, "wb")
        self._read_offset = self.watermark.source_offset

    def _resume(
        self,
        watermark: Watermark,
        drift_config: DriftConfig,
        attributes: list[str],
    ) -> None:
        """Pick up exactly where a previous (possibly killed) run stopped."""
        try:
            size = self.findings_path.stat().st_size
        except FileNotFoundError:
            size = -1
        if size < watermark.findings_bytes:
            raise ValueError(
                f"cannot resume: {self.findings_path} holds {max(size, 0)} bytes "
                f"but the watermark covers {watermark.findings_bytes} "
                f"(the findings file was deleted or rewritten under the monitor)"
            )
        # findings past the watermark were never committed — a crash landed
        # between the findings append and the watermark write; drop them,
        # they will be regenerated identically
        self._findings = open(self.findings_path, "r+b")
        self._findings.truncate(watermark.findings_bytes)
        self._findings.seek(watermark.findings_bytes)
        findings = _load_findings_file(self.findings_path)
        if len(findings) != watermark.findings_rows:
            raise ValueError(
                f"cannot resume: {self.findings_path} holds {len(findings)} findings "
                f"but the watermark records {watermark.findings_rows}"
            )
        self.watermark = watermark
        if watermark.model_ref:
            self.model_ref = watermark.model_ref
        self.tracker = (
            DriftTracker.from_dict(watermark.drift, attributes, drift_config)
            if watermark.drift
            else DriftTracker(attributes, drift_config)
        )
        self.report = MonitorReport.resumed(
            self.session.config.min_error_confidence,
            findings,
            watermark.rows,
            schema=self.session.schema,
        )
        logger.info(
            "resumed at row %d (window %d, offset %d)",
            watermark.rows,
            watermark.windows,
            watermark.source_offset,
        )

    # -- polling -----------------------------------------------------------

    def poll(self) -> int:
        """Read newly-complete rows and commit every full window.

        Returns the number of rows read this poll (committed or still
        pending). Partial trailing records in the source are simply not
        returned by the tail reader yet — the next poll re-reads them.
        """
        rows = self._tail.read_new(self._read_offset)
        for cells, end_offset in rows:
            self._pending.append(cells)
            self._pending_offsets.append(end_offset)
        if rows:
            self._read_offset = rows[-1][1]
        while len(self._pending) >= self.window_rows:
            self._commit_window(self.window_rows)
        return len(rows)

    def flush(self) -> None:
        """Commit the pending partial window (catch-up mode only)."""
        if self._pending:
            self._commit_window(len(self._pending))

    def run(
        self,
        *,
        follow: bool = False,
        stop: Optional[threading.Event] = None,
    ) -> MonitorReport:
        """Catch up with the source, or follow it until *stop* is set.

        Catch-up (the default) drains everything currently readable,
        audits the trailing partial window, and returns. Follow mode
        polls every ``poll_interval`` seconds and never flushes a
        partial window — stopping mid-stream leaves only whole-window
        state, so the next run resumes deterministically.
        """
        if follow:
            stop = stop or threading.Event()
            while not stop.is_set():
                self.poll()
                stop.wait(self.poll_interval)
        else:
            while self.poll():
                pass
            self.flush()
        return self.report

    # -- the durable commit ------------------------------------------------

    def _commit_window(self, n_rows: int) -> None:
        with self._lock:
            cells = self._pending[:n_rows]
            end_offset = self._pending_offsets[n_rows - 1]
            table = Table(self.session.schema, cells)
            report = self.session.audit(table, n_jobs=self.n_jobs).with_row_offset(
                self.watermark.rows
            )
            if self._buffer is not None:
                self._buffer.extend(cells)

            # 1. findings become durable
            text = _render_findings_jsonl(report.findings)
            data = text.encode("utf-8")
            if data:
                self._findings.write(data)
                self._findings.flush()
                os.fsync(self._findings.fileno())
            if self.emit is not None and text:
                self.emit(text)

            # 2. drift + refit decide the model the *next* window uses
            events = self.tracker.observe(n_rows, self._window_counts(report))
            for event in events:
                logger.warning(
                    "drift detected: attribute=%s window=%d direction=%s "
                    "score=%.4f rate=%.4f baseline=%.4f",
                    event.attribute,
                    event.window,
                    event.direction,
                    event.score,
                    event.window_rate,
                    event.baseline_rate,
                )
            if events:
                self._respond_to_drift(events)

            # 3. the watermark commits it all atomically
            self.watermark.rows += n_rows
            self.watermark.windows += 1
            self.watermark.source_offset = end_offset
            self.watermark.findings_bytes += len(data)
            self.watermark.findings_rows += len(report.findings)
            self.watermark.drift = self.tracker.to_dict()
            self.watermark.model_ref = self.model_ref
            self.watermark.save(self.state_path)

            del self._pending[:n_rows]
            del self._pending_offsets[:n_rows]
            self.report.extend(report)

    def _window_counts(self, report: AuditReport) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in report.findings:
            counts[finding.attribute] = counts.get(finding.attribute, 0) + 1
        return counts

    def _respond_to_drift(self, events: list[DriftEvent]) -> None:
        policy = self.refit
        if policy.mode == "off":
            return
        if policy.mode == "recommend":
            for event in events:
                self.watermark.refits.append(
                    refit_event_record(
                        event, mode="recommend", stream_rows=self.watermark.rows
                    )
                )
                logger.warning(
                    "refit recommended for attribute %s (run: repro fit … "
                    "--registry … --register %s)",
                    event.attribute,
                    policy.model_name or "<name>",
                )
            return
        # auto: one refit per window, on the first event — the tracker
        # reset below clears the other attributes' excursions anyway
        event = events[0]
        buffer = Table(self.session.schema, list(self._buffer or ()))
        if not buffer.rows:
            logger.warning("drift on %s but no rows buffered; skipping refit",
                           event.attribute)
            return
        new_session, version = perform_refit(
            policy,
            self.session,
            buffer,
            event,
            source=str(self.location),
            source_format=self.source_format or getattr(self._tail, "format", None),
            stream_rows=self.watermark.rows,
        )
        self.session = new_session
        self.model_ref = f"{version.name}@v{version.version}"
        self.tracker.reset()
        self.watermark.refits.append(
            refit_event_record(
                event,
                mode="auto",
                stream_rows=self.watermark.rows,
                model_ref=self.model_ref,
                digest=version.digest,
                fit_rows=len(buffer.rows),
            )
        )
        logger.warning(
            "auto-refit registered %s (digest %.12s, %d rows) after drift on %s",
            self.model_ref,
            version.digest,
            len(buffer.rows),
            event.attribute,
        )

    # -- introspection -----------------------------------------------------

    def status(self) -> dict[str, Any]:
        """JSON-able snapshot for ``GET /monitors`` and the CLI."""
        with self._lock:
            return {
                "source": str(self.location),
                "format": self.source_format or getattr(self._tail, "format", "sqlite"),
                "model": self.model_ref,
                "rows": self.watermark.rows,
                "windows": self.watermark.windows,
                "window_rows": self.window_rows,
                "pending_rows": len(self._pending),
                "findings": self.watermark.findings_rows,
                "suspicious": self.report.n_suspicious,
                "source_offset": self.watermark.source_offset,
                "offset_kind": self._tail.offset_kind,
                "drift": self.tracker.stats(),
                "refit_mode": self.refit.mode,
                "refits": list(self.watermark.refits),
                "error": self.error,
            }

    def close(self) -> None:
        self._tail.close()
        try:
            self._findings.close()
        except AttributeError:  # construction failed before the file opened
            pass

    def __enter__(self) -> "TableWatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
