"""Audit findings: suspicious cells, record rankings, and corrections.

Sec. 5.2–5.3: each classifier contributes an error confidence per record;
the record's overall error confidence is the maximum (Def. 8); suspicious
records are ranked by it (the QUIS case study: "These records were ranked
according to their associated error confidence"); and the correction
proposal replaces the suspicious value "according to the prediction of the
classifier with the highest error confidence".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.schema.table import Table
from repro.schema.types import Value

__all__ = ["Finding", "Correction", "AuditReport"]


@dataclass(frozen=True)
class Finding:
    """One classifier's deviation verdict for one record."""

    row: int
    attribute: str
    observed_label: str
    observed_value: Value
    predicted_label: str
    confidence: float
    support: float
    proposal: Value

    def describe(self) -> str:
        return (
            f"row {self.row}: {self.attribute} = {self.observed_value!r} "
            f"deviates (expected {self.predicted_label}, "
            f"confidence {self.confidence:.2%}, n={self.support:g})"
        )


@dataclass(frozen=True)
class Correction:
    """The proposed replacement for one suspicious record (sec. 5.3)."""

    row: int
    attribute: str
    old_value: Value
    new_value: Value
    confidence: float


class AuditReport:
    """Outcome of one deviation-detection run.

    Contains *all* findings above the auditor's minimal error confidence,
    plus the Def. 8 record confidences for every row (zero for records no
    classifier objected to).
    """

    def __init__(
        self,
        n_rows: int,
        findings: Iterable[Finding],
        record_confidence: Sequence[float],
        min_error_confidence: float,
    ):
        self.n_rows = n_rows
        self.findings: list[Finding] = sorted(
            findings, key=lambda f: (-f.confidence, f.row, f.attribute)
        )
        self.record_confidence = list(record_confidence)
        if len(self.record_confidence) != n_rows:
            raise ValueError("record_confidence must cover every row")
        self.min_error_confidence = min_error_confidence
        self._by_row: dict[int, list[Finding]] = {}
        for finding in self.findings:
            self._by_row.setdefault(finding.row, []).append(finding)

    # -- queries -----------------------------------------------------------

    @property
    def n_suspicious(self) -> int:
        return len(self._by_row)

    def suspicious_rows(self) -> list[int]:
        """Rows flagged at the configured minimal error confidence, ranked
        by descending record confidence."""
        return sorted(
            self._by_row, key=lambda row: (-self.record_confidence[row], row)
        )

    def is_flagged(self, row: int) -> bool:
        return row in self._by_row

    def findings_for_row(self, row: int) -> list[Finding]:
        """All deviations of one record (useful in interactive correction:
        "the predicted distributions of all classifiers that indicate a
        data error can be useful in finding the true reason")."""
        return list(self._by_row.get(row, ()))

    def ranked_findings(self, limit: Optional[int] = None) -> list[Finding]:
        """Findings sorted by descending confidence."""
        return self.findings[: limit if limit is not None else len(self.findings)]

    # -- corrections (sec. 5.3) ------------------------------------------------

    def corrections(self) -> list[Correction]:
        """One proposal per suspicious record: the prediction of the
        classifier with the highest error confidence."""
        proposals = []
        for row, row_findings in sorted(self._by_row.items()):
            best = max(row_findings, key=lambda f: f.confidence)
            proposals.append(
                Correction(
                    row=row,
                    attribute=best.attribute,
                    old_value=best.observed_value,
                    new_value=best.proposal,
                    confidence=best.confidence,
                )
            )
        return proposals

    def apply_corrections(self, table: Table) -> Table:
        """A copy of *table* with all proposals applied.

        Findings that do not address a real column (record-level detectors
        such as LOF report a pseudo-attribute) are skipped — they carry no
        cell proposal.
        """
        corrected = table.copy()
        for correction in self.corrections():
            if correction.attribute not in table.schema:
                continue
            corrected.set_cell(correction.row, correction.attribute, correction.new_value)
        return corrected

    def __repr__(self) -> str:
        return (
            f"AuditReport(rows={self.n_rows}, findings={len(self.findings)}, "
            f"suspicious={self.n_suspicious}, "
            f"min_conf={self.min_error_confidence:.0%})"
        )
