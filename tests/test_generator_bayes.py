"""Tests for the Bayesian-network multivariate start distributions."""

import random
from collections import Counter

import pytest

from repro.generator import BayesianNetwork
from repro.schema import Schema, Table, nominal, numeric


@pytest.fixture
def schema():
    return Schema(
        [
            nominal("X", ["x0", "x1"]),
            nominal("Y", ["y0", "y1"]),
            nominal("Z", ["z0", "z1", "z2"]),
            numeric("N", 0, 10),
        ]
    )


class TestConstruction:
    def test_cycle_rejected(self, schema):
        with pytest.raises(ValueError, match="cycle"):
            BayesianNetwork(schema, {"X": ["Y"], "Y": ["X"]})

    def test_non_nominal_node_rejected(self, schema):
        with pytest.raises(ValueError, match="nominal"):
            BayesianNetwork(schema, {"N": []})

    def test_parent_must_be_node(self, schema):
        with pytest.raises(ValueError, match="not itself a node"):
            BayesianNetwork(schema, {"X": ["Y"]})

    def test_unknown_cpt_value_rejected(self, schema):
        with pytest.raises(ValueError, match="unknown value"):
            BayesianNetwork(schema, {"X": []}, {"X": {(): {"nope": 1.0}}})

    def test_negative_weight_rejected(self, schema):
        with pytest.raises(ValueError, match="negative"):
            BayesianNetwork(schema, {"X": []}, {"X": {(): {"x0": -1.0}}})

    def test_all_zero_row_rejected(self, schema):
        with pytest.raises(ValueError, match="no positive weight"):
            BayesianNetwork(schema, {"X": []}, {"X": {(): {"x0": 0.0}}})

    def test_nodes_in_topological_order(self, schema):
        net = BayesianNetwork(schema, {"Z": ["X", "Y"], "X": [], "Y": ["X"]})
        order = net.nodes
        assert order.index("X") < order.index("Y") < order.index("Z")


class TestSampling:
    def test_marginal_follows_cpt(self, schema):
        net = BayesianNetwork(schema, {"X": []}, {"X": {(): {"x0": 9.0, "x1": 1.0}}})
        rng = random.Random(1)
        counts = Counter(net.sample(rng)["X"] for _ in range(2000))
        assert counts["x0"] > counts["x1"] * 4

    def test_conditional_dependency(self, schema):
        net = BayesianNetwork(
            schema,
            {"X": [], "Y": ["X"]},
            {
                "X": {(): {"x0": 1.0, "x1": 1.0}},
                "Y": {
                    ("x0",): {"y0": 1.0, "y1": 0.0},
                    ("x1",): {"y0": 0.0, "y1": 1.0},
                },
            },
        )
        rng = random.Random(2)
        for _ in range(300):
            record = net.sample(rng)
            expected = "y0" if record["X"] == "x0" else "y1"
            assert record["Y"] == expected

    def test_missing_row_falls_back_to_uniform(self, schema):
        net = BayesianNetwork(schema, {"X": [], "Y": ["X"]})
        distribution = net.row_distribution("Y", ("x0",))
        assert distribution == {"y0": 0.5, "y1": 0.5}

    def test_sample_covers_all_nodes(self, schema):
        net = BayesianNetwork(schema, {"X": [], "Y": ["X"], "Z": ["Y"]})
        record = net.sample(random.Random(3))
        assert set(record) == {"X", "Y", "Z"}


class TestRandomNetwork:
    def test_respects_max_parents(self, schema):
        rng = random.Random(4)
        net = BayesianNetwork.random(schema, ["X", "Y", "Z"], rng, max_parents=1)
        assert all(len(net.parents(n)) <= 1 for n in net.nodes)

    def test_samples_are_valid(self, schema):
        rng = random.Random(5)
        net = BayesianNetwork.random(schema, ["X", "Y", "Z"], rng)
        for _ in range(100):
            record = net.sample(rng)
            assert record["X"] in ("x0", "x1")
            assert record["Z"] in ("z0", "z1", "z2")

    def test_deterministic_in_seed(self, schema):
        net1 = BayesianNetwork.random(schema, ["X", "Y", "Z"], random.Random(6))
        net2 = BayesianNetwork.random(schema, ["X", "Y", "Z"], random.Random(6))
        samples1 = [net1.sample(random.Random(7)) for _ in range(20)]
        samples2 = [net2.sample(random.Random(7)) for _ in range(20)]
        assert samples1 == samples2

    def test_invalid_concentration(self, schema):
        with pytest.raises(ValueError):
            BayesianNetwork.random(schema, ["X"], random.Random(0), concentration=0)


class TestFit:
    def test_recovers_strong_dependency(self, schema):
        rows = []
        rng = random.Random(8)
        for _ in range(500):
            x = "x0" if rng.random() < 0.5 else "x1"
            y = "y0" if x == "x0" else "y1"
            rows.append([x, y, "z0", 1.0])
        table = Table(schema, rows)
        net = BayesianNetwork.fit(schema, {"X": [], "Y": ["X"]}, table, smoothing=0.1)
        dist = net.row_distribution("Y", ("x0",))
        assert dist["y0"] > 0.95

    def test_null_rows_skipped(self, schema):
        table = Table(schema, [[None, "y0", "z0", 1.0], ["x0", "y1", "z0", 1.0]])
        net = BayesianNetwork.fit(schema, {"X": [], "Y": ["X"]}, table, smoothing=1.0)
        # only the non-null X row contributes to Y's CPT
        dist = net.row_distribution("Y", ("x0",))
        assert dist["y1"] > dist["y0"]

    def test_negative_smoothing_rejected(self, schema):
        with pytest.raises(ValueError):
            BayesianNetwork.fit(schema, {"X": []}, Table(schema), smoothing=-1)
