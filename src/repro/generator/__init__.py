"""Artificial test-data generation (paper sec. 4.1).

Start distributions (univariate + Bayesian-network multivariate), random
natural rule sets, and the rule-repairing record generator.
"""

from repro.generator.bayes import BayesianNetwork
from repro.generator.datagen import GenerationError, GenerationStats, TestDataGenerator
from repro.generator.distributions import (
    Categorical,
    Distribution,
    Exponential,
    Normal,
    NullMixture,
    Uniform,
)
from repro.generator.profiles import GeneratorProfile, base_profile, base_schema
from repro.generator.rulegen import (
    RuleGenerationConfig,
    RuleGenerator,
    generate_natural_rule_set,
)

__all__ = [
    "Distribution",
    "Uniform",
    "Normal",
    "Exponential",
    "Categorical",
    "NullMixture",
    "BayesianNetwork",
    "RuleGenerationConfig",
    "RuleGenerator",
    "generate_natural_rule_set",
    "TestDataGenerator",
    "GenerationError",
    "GenerationStats",
    "GeneratorProfile",
    "base_profile",
    "base_schema",
]
