"""Relational substrate: attribute kinds, domains, schemas, tables, CSV I/O."""

from repro.schema.attribute import Attribute, date, nominal, numeric
from repro.schema.domain import DateDomain, Domain, NominalDomain, NumericDomain
from repro.schema.io import (
    read_csv,
    read_csv_chunks,
    table_from_csv_text,
    table_to_csv_text,
    write_csv,
)
from repro.schema.schema import Schema
from repro.schema.table import Row, Table
from repro.schema.types import NULL, AttributeKind, Value, is_null

__all__ = [
    "AttributeKind",
    "Value",
    "NULL",
    "is_null",
    "Domain",
    "NominalDomain",
    "NumericDomain",
    "DateDomain",
    "Attribute",
    "nominal",
    "numeric",
    "date",
    "Schema",
    "Table",
    "Row",
    "write_csv",
    "read_csv",
    "read_csv_chunks",
    "table_to_csv_text",
    "table_from_csv_text",
]
