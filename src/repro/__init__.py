"""repro — reproduction of *Systematic Development of Data Mining-Based
Data Quality Tools* (Luebbers, Grimmer, Jarke; VLDB 2003).

The package mirrors the paper's architecture:

* :mod:`repro.schema` — relational substrate (domains, schemas, tables);
* :mod:`repro.io` — pluggable table storage: ``TableSource`` /
  ``TableSink`` protocols and a format registry with CSV, JSONL, SQLite
  and (optional) Parquet backends, so the auditor speaks the
  warehouse's own formats (sec. 2.2) instead of forcing CSV exports;
* :mod:`repro.logic` — the TDG formula/rule language with its pragmatic
  satisfiability test and naturalness restrictions (sec. 4.1);
* :mod:`repro.generator` — the rule-pattern-based artificial test data
  generator (sec. 4.1);
* :mod:`repro.pollution` — controlled, logged data corruption (sec. 4.2);
* :mod:`repro.mining` — the auditing-adjusted C4.5 decision tree and the
  alternative classifiers (sec. 5), all speaking the batch-first
  :class:`~repro.mining.base.AttributeClassifier` protocol (whole encoded
  column arrays in, a distribution matrix + support vector out);
* :mod:`repro.core` — the data auditing tool itself: multiple
  classification / regression, error confidence, rankings, corrections,
  persistence, the streaming :class:`~repro.core.session.AuditSession`
  facade for the offline-fit / online-check warehouse-loading split
  (secs. 2.2, 5), and the multi-core executor
  (:mod:`repro.core.parallel`) behind every ``n_jobs=`` parameter;
* :mod:`repro.registry` — the content-addressed, versioned on-disk
  model registry: named model versions (``loads@v3``) with provenance
  (schema hash, training source, config, fit time) behind the
  offline-fit / online-check hand-over;
* :mod:`repro.serve` — the long-running audit service daemon
  (``repro serve``): a stdlib HTTP API to fit, list, and audit against
  registry versions, streaming findings byte-identical to the CLI;
* :mod:`repro.testenv` — the fig.-2 benchmark pipeline, sec.-4.3 metrics,
  figure sweeps, and the fig.-1 calibration loop;
* :mod:`repro.quis` — the synthetic QUIS engine-composition case-study
  substrate (secs. 3.2, 6.2).

Quickstart::

    from repro import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(n_records=2000, n_rules=50))
    print(result.summary())

Warehouse-scale streaming audit (sec. 2.2)::

    from repro import AuditSession

    session = AuditSession(schema).fit(history)      # offline, slow
    session.save("model.json")

    session = AuditSession.load("model.json")        # online, fast
    for report in session.audit_source("sqlite:///wh.db?table=loads",
                                       chunk_size=10_000):
        quarantine(report.suspicious_rows())
"""

from repro.core import (
    AuditorConfig,
    AuditReport,
    AuditSession,
    Correction,
    DataAuditor,
    Finding,
    ModelPersistenceError,
    auditor_from_dict,
    auditor_to_dict,
    error_confidence,
    error_confidence_batch,
    expected_error_confidence,
    load_auditor,
    min_instances_for_confidence,
    record_error_confidence,
    resolve_n_jobs,
    save_auditor,
)
from repro.core.findings import findings_schema, findings_to_table
from repro.generator import (
    BayesianNetwork,
    GeneratorProfile,
    RuleGenerationConfig,
    TestDataGenerator,
    base_profile,
    base_schema,
    generate_natural_rule_set,
)
from repro.logic import Rule, find_model, implies, is_natural_rule_set, is_satisfiable
from repro.mining import (
    AttributeClassifier,
    BatchPrediction,
    ConfidenceBounds,
    IntervalMethod,
    KnnClassifier,
    NaiveBayesClassifier,
    OneRClassifier,
    Prediction,
    PrismClassifier,
    PruningStrategy,
    TreeClassifier,
    TreeConfig,
)
from repro.pollution import (
    Duplicator,
    Limiter,
    NullValuePolluter,
    PollutionLog,
    PollutionPipeline,
    Switcher,
    WrongValuePolluter,
    default_polluters,
)
from repro.io import (
    ColumnBatch,
    ColumnarSource,
    TableSink,
    TableSource,
    available_formats,
    detect_format,
    open_sink,
    open_source,
    read_table,
    read_table_chunks,
    register_format,
    resolve_io_path,
    write_table,
)
from repro.quis import generate_quis_sample, quis_schema
from repro.registry import (
    ModelRegistry,
    ModelVersion,
    Provenance,
    RegistryError,
    model_digest,
    schema_digest,
)
from repro.serve import AuditService, ServiceError, make_server, serve
from repro.schema import (
    Attribute,
    AttributeKind,
    DateDomain,
    NominalDomain,
    NumericDomain,
    Schema,
    Table,
    TextDomain,
    date,
    nominal,
    numeric,
    read_csv,
    read_csv_chunks,
    text,
    write_csv,
)
from repro.testenv import (
    ExperimentConfig,
    ExperimentResult,
    TestEnvironment,
    calibrate,
    default_candidates,
    evaluate_audit,
    format_series,
    run_experiment,
    sweep_pollution_factor,
    sweep_records,
    sweep_rules,
)

__version__ = "1.3.0"

__all__ = [
    "__version__",
    # schema
    "AttributeKind",
    "Attribute",
    "NominalDomain",
    "NumericDomain",
    "DateDomain",
    "TextDomain",
    "Schema",
    "Table",
    "nominal",
    "numeric",
    "date",
    "text",
    "read_csv",
    "read_csv_chunks",
    "write_csv",
    # storage backends (repro.io)
    "TableSource",
    "TableSink",
    "ColumnarSource",
    "ColumnBatch",
    "resolve_io_path",
    "register_format",
    "available_formats",
    "detect_format",
    "open_source",
    "open_sink",
    "read_table",
    "read_table_chunks",
    "write_table",
    # logic
    "Rule",
    "is_satisfiable",
    "find_model",
    "implies",
    "is_natural_rule_set",
    # generator
    "TestDataGenerator",
    "GeneratorProfile",
    "BayesianNetwork",
    "RuleGenerationConfig",
    "generate_natural_rule_set",
    "base_profile",
    "base_schema",
    # pollution
    "PollutionLog",
    "PollutionPipeline",
    "WrongValuePolluter",
    "NullValuePolluter",
    "Limiter",
    "Switcher",
    "Duplicator",
    "default_polluters",
    # mining
    "ConfidenceBounds",
    "IntervalMethod",
    "AttributeClassifier",
    "Prediction",
    "BatchPrediction",
    "TreeClassifier",
    "TreeConfig",
    "PruningStrategy",
    "NaiveBayesClassifier",
    "KnnClassifier",
    "OneRClassifier",
    "PrismClassifier",
    # core
    "DataAuditor",
    "AuditorConfig",
    "AuditSession",
    "ModelPersistenceError",
    "AuditReport",
    "resolve_n_jobs",
    "Finding",
    "Correction",
    "findings_schema",
    "findings_to_table",
    "error_confidence",
    "error_confidence_batch",
    "expected_error_confidence",
    "record_error_confidence",
    "min_instances_for_confidence",
    "auditor_to_dict",
    "auditor_from_dict",
    "save_auditor",
    "load_auditor",
    # test environment
    "ExperimentConfig",
    "ExperimentResult",
    "TestEnvironment",
    "run_experiment",
    "sweep_records",
    "sweep_rules",
    "sweep_pollution_factor",
    "format_series",
    "calibrate",
    "default_candidates",
    "evaluate_audit",
    # model registry (repro.registry)
    "ModelRegistry",
    "ModelVersion",
    "Provenance",
    "RegistryError",
    "model_digest",
    "schema_digest",
    # audit service (repro.serve)
    "AuditService",
    "ServiceError",
    "make_server",
    "serve",
    # QUIS case study
    "quis_schema",
    "generate_quis_sample",
]
