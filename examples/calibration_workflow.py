#!/usr/bin/env python3
"""The domain-driven development loop of figure 1.

The roles of the paper's workflow, played end to end:

1. the *domain expert* describes structural characteristics of the
   application database → test-generation parameters (a generator
   profile);
2. the *test environment* creates artificial data and pollutes it;
3. the *data-mining expert* benchmarks candidate auditing-tool
   configurations and adjusts them until the benchmark results are
   satisfactory;
4. the winning configuration is what the *quality engineer* would then
   run against the real database.

Run with:  python examples/calibration_workflow.py
"""

from repro import AuditorConfig, ConfidenceBounds, ExperimentConfig, calibrate
from repro.mining import (
    KnnClassifier,
    NaiveBayesClassifier,
    OneRClassifier,
    TreeClassifier,
    TreeConfig,
)
from repro.core import min_instances_for_confidence
from repro.testenv import Candidate, TestEnvironment


def tree_candidate(name: str, confidence: float, min_error_confidence: float) -> Candidate:
    """An adjusted-C4.5 candidate at a given interval confidence level."""
    return Candidate(
        name,
        AuditorConfig(
            min_error_confidence=min_error_confidence,
            bounds=ConfidenceBounds(confidence),
        ),
    )


def alternative_candidate(name: str, factory) -> Candidate:
    """A candidate using one of the sec.-5 alternative classifiers."""
    return Candidate(name, AuditorConfig(classifier_factory=lambda cfg: factory()))


def main() -> None:
    # step 1+2: the domain expert's profile, exercised by the test
    # environment (the base configuration of sec. 6.1, scaled down so the
    # example finishes in well under a minute)
    benchmark = ExperimentConfig(n_records=3000, n_rules=60, profile_seed=17)
    environment = TestEnvironment()

    # step 3, iteration 1: which classifier family suits the domain?
    print("=== iteration 1: algorithm selection ===")
    families = [
        tree_candidate("adjusted C4.5 (bounds 0.95)", 0.95, 0.8),
        alternative_candidate("naive Bayes", NaiveBayesClassifier),
        alternative_candidate("instance-based (kNN)", lambda: KnnClassifier(k=7)),
        alternative_candidate("1R rule inducer", OneRClassifier),
    ]
    outcomes = calibrate(families, base=benchmark, environment=environment)
    for outcome in outcomes:
        print(f"  {outcome.summary()}")
    winner_family = outcomes[0].candidate.name
    print(f"  → selected: {winner_family}\n")

    # step 3, iteration 2: tune the interval confidence of the winner
    print("=== iteration 2: adjusting the confidence-interval level ===")
    tuning = [
        tree_candidate(f"adjusted C4.5 (bounds {c:.2f})", c, 0.8)
        for c in (0.85, 0.90, 0.95, 0.99)
    ]
    outcomes = calibrate(tuning, base=benchmark, environment=environment,
                         specificity_floor=0.985)
    for outcome in outcomes:
        print(f"  {outcome.summary()}")
    best = outcomes[0]
    print(f"  → calibrated configuration: {best.candidate.name}")

    # step 4: the configuration handed to the quality engineer
    config = best.candidate.auditor
    min_inst = min_instances_for_confidence(config.min_error_confidence, config.bounds)
    print("\n=== resulting auditing-tool parameters ===")
    print(f"  minimal error confidence : {config.min_error_confidence:.0%}")
    print(f"  interval method/level    : {config.bounds.method.value} "
          f"@ {config.bounds.confidence:.2f}")
    print(f"  derived minInst bound    : {min_inst} instances per leaf class")
    print(f"  benchmark sensitivity    : {best.sensitivity:.3f}")
    print(f"  benchmark specificity    : {best.specificity:.4f}")


if __name__ == "__main__":
    main()
