"""Relational substrate: attribute kinds, domains, schemas, tables, CSV I/O.

(The CSV helpers re-exported here are back-compat wrappers; the full
pluggable storage layer — CSV, JSONL, SQLite, Parquet — lives in
:mod:`repro.io`.)
"""

from repro.schema.attribute import Attribute, date, nominal, numeric, text
from repro.schema.domain import DateDomain, Domain, NominalDomain, NumericDomain, TextDomain
from repro.schema.io import (
    read_csv,
    read_csv_chunks,
    table_from_csv_text,
    table_to_csv_text,
    write_csv,
)
from repro.schema.schema import Schema
from repro.schema.table import Row, Table
from repro.schema.types import NULL, AttributeKind, Value, is_null

__all__ = [
    "AttributeKind",
    "Value",
    "NULL",
    "is_null",
    "Domain",
    "NominalDomain",
    "NumericDomain",
    "DateDomain",
    "TextDomain",
    "Attribute",
    "nominal",
    "numeric",
    "date",
    "text",
    "Schema",
    "Table",
    "Row",
    "write_csv",
    "read_csv",
    "read_csv_chunks",
    "table_to_csv_text",
    "table_from_csv_text",
]
