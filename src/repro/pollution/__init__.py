"""Controlled data corruption (paper sec. 4.2): five polluter components
with activation probabilities, a common pollution factor, and ground-truth
logging for the evaluation metrics of sec. 4.3."""

from repro.pollution.log import CellChange, PollutionLog, RowEvent, RowEventKind
from repro.pollution.pipeline import PollutionPipeline, default_polluters
from repro.pollution.polluters import (
    Duplicator,
    Limiter,
    NullValuePolluter,
    Polluter,
    Switcher,
    WrongValuePolluter,
)

__all__ = [
    "CellChange",
    "RowEvent",
    "RowEventKind",
    "PollutionLog",
    "Polluter",
    "WrongValuePolluter",
    "NullValuePolluter",
    "Limiter",
    "Switcher",
    "Duplicator",
    "PollutionPipeline",
    "default_polluters",
]
