"""Tests of the batch-first classifier protocol: every built-in
classifier's vectorized ``predict_batch`` must reproduce the row-at-a-time
``predict_encoded`` path exactly (distributions *and* supports), and the
ABC must provide a working row-loop fallback for third-party classifiers
that only implement the single-record contract."""

import random
from typing import Mapping

import numpy as np
import pytest

from repro.mining import (
    AttributeClassifier,
    BatchPrediction,
    KnnClassifier,
    NaiveBayesClassifier,
    OneRClassifier,
    Prediction,
    PrismClassifier,
    TreeClassifier,
)
from repro.mining.base import ArrayRowView, batch_length
from repro.mining.dataset import Dataset
from repro.schema import Schema, Table, nominal, numeric

CLASSIFIER_FACTORIES = {
    "tree": TreeClassifier,
    "naive_bayes": NaiveBayesClassifier,
    "knn": KnnClassifier,
    "oner": OneRClassifier,
    "prism": PrismClassifier,
}


def _messy_table(n=600, seed=13):
    """A dependent-attribute table with nulls, out-of-domain values and
    kind violations sprinkled in — exercising every encoding edge the
    batch path must route identically to the row path (including C4.5
    fractional-instance blending on missing split values)."""
    rng = random.Random(seed)
    rule = {"a": "x", "b": "y", "c": "z"}
    rows = []
    for _ in range(n):
        a = rng.choice(["a", "b", "c"])
        b = rule[a] if rng.random() > 0.04 else rng.choice(["x", "y", "z"])
        number = rng.randint(0, 100)
        if rng.random() < 0.05:
            a = None
        if rng.random() < 0.05:
            b = None
        if rng.random() < 0.03:
            b = "OUT_OF_DOMAIN"
        if rng.random() < 0.05:
            number = None
        rows.append([a, b, number])
    schema = Schema(
        [
            nominal("A", ["a", "b", "c"]),
            nominal("B", ["x", "y", "z"]),
            numeric("N", 0, 100, integer=True),
        ]
    )
    return Table(schema, rows)


@pytest.fixture(scope="module")
def table():
    return _messy_table()


@pytest.fixture(scope="module")
def datasets(table):
    names = list(table.schema.names)
    return {
        class_attr: Dataset(table, class_attr, [n for n in names if n != class_attr])
        for class_attr in names
    }


@pytest.mark.parametrize("kind", CLASSIFIER_FACTORIES)
@pytest.mark.parametrize("class_attr", ["A", "B", "N"])
def test_batch_matches_row_path_exactly(datasets, kind, class_attr):
    dataset = datasets[class_attr]
    classifier = CLASSIFIER_FACTORIES[kind]()
    classifier.fit(dataset)
    batch = classifier.predict_batch(dataset.columns)
    view = ArrayRowView(dataset.columns)
    for row in range(dataset.n_rows):
        view.index = row
        prediction = classifier.predict_encoded(view)
        assert np.array_equal(batch.probabilities[row], prediction.probabilities), (
            f"{kind}/{class_attr}: distribution mismatch at row {row}"
        )
        assert batch.support[row] == prediction.n, (
            f"{kind}/{class_attr}: support mismatch at row {row}"
        )
    assert batch.labels == dataset.class_encoder.labels


@pytest.mark.parametrize("kind", CLASSIFIER_FACTORIES)
def test_batch_on_fresh_columns(datasets, table, kind):
    """predict_batch on columns re-encoded from a *different* table (the
    audit scenario) matches the fallback row loop on the same columns."""
    dataset = datasets["B"]
    classifier = CLASSIFIER_FACTORIES[kind]()
    classifier.fit(dataset)
    fresh = _messy_table(n=150, seed=99)
    columns = {
        name: dataset.encoders[name].encode_column(fresh.column(name))
        for name in dataset.base_attrs
    }
    batch = classifier.predict_batch(columns)
    fallback = AttributeClassifier.predict_batch(classifier, columns)
    assert np.array_equal(batch.probabilities, fallback.probabilities)
    assert np.array_equal(batch.support, fallback.support)


class _MedianOnly(AttributeClassifier):
    """A deliberately minimal third-party classifier: implements only the
    single-record contract and inherits the batch fallback."""

    def fit(self, dataset: Dataset) -> None:
        self.dataset = dataset
        counts = np.bincount(dataset.y, minlength=dataset.n_labels).astype(float)
        self._counts = counts

    def predict_encoded(self, encoded: Mapping[str, float]) -> Prediction:
        dataset = self._require_fitted()
        n = float(self._counts.sum())
        return Prediction(self._counts / n, n, dataset.class_encoder.labels)


def test_abc_fallback_loops_predict_encoded(datasets):
    dataset = datasets["B"]
    classifier = _MedianOnly()
    classifier.fit(dataset)
    batch = classifier.predict_batch(dataset.columns)
    assert isinstance(batch, BatchPrediction)
    assert batch.n_rows == dataset.n_rows
    expected = classifier.predict_encoded(
        ArrayRowView(dataset.columns, index=0)
    )
    assert np.array_equal(batch.probabilities[5], expected.probabilities)
    assert batch.support[3] == expected.n


def test_batch_prediction_views(datasets):
    dataset = datasets["B"]
    classifier = TreeClassifier()
    classifier.fit(dataset)
    batch = classifier.predict_batch(dataset.columns)
    single = batch.prediction_at(7)
    assert single.predicted_code == int(batch.predicted_codes[7])
    assert single.labels == batch.labels


def test_empty_batch(datasets):
    dataset = datasets["B"]
    classifier = TreeClassifier()
    classifier.fit(dataset)
    empty = {name: dataset.columns[name][:0] for name in dataset.base_attrs}
    batch = classifier.predict_batch(empty)
    assert batch.n_rows == 0
    assert batch.probabilities.shape == (0, dataset.n_labels)


def test_batch_length_requires_columns_or_n_rows():
    with pytest.raises(ValueError):
        batch_length({}, None)
    assert batch_length({}, 4) == 4
    assert batch_length({"x": np.zeros(3)}, None) == 3


def test_unfitted_predict_batch_raises():
    with pytest.raises(RuntimeError):
        TreeClassifier().predict_batch({"x": np.zeros(2)})
