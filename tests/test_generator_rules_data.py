"""Tests for random rule-set generation and rule-compliant data generation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generator import (
    GenerationError,
    RuleGenerationConfig,
    RuleGenerator,
    TestDataGenerator,
    base_profile,
    base_schema,
    generate_natural_rule_set,
)
from repro.logic import And, Eq, Ne, Rule, is_natural_rule, is_natural_rule_set
from repro.schema import Schema, nominal, numeric


class TestRuleGenerationConfig:
    def test_defaults_valid(self):
        RuleGenerationConfig()

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            RuleGenerationConfig(max_premise_atoms=0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            RuleGenerationConfig(disjunction_probability=1.5)

    def test_invalid_attempts(self):
        with pytest.raises(ValueError):
            RuleGenerationConfig(max_attempts_per_rule=0)


class TestRuleGenerator:
    def test_generated_set_is_natural(self):
        schema = base_schema()
        rng = random.Random(10)
        rules = generate_natural_rule_set(schema, 20, rng)
        assert len(rules) == 20
        assert is_natural_rule_set(rules, schema)

    def test_each_rule_is_natural(self):
        schema = base_schema()
        rng = random.Random(11)
        for rule in generate_natural_rule_set(schema, 10, rng):
            assert is_natural_rule(rule, schema)

    def test_premise_and_consequence_attribute_disjoint(self):
        schema = base_schema()
        rng = random.Random(12)
        for rule in generate_natural_rule_set(schema, 15, rng):
            assert not (rule.premise.attributes() & rule.consequence.attributes())

    def test_deterministic_in_seed(self):
        schema = base_schema()
        r1 = generate_natural_rule_set(schema, 10, random.Random(13))
        r2 = generate_natural_rule_set(schema, 10, random.Random(13))
        assert r1 == r2

    def test_small_schema_saturates_gracefully(self):
        schema = Schema([nominal("A", ["a", "b"]), nominal("B", ["x", "y"])])
        rng = random.Random(14)
        rules = generate_natural_rule_set(schema, 500, rng)
        # the space of natural rule sets over 2 binary attributes is tiny
        assert 0 < len(rules) < 500
        assert is_natural_rule_set(rules, schema)

    def test_single_attribute_schema_rejected(self):
        with pytest.raises(ValueError):
            RuleGenerator(Schema([nominal("A", ["a", "b"])]))

    def test_rule_complexity_bounded(self):
        schema = base_schema()
        config = RuleGenerationConfig(max_premise_atoms=3, max_consequence_atoms=2)
        rng = random.Random(15)
        generator = RuleGenerator(schema, config)
        for rule in generator.generate(10, rng):
            from repro.logic import iter_atoms

            assert len(list(iter_atoms(rule.premise))) <= 3
            assert len(list(iter_atoms(rule.consequence))) <= 2


class TestTestDataGenerator:
    @pytest.fixture
    def simple_setup(self):
        schema = Schema(
            [
                nominal("A", ["a", "b", "c"]),
                nominal("B", ["x", "y"]),
                numeric("N", 0, 100, integer=True),
            ]
        )
        rules = [
            Rule(Eq("A", "a"), Eq("B", "x")),
            Rule(Eq("A", "b"), Eq("B", "y")),
        ]
        return schema, rules

    def test_generated_data_complies(self, simple_setup):
        schema, rules = simple_setup
        generator = TestDataGenerator(schema, rules)
        table = generator.generate(300, random.Random(16))
        assert table.n_rows == 300
        for record in table.records():
            for rule in rules:
                assert rule.satisfied_by(record), f"{rule} violated by {dict(record)}"

    def test_base_profile_data_complies(self):
        profile = base_profile(n_rules=40, seed=17)
        generator = profile.build_generator()
        table = generator.generate(400, random.Random(18))
        for record in table.records():
            for rule in profile.rules:
                assert rule.satisfied_by(record)

    def test_rules_actually_fire(self, simple_setup):
        # compliance must come from repair, not from premises never firing
        schema, rules = simple_setup
        generator = TestDataGenerator(schema, rules)
        table = generator.generate(300, random.Random(19))
        applicable = sum(
            1 for record in table.records() for rule in rules if rule.applicable(record)
        )
        assert applicable > 50

    def test_values_stay_in_domains(self, simple_setup):
        schema, rules = simple_setup
        generator = TestDataGenerator(schema, rules)
        table = generator.generate(100, random.Random(20))
        table.validate()

    def test_null_probabilities_respected(self, simple_setup):
        schema, rules = simple_setup
        generator = TestDataGenerator(
            schema, [], null_probabilities={"N": 0.5}
        )
        table = generator.generate(400, random.Random(21))
        nulls = sum(1 for v in table.column("N") if v is None)
        assert 120 <= nulls <= 280

    def test_invalid_null_probability_rejected(self, simple_setup):
        schema, _ = simple_setup
        with pytest.raises(ValueError):
            TestDataGenerator(schema, [], null_probabilities={"N": 2.0})

    def test_unknown_rule_attribute_rejected(self, simple_setup):
        schema, _ = simple_setup
        with pytest.raises(KeyError):
            TestDataGenerator(schema, [Rule(Eq("ZZ", "a"), Eq("B", "x"))])

    def test_contradictory_rules_raise_generation_error(self, simple_setup):
        schema, _ = simple_setup
        # premises cover everything, consequences clash, premise cannot be
        # falsified (A is constrained to one value by the other rule pair)
        rules = [
            Rule(Ne("B", "x"), Eq("N", 1)),
            Rule(Ne("B", "y"), Eq("N", 2)),
            Rule(Eq("N", 1), Eq("A", "a")),
            Rule(Eq("N", 2), Eq("A", "a")),
            Rule(Eq("A", "a"), Ne("N", 1)),
        ]
        generator = TestDataGenerator(
            schema,
            rules,
            null_probabilities={},
            max_repair_passes=4,
            max_record_attempts=2,
        )
        with pytest.raises(GenerationError):
            # B is never null → one premise always fires; N=1 forces A=a
            # which forbids N=1 — unsatisfiable whenever B≠'y'
            generator.generate(50, random.Random(22))

    def test_stats_tracked(self, simple_setup):
        schema, rules = simple_setup
        generator = TestDataGenerator(schema, rules)
        generator.generate(50, random.Random(23))
        assert generator.stats.records == 50
        assert generator.stats.repairs >= 0

    def test_zero_records(self, simple_setup):
        schema, rules = simple_setup
        generator = TestDataGenerator(schema, rules)
        assert generator.generate(0, random.Random(24)).n_rows == 0
        with pytest.raises(ValueError):
            generator.generate(-1, random.Random(24))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_seeds_always_comply(self, seed):
        profile = base_profile(n_rules=15, seed=25)
        generator = profile.build_generator()
        table = generator.generate(30, random.Random(seed))
        for record in table.records():
            assert all(rule.satisfied_by(record) for rule in profile.rules)
