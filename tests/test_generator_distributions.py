"""Tests for the parameterizable start distributions."""

import datetime
import random
from collections import Counter

import pytest

from repro.generator import Categorical, Exponential, Normal, NullMixture, Uniform
from repro.schema import date, nominal, numeric


@pytest.fixture
def nominal_attr():
    return nominal("C", [f"v{i}" for i in range(10)])


@pytest.fixture
def numeric_attr():
    return numeric("N", 0, 100, integer=True)


@pytest.fixture
def float_attr():
    return numeric("F", 0.0, 1.0)


@pytest.fixture
def date_attr():
    return date("D", datetime.date(2000, 1, 1), datetime.date(2000, 12, 31))


def _samples(distribution, attribute, n=2000, seed=5):
    rng = random.Random(seed)
    return [distribution.sample(attribute, rng) for _ in range(n)]


class TestUniform:
    def test_nominal_covers_domain(self, nominal_attr):
        values = set(_samples(Uniform(), nominal_attr, n=500))
        assert values == set(nominal_attr.domain.values)

    def test_numeric_in_bounds(self, numeric_attr):
        assert all(0 <= v <= 100 for v in _samples(Uniform(), numeric_attr, n=200))

    def test_date_in_bounds(self, date_attr):
        assert all(
            date_attr.domain.contains(v) for v in _samples(Uniform(), date_attr, n=200)
        )


class TestNormal:
    def test_mass_concentrates_at_mean(self, numeric_attr):
        samples = _samples(Normal(mean_fraction=0.5, stddev_fraction=0.1), numeric_attr)
        mean = sum(samples) / len(samples)
        assert 40 <= mean <= 60
        assert all(0 <= v <= 100 for v in samples)

    def test_shifted_mean(self, numeric_attr):
        samples = _samples(Normal(mean_fraction=0.2, stddev_fraction=0.1), numeric_attr)
        mean = sum(samples) / len(samples)
        assert 10 <= mean <= 30

    def test_nominal_uses_index_view(self, nominal_attr):
        samples = _samples(Normal(mean_fraction=0.0, stddev_fraction=0.15), nominal_attr)
        counts = Counter(samples)
        # mass near index 0
        assert counts["v0"] > counts.get("v9", 0)

    def test_invalid_stddev_rejected(self):
        with pytest.raises(ValueError):
            Normal(stddev_fraction=0.0)

    def test_date_values_admissible(self, date_attr):
        samples = _samples(Normal(), date_attr, n=300)
        assert all(date_attr.domain.contains(v) for v in samples)


class TestExponential:
    def test_descending_mass_at_low_end(self, numeric_attr):
        samples = _samples(Exponential(scale_fraction=0.2), numeric_attr)
        below = sum(1 for v in samples if v < 50)
        assert below > len(samples) * 0.75

    def test_ascending_mass_at_high_end(self, numeric_attr):
        samples = _samples(
            Exponential(scale_fraction=0.2, descending=False), numeric_attr
        )
        above = sum(1 for v in samples if v > 50)
        assert above > len(samples) * 0.75

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            Exponential(scale_fraction=0)

    def test_nominal_skews_to_first_values(self, nominal_attr):
        samples = _samples(Exponential(scale_fraction=0.15), nominal_attr)
        counts = Counter(samples)
        assert counts["v0"] > counts.get("v9", 0)


class TestCategorical:
    def test_respects_weights(self, nominal_attr):
        dist = Categorical({"v0": 8.0, "v1": 2.0})
        counts = Counter(_samples(dist, nominal_attr))
        assert set(counts) <= {"v0", "v1"}
        assert counts["v0"] > counts["v1"]

    def test_zero_weight_never_drawn(self, nominal_attr):
        dist = Categorical({"v0": 1.0, "v1": 0.0})
        assert set(_samples(dist, nominal_attr, n=200)) == {"v0"}

    def test_needs_nominal_attribute(self, numeric_attr):
        with pytest.raises(TypeError):
            Categorical({"v0": 1.0}).sample(numeric_attr, random.Random(0))

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            Categorical({})
        with pytest.raises(ValueError):
            Categorical({"v0": -1.0})
        with pytest.raises(ValueError):
            Categorical({"v0": 0.0})

    def test_unknown_values_ignored_if_positive_exists(self, nominal_attr):
        dist = Categorical({"v0": 1.0, "nonexistent": 5.0})
        assert set(_samples(dist, nominal_attr, n=100)) == {"v0"}


class TestNullMixture:
    def test_null_rate_approximate(self, nominal_attr):
        dist = NullMixture(Uniform(), 0.3)
        samples = _samples(dist, nominal_attr, n=3000)
        null_rate = sum(1 for v in samples if v is None) / len(samples)
        assert 0.25 <= null_rate <= 0.35

    def test_non_nullable_attribute_never_null(self):
        attr = nominal("C", ["a", "b"], nullable=False)
        dist = NullMixture(Uniform(), 0.9)
        assert all(v is not None for v in _samples(dist, attr, n=200))

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            NullMixture(Uniform(), 1.5)
