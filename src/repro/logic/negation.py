"""TDG-negation (paper Table 1).

The TDG grammar has no negation connective. Instead, every TDG-formula
``α`` has an associated TDG-formula ``α̃`` such that ``α`` is true iff
``α̃`` is false — with explicit null handling:

====================  =========================================
``α``                 ``α̃``
====================  =========================================
``A = a``             ``A ≠ a ∨ A isnull``
``A ≠ a``             ``A = a ∨ A isnull``
``A < a``             ``A > a ∨ A = a ∨ A isnull``
``A > a``             ``A < a ∨ A = a ∨ A isnull``
``A isnull``          ``A isnotnull``
``A isnotnull``       ``A isnull``
``A = B``             ``A ≠ B ∨ A isnull ∨ B isnull``
``A ≠ B``             ``A = B ∨ A isnull ∨ B isnull``
``A < B``             ``A > B ∨ A = B ∨ A isnull ∨ B isnull``
``A > B``             ``A < B ∨ A = B ∨ A isnull ∨ B isnull``
``α₁ ∧ … ∧ αₙ``       ``α̃₁ ∨ … ∨ α̃ₙ``
``α₁ ∨ … ∨ αₙ``       ``α̃₁ ∧ … ∧ α̃ₙ``
====================  =========================================

This reduces validity of ``α → β`` to unsatisfiability of ``α ∧ β̃``
(sec. 4.1.3), which the pragmatic satisfiability test decides.
"""

from __future__ import annotations

from repro.logic.atoms import (
    Eq,
    EqAttr,
    Gt,
    GtAttr,
    IsNotNull,
    IsNull,
    Lt,
    LtAttr,
    Ne,
    NeAttr,
)
from repro.logic.base import Formula
from repro.logic.formulas import And, Or, conjoin, disjoin

__all__ = ["negate"]


def negate(formula: Formula) -> Formula:
    """Return the TDG-negation ``α̃`` of *formula* per Table 1."""
    if isinstance(formula, Eq):
        return Or(Ne(formula.attribute, formula.value), IsNull(formula.attribute))
    if isinstance(formula, Ne):
        return Or(Eq(formula.attribute, formula.value), IsNull(formula.attribute))
    if isinstance(formula, Lt):
        return Or(
            Gt(formula.attribute, formula.value),
            Eq(formula.attribute, formula.value),
            IsNull(formula.attribute),
        )
    if isinstance(formula, Gt):
        return Or(
            Lt(formula.attribute, formula.value),
            Eq(formula.attribute, formula.value),
            IsNull(formula.attribute),
        )
    if isinstance(formula, IsNull):
        return IsNotNull(formula.attribute)
    if isinstance(formula, IsNotNull):
        return IsNull(formula.attribute)
    if isinstance(formula, EqAttr):
        return Or(
            NeAttr(formula.left, formula.right),
            IsNull(formula.left),
            IsNull(formula.right),
        )
    if isinstance(formula, NeAttr):
        return Or(
            EqAttr(formula.left, formula.right),
            IsNull(formula.left),
            IsNull(formula.right),
        )
    if isinstance(formula, LtAttr):
        return Or(
            GtAttr(formula.left, formula.right),
            EqAttr(formula.left, formula.right),
            IsNull(formula.left),
            IsNull(formula.right),
        )
    if isinstance(formula, GtAttr):
        return Or(
            LtAttr(formula.left, formula.right),
            EqAttr(formula.left, formula.right),
            IsNull(formula.left),
            IsNull(formula.right),
        )
    if isinstance(formula, And):
        return disjoin([negate(part) for part in formula.parts])
    if isinstance(formula, Or):
        return conjoin([negate(part) for part in formula.parts])
    raise TypeError(f"cannot TDG-negate {type(formula).__name__}")
