"""Ready-made generator profiles, including the paper's base configuration.

Sec. 6.1: *"We start with a basic parameter configuration that prescribes
6 nominal attributes with different domain sizes, 1 date type and
1 numeric attribute. Furthermore, we specify one multivariate nominal and
5 univariate start distributions of different kinds. We use the test data
generator to create 10000 records based on 100 randomly generated rules."*

:func:`base_profile` builds exactly that shape; the evaluation benches
(figures 3–5) parameterize it by record count, rule count, and pollution
factor.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.generator.bayes import BayesianNetwork
from repro.generator.datagen import TestDataGenerator
from repro.generator.distributions import Distribution, Exponential, Normal, Uniform
from repro.generator.rulegen import RuleGenerationConfig, generate_natural_rule_set
from repro.logic.rules import Rule
from repro.schema.attribute import date, nominal, numeric
from repro.schema.schema import Schema

__all__ = ["GeneratorProfile", "base_schema", "base_profile"]

#: Domain sizes of the six nominal attributes ("different domain sizes").
_NOMINAL_SIZES = (3, 5, 8, 12, 20, 40)


@dataclass
class GeneratorProfile:
    """A bundled generator setup: schema + rules + start distributions."""

    schema: Schema
    rules: list[Rule]
    distributions: Mapping[str, Distribution] = field(default_factory=dict)
    bayes_net: Optional[BayesianNetwork] = None
    null_probabilities: Mapping[str, float] = field(default_factory=dict)

    def build_generator(self, **overrides) -> TestDataGenerator:
        """Instantiate the :class:`TestDataGenerator` for this profile."""
        return TestDataGenerator(
            self.schema,
            self.rules,
            distributions=self.distributions,
            bayes_net=self.bayes_net,
            null_probabilities=self.null_probabilities,
            **overrides,
        )


def base_schema() -> Schema:
    """The base configuration's target schema: C1–C6 nominal (domain sizes
    3, 5, 8, 12, 20, 40), one integer quantity, one production date."""
    attributes = []
    for index, size in enumerate(_NOMINAL_SIZES, start=1):
        if index == 3:
            # C3 shares a code space with C2 (offset by 2), the way QUIS
            # code columns overlap — keeps relational atoms (C2 = C3, …)
            # non-degenerate
            values = [f"v2_{k}" for k in range(2, 2 + size)]
        else:
            values = [f"v{index}_{k}" for k in range(size)]
        attributes.append(nominal(f"C{index}", values))
    attributes.append(numeric("QTY", 0, 1000, integer=True))
    attributes.append(
        date("PROD_DATE", datetime.date(1998, 1, 1), datetime.date(2002, 12, 31))
    )
    return Schema(attributes)


def base_profile(
    n_rules: int = 100,
    seed: int = 42,
    *,
    rule_config: Optional[RuleGenerationConfig] = None,
    null_probability: float = 0.01,
) -> GeneratorProfile:
    """The paper's base parameter configuration (sec. 6.1).

    * one multivariate start distribution: a random Bayesian network over
      the first three nominal attributes;
    * five univariate start distributions of different kinds: normal (C4),
      exponential (C5), uniform (C6), normal (QTY), exponential
      (PROD_DATE);
    * *n_rules* randomly generated natural rules (default 100).

    The profile is deterministic in *seed*; figure benches vary record
    count / rule count / pollution factor against a fixed profile seed.
    """
    schema = base_schema()
    rng = random.Random(seed)
    bayes_net = BayesianNetwork.random(
        schema, ["C1", "C2", "C3"], rng, max_parents=2, concentration=0.5
    )
    distributions: dict[str, Distribution] = {
        "C4": Normal(),
        "C5": Exponential(scale_fraction=0.3),
        "C6": Uniform(),
        "QTY": Normal(mean_fraction=0.4, stddev_fraction=0.2),
        "PROD_DATE": Exponential(scale_fraction=0.5, descending=False),
    }
    rules = generate_natural_rule_set(schema, n_rules, rng, rule_config)
    null_probabilities = {
        name: null_probability for name in ("C4", "C5", "C6") if null_probability > 0
    }
    return GeneratorProfile(
        schema=schema,
        rules=rules,
        distributions=distributions,
        bayes_net=bayes_net,
        null_probabilities=null_probabilities,
    )
