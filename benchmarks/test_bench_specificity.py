"""E4 / sec. 6.1 claim — specificity ≈ 99 % in all parameter settings.

Paper: *"For the following we fix a minimal error confidence of 80%. This
leads to high values for specificity of about 99% in all parameter
settings described."* The bench spans records / rules / pollution-factor
settings and reports specificity (and the paper's "synonym", precision —
see DESIGN.md on the terminology mismatch) for each.
"""

import dataclasses

from repro.testenv import ExperimentConfig

SETTINGS = [
    ("records=2000", dict(n_records=2000, n_rules=100, pollution_factor=1.0)),
    ("records=8000", dict(n_records=8000, n_rules=100, pollution_factor=1.0)),
    ("rules=25", dict(n_records=4000, n_rules=25, pollution_factor=1.0)),
    ("rules=200", dict(n_records=4000, n_rules=200, pollution_factor=1.0)),
    ("factor=0.5", dict(n_records=4000, n_rules=100, pollution_factor=0.5)),
    ("factor=2.0", dict(n_records=4000, n_rules=100, pollution_factor=2.0)),
]


def test_specificity_across_settings(benchmark, environment, record_table):
    def run_all():
        results = []
        for name, overrides in SETTINGS:
            config = dataclasses.replace(ExperimentConfig(), **overrides)
            results.append((name, environment.run(config)))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "E4 — specificity at min error confidence 80% across settings",
        f"{'setting':>14}  specificity  precision  sensitivity",
    ]
    for name, result in results:
        evaluation = result.evaluation
        lines.append(
            f"{name:>14}  {evaluation.specificity:>11.4f}  "
            f"{evaluation.records.precision:>9.3f}  {evaluation.sensitivity:>11.3f}"
        )
    record_table("E4_specificity", "\n".join(lines))

    # the paper's headline: uniformly high specificity
    assert all(result.specificity > 0.97 for _, result in results)
    assert sum(result.specificity for _, result in results) / len(results) > 0.98
