"""E6 / sec. 6.2 — the QUIS engine-composition case study.

Paper (at 200 000 records on an Athlon 900 MHz): the detection run took
about 21 minutes and revealed ≈6000 suspicious records (3 %); the
``BRV = 404 → GBM = 901`` deviation (one record with GBM = 911 among
16118 supporting instances) was ranked first at 99.95 % confidence, and a
``KBM = 01 ∧ GBM = 901 → BRV = 501`` deviation scored ≈92 %.

The bench runs the simulator at 60 000 records (scale factor noted in the
output; absolute supports scale linearly) and checks the same qualitative
outcomes: the canonical record is flagged near the top with a
high-nineties confidence, the suspicious-record share is in the
low-percent range, and the run completes at interactive speed.
"""

from repro.core import AuditorConfig, AuditReport, AuditSession
from repro.quis import generate_quis_sample

N_RECORDS = 60_000
PAPER_SCALE = 200_000
#: online chunk size of the streamed detection run (sec. 2.2's
#: warehouse-loading scenario: fit offline, check arriving loads in chunks)
CHUNK_SIZE = 20_000


def test_quis_sample_audit(benchmark, record_table):
    sample = generate_quis_sample(N_RECORDS, seed=2003)
    session = AuditSession(sample.schema, AuditorConfig(min_error_confidence=0.8))

    def detection_run():
        session.fit(sample.dirty)
        chunks = (
            sample.dirty.select(range(start, min(start + CHUNK_SIZE, N_RECORDS)))
            for start in range(0, N_RECORDS, CHUNK_SIZE)
        )
        return AuditReport.merge(session.audit_chunks(chunks))

    report = benchmark.pedantic(detection_run, rounds=1, iterations=1)

    canonical = sample.canonical_row
    flagged = report.is_flagged(canonical)
    rank = report.suspicious_rows().index(canonical) + 1 if flagged else -1
    gbm_finding = next(
        finding
        for finding in report.findings_for_row(canonical)
        if finding.attribute == "GBM"
    )
    suspicious_share = report.n_suspicious / sample.dirty.n_rows

    truth = sample.log.corrupted_rows()
    marked = set(report.suspicious_rows())
    tp = len(truth & marked)
    fp = len(marked - truth)
    specificity = 1 - fp / (sample.dirty.n_rows - len(truth))

    brv404 = sum(1 for value in sample.dirty.column("BRV") if value == "404")
    lines = [
        "E6 — QUIS engine-composition audit (sec. 6.2)",
        f"scale: {N_RECORDS} records (paper: {PAPER_SCALE}; supports scale ×{N_RECORDS / PAPER_SCALE:.2f})",
        f"suspicious records: {report.n_suspicious} ({suspicious_share:.2%}; paper: ≈6000 of 200000 = 3%)",
        f"BRV=404 support: {brv404} rows (paper: 16118)",
        "canonical deviation BRV=404 ∧ GBM=911:",
        f"  flagged={flagged} rank={rank} confidence={gbm_finding.confidence:.4f} "
        f"(paper: rank 1, 99.95%)",
        f"  prediction: GBM={gbm_finding.predicted_label} on n={gbm_finding.support:,.0f} instances",
        f"record-level: sensitivity={tp / len(truth):.3f} specificity={specificity:.4f}",
    ]
    record_table("E6_quis_audit", "\n".join(lines))

    assert flagged
    # the paper's record was rank 1 at n=16118; at 0.3× scale its interval
    # bounds are looser, so it lands among — not necessarily atop — the
    # other high-confidence deviations
    assert rank <= report.n_suspicious * 0.25
    assert gbm_finding.confidence > 0.95
    assert gbm_finding.predicted_label == "901"
    assert 0.002 < suspicious_share < 0.08
    assert specificity > 0.98
