#!/usr/bin/env python3
"""Asynchronous auditing during warehouse loading (paper sec. 2.2).

*"While the time-consuming structure induction can be prepared off-line,
new data can be checked for deviations and loaded quickly."*

This script plays both roles, through the streaming
:class:`~repro.core.session.AuditSession` API:

* the **offline** job induces the structure model from the historical
  warehouse content and persists it as JSON;
* the **online** load job resumes the session from the model (no training
  data needed) and screens the incoming load *as it arrives*, chunk by
  chunk — each chunk's report is available immediately for the
  load/quarantine decision, and the merged report equals the audit of the
  whole load.

The load is checked **where it lives**: the arriving batch lands in a
SQLite staging table and the online job audits that table directly
through the pluggable storage layer
(:meth:`AuditSession.audit_source <repro.core.session.AuditSession.audit_source>`
over ``sqlite:///…?table=…``) — no CSV export step. The online check
takes an ``n_jobs=`` knob (the multi-core executor of
:mod:`repro.core.parallel`): on a multi-core load box, chunks are
audited concurrently with bit-identical results. This script uses all
available cores when there are several and stays serial on one.

Run with:  python examples/warehouse_loading.py
"""

import os
import random
import tempfile
import time
from pathlib import Path

from repro import AuditorConfig, AuditReport, AuditSession, write_table
from repro.quis import generate_clean_quis, generate_quis_sample


def offline_structure_induction(model_path: Path) -> None:
    """Nightly job: induce and persist the structure model."""
    print("=== offline: structure induction on warehouse history ===")
    sample = generate_quis_sample(30_000, seed=11, error_rate=0.002)
    session = AuditSession(sample.schema, AuditorConfig(min_error_confidence=0.9))
    started = time.perf_counter()
    session.fit(sample.dirty)
    print(f"  induction over {sample.dirty.n_rows} records: "
          f"{time.perf_counter() - started:.1f}s")
    session.save(model_path)
    print(f"  structure model persisted to {model_path} "
          f"({model_path.stat().st_size / 1024:.0f} KiB)")


def online_load_check(model_path: Path, warehouse_path: Path) -> None:
    """Load-time job: screen an arriving load against the persisted model."""
    print("\n=== online: streaming deviation check of an incoming load ===")
    session = AuditSession.load(model_path)

    # an incoming load: mostly fine, a few corrupted records
    rng = random.Random(99)
    batch = generate_clean_quis(2_000, rng)
    corrupted_rows = [17, 303, 1500]
    batch.set_cell(17, "GBM", "936")     # engine code inconsistent with series
    batch.set_cell(303, "HUBRAUM", 15900)  # displacement out of band
    batch.set_cell(1500, "WERK", None)   # lost plant code

    # the load lands in the warehouse's staging table and is screened
    # right there — the auditor reads the database, not an export
    staging = f"sqlite:///{warehouse_path}?table=incoming_load"
    write_table(batch, staging)
    print(f"  load staged in {staging}")

    n_jobs = os.cpu_count() or 1  # parallel chunk screening where possible
    started = time.perf_counter()
    reports = []
    for report in session.audit_source(staging, chunk_size=500, n_jobs=n_jobs):
        reports.append(report)
        print(f"  chunk {len(reports)}: {report.n_rows} records screened, "
              f"{report.n_suspicious} quarantined")
    elapsed = time.perf_counter() - started
    report = AuditReport.merge(reports)
    print(f"  checked {batch.n_rows} records in {elapsed * 1000:.0f} ms "
          f"({n_jobs} worker(s); no re-training, memory bounded by the "
          f"chunk size times the in-flight window)")

    quarantine = set(report.suspicious_rows())
    print(f"  loading {batch.n_rows - len(quarantine)} records, "
          f"quarantining {len(quarantine)}")
    for row in sorted(quarantine):
        marker = "seeded" if row in corrupted_rows else "other"
        best = report.findings_for_row(row)[0]
        print(f"    row {row:>5} [{marker:>6}] {best.attribute}: "
              f"observed {best.observed_value!r}, expected {best.predicted_label} "
              f"({best.confidence:.1%})")

    found = sum(1 for row in corrupted_rows if row in quarantine)
    print(f"  seeded errors caught: {found}/{len(corrupted_rows)}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        model_path = Path(tmp) / "quis_structure_model.json"
        warehouse_path = Path(tmp) / "warehouse.db"
        offline_structure_induction(model_path)
        online_load_check(model_path, warehouse_path)


if __name__ == "__main__":
    main()
