#!/usr/bin/env python3
"""Supervised correction by a quality engineer (paper secs. 3.1, 5.3).

The paper insists that corrections stay supervised — "outliers can be
correct and of great importance for analysis" — and that interactive
correction should expose *all* classifiers' objections per record. This
script drives a :class:`repro.core.ReviewSession` over a QUIS sample the
way a (scripted) quality engineer would:

* accept the proposal when every objection points at the same cell,
* dismiss records whose strongest objection is weak (likely a correct
  outlier),
* enter a custom value when the engineer "knows better".

Run with:  python examples/interactive_review.py
"""

from repro.core import AuditorConfig, DataAuditor, ReviewSession
from repro.quis import generate_quis_sample
from repro.testenv import evaluate_audit


def main() -> None:
    sample = generate_quis_sample(20_000, seed=7)
    auditor = DataAuditor(sample.schema, AuditorConfig(min_error_confidence=0.8))
    auditor.fit(sample.dirty)
    report = auditor.audit(sample.dirty)
    session = ReviewSession(report, sample.dirty)
    print(f"{session.n_pending} suspicious records queued for review\n")

    print("the three strongest cases, as the engineer sees them:")
    for item in session.pending()[:3]:
        print(item.describe())
        print()

    # scripted review policy (a real engineer would decide per record)
    for item in session.pending():
        strongest = max(item.findings, key=lambda f: f.confidence)
        if strongest.confidence < 0.9:
            session.dismiss(item.row, note="low confidence — possible correct outlier")
        elif item.row == sample.canonical_row:
            # the engineer checked the source system: the series is right,
            # the engine code was mistyped
            session.correct(item.row, "GBM", "901", note="verified against plant records")
        else:
            session.accept(item.row)

    print(session.summary())

    corrected = session.corrected_table()
    result = evaluate_audit(report, sample.log, sample.clean, sample.dirty,
                            corrected=corrected)
    print(f"\nafter supervised correction: quality of correction = "
          f"{result.correction_quality:+.3f}")
    print(f"canonical record now reads GBM = "
          f"{corrected.cell(sample.canonical_row, 'GBM')!r} "
          f"(clean value: {sample.clean.cell(sample.canonical_row, 'GBM')!r})")


if __name__ == "__main__":
    main()
