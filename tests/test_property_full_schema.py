"""Property tests of the logic layer over the *full* schema (floats and
dates included) — the tiny-schema properties in the other modules cannot
exercise continuous ranges or ordinal date arithmetic."""

import datetime
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import (
    And,
    Eq,
    EqAttr,
    Gt,
    GtAttr,
    IsNull,
    Lt,
    LtAttr,
    Ne,
    Or,
    conjoin,
    find_model,
    is_satisfiable,
    negate,
)
from repro.schema import Schema, date, nominal, numeric

FULL = Schema(
    [
        nominal("A", ["a", "b", "c"]),
        numeric("N", 0, 100, integer=True),
        numeric("M", 0, 100, integer=True),
        numeric("F", 0.0, 1.0),
        numeric("G", 0.0, 1.0),
        date("D", datetime.date(2000, 1, 1), datetime.date(2001, 12, 31)),
        date("E", datetime.date(2000, 1, 1), datetime.date(2001, 12, 31)),
    ]
)

_DATES = st.dates(datetime.date(2000, 1, 1), datetime.date(2001, 12, 31))


def atoms():
    numeric_prop = st.builds(
        lambda attr, value, op: op(attr, value),
        st.sampled_from(["N", "M"]),
        st.integers(0, 100),
        st.sampled_from([Eq, Ne, Lt, Gt]),
    )
    float_prop = st.builds(
        lambda attr, value, op: op(attr, round(value, 4)),
        st.sampled_from(["F", "G"]),
        st.floats(0.0, 1.0, allow_nan=False),
        st.sampled_from([Lt, Gt]),
    )
    date_prop = st.builds(
        lambda attr, value, op: op(attr, value),
        st.sampled_from(["D", "E"]),
        _DATES,
        st.sampled_from([Eq, Lt, Gt]),
    )
    nominal_prop = st.builds(
        lambda value, op: op("A", value),
        st.sampled_from(["a", "b", "c"]),
        st.sampled_from([Eq, Ne]),
    )
    null_test = st.builds(IsNull, st.sampled_from(["A", "N", "F", "D"]))
    relational = st.one_of(
        st.builds(lambda op: op("N", "M"), st.sampled_from([EqAttr, LtAttr, GtAttr])),
        st.builds(lambda op: op("F", "G"), st.sampled_from([LtAttr, GtAttr])),
        st.builds(lambda op: op("D", "E"), st.sampled_from([EqAttr, LtAttr, GtAttr])),
    )
    return st.one_of(numeric_prop, float_prop, date_prop, nominal_prop, null_test, relational)


def formulas():
    def connect(children):
        parts = st.lists(children, min_size=2, max_size=3)

        def build(pair):
            kind, part_list = pair
            distinct = []
            for part in part_list:
                if part not in distinct:
                    distinct.append(part)
            if len(distinct) < 2:
                return distinct[0]
            return And(*distinct) if kind == "and" else Or(*distinct)

        return st.tuples(st.sampled_from(["and", "or"]), parts).map(build)

    return st.recursive(atoms(), connect, max_leaves=5)


def _empty_record():
    return {name: None for name in FULL.names}


class TestFullSchemaSolver:
    @settings(max_examples=150, deadline=None)
    @given(formulas())
    def test_models_are_genuine(self, formula):
        model = find_model(formula, FULL, random.Random(3))
        if model is not None:
            record = {**_empty_record(), **model}
            assert formula.evaluate(record)

    @settings(max_examples=150, deadline=None)
    @given(formulas())
    def test_sat_and_model_agree(self, formula):
        # whenever the pragmatic test says SAT, the solver finds a model
        # on this schema (continuous ranges leave plenty of room)
        if is_satisfiable(formula, FULL):
            assert find_model(formula, FULL, random.Random(4)) is not None

    @settings(max_examples=100, deadline=None)
    @given(formulas())
    def test_formula_and_negation_not_both_unsat(self, formula):
        # α ∨ α̃ is a tautology, so at least one side must be satisfiable
        assert is_satisfiable(formula, FULL) or is_satisfiable(negate(formula), FULL)

    @settings(max_examples=100, deadline=None)
    @given(formulas(), formulas())
    def test_conjunction_sat_implies_parts_sat(self, alpha, beta):
        if is_satisfiable(conjoin([alpha, beta]), FULL):
            assert is_satisfiable(alpha, FULL)
            assert is_satisfiable(beta, FULL)

    @settings(max_examples=60, deadline=None)
    @given(formulas(), st.randoms(use_true_random=False))
    def test_model_minimality_prefers_base(self, formula, rng):
        base_model = find_model(formula, FULL, random.Random(5))
        if base_model is None:
            return
        # solving again with a satisfying record as base keeps it unchanged
        record = {**_empty_record(), **base_model}
        again = find_model(formula, FULL, random.Random(6), base=record)
        assert again is not None
        merged = {**record, **again}
        assert formula.evaluate(merged)


class TestDateArithmetic:
    def test_date_chain_through_shared_day(self):
        f = And(
            LtAttr("D", "E"),
            Gt("D", datetime.date(2001, 12, 29)),
        )
        model = find_model(f, FULL, random.Random(7))
        assert model == {
            "D": datetime.date(2001, 12, 30),
            "E": datetime.date(2001, 12, 31),
        }

    def test_date_chain_too_tight(self):
        f = And(
            LtAttr("D", "E"),
            Gt("D", datetime.date(2001, 12, 30)),
        )
        assert not is_satisfiable(f, FULL)

    def test_equal_dates_link(self):
        f = And(EqAttr("D", "E"), Eq("D", datetime.date(2000, 6, 1)))
        model = find_model(f, FULL, random.Random(8))
        assert model["E"] == datetime.date(2000, 6, 1)


class TestFloatRanges:
    def test_open_interval_model(self):
        f = And(Gt("F", 0.3), Lt("F", 0.30001))
        model = find_model(f, FULL, random.Random(9))
        assert model is not None
        assert 0.3 < model["F"] < 0.30001

    def test_float_ordering_chain(self):
        f = And(LtAttr("F", "G"), Gt("F", 0.99))
        model = find_model(f, FULL, random.Random(10))
        assert model is not None
        assert 0.99 < model["F"] < model["G"] <= 1.0
