"""Smoke tests: every shipped example must run to completion and produce
its advertised narrative (examples are documentation — they break
silently otherwise)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    output = _run("quickstart.py")
    assert "generated 4000 clean records" in output
    assert "top findings" in output
    assert "sensitivity=" in output


def test_quis_audit():
    output = _run("quis_audit.py", "15000")
    assert "suspicious records" in output
    assert "BRV=404 with GBM=911" in output
    assert "flagged: True" in output


def test_warehouse_loading():
    output = _run("warehouse_loading.py")
    assert "structure model persisted" in output
    assert "seeded errors caught: 3/3" in output


def test_sql_pushdown():
    output = _run("sql_pushdown.py")
    assert "model compiled to SQL: 8 screening queries" in output
    assert "findings byte-identical to the in-memory audit" in output
    assert "row    17 GBM" in output


def test_calibration_workflow():
    output = _run("calibration_workflow.py")
    assert "algorithm selection" in output
    assert "selected: adjusted C4.5" in output
    assert "derived minInst bound" in output


def test_interactive_review():
    output = _run("interactive_review.py")
    assert "queued for review" in output
    assert "reviewed" in output
    assert "canonical record now reads GBM = '901'" in output


def test_audit_service():
    output = _run("audit_service.py")
    assert "registered quis@v1" in output
    assert "seeded errors caught: 3/3" in output
    assert "HTTP findings identical to the in-process audit: True" in output
    assert "audit service stopped cleanly" in output


def test_continuous_audit():
    output = _run("continuous_audit.py")
    assert "registered quis@v1" in output
    assert "drift detected on" in output
    assert "auto-refit registered quis@v2 (trigger=drift" in output
    assert "top findings:" in output
