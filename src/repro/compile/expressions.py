"""Shared SQL expression builders for the model compiler.

Every compiled screen (:mod:`repro.compile.tree`,
:mod:`repro.compile.rules`, :mod:`repro.compile.bayes`) is assembled
from the same small vocabulary of expressions over one table row:

* **storage-cleanliness guards** (:func:`clean_expr`) — a cell is
  *clean* when its SQLite storage class is exactly what
  :class:`repro.io.sqlite_backend.SqliteTableSource` would convert
  without information loss: ``TEXT`` for nominal cells, strictly
  ISO-formatted ``TEXT`` for dates, and finite ``REAL`` / small
  ``INTEGER`` (``|v| ≤ 2⁵³``, exactly representable as a double) for
  numerics. Anything else — blobs, out-of-range integers, the text
  form of a >64-bit integer, a malformed date — is routed to the
  Python re-check, which converts it through the *same* code path as
  an in-memory read and therefore deviates (or errors) identically;
* **class-code expressions** (:func:`observed_class_expr`) — the
  observed cell's :class:`~repro.mining.dataset.ClassEncoder` label
  code, computed in SQL for clean storage;
* **bucket expressions** (:func:`bucket_expr`) — the
  ``_Bucketizer`` index used by the 1R/PRISM rule models;
* **ordered comparisons** (:func:`value_ge_expr`, :func:`value_le_expr`)
  — numeric-view comparisons against fitted cut points and split
  thresholds. Numeric constants are bound as parameters (exact
  doubles); date-ordinal comparisons are rewritten to lexicographic
  ISO-string comparisons, which order identically for the guarded
  ``YYYY-MM-DD`` shape.

All expressions assume the clean guard is checked *independently* by
the caller: on unclean storage their value is irrelevant because the
row is already a candidate.
"""

from __future__ import annotations

import datetime
import math
from typing import Optional, Sequence

from repro.compile.dialect import SqlDialect
from repro.mining.dataset import BaseEncoder, ClassEncoder
from repro.mining.discretize import EqualFrequencyDiscretizer
from repro.schema.attribute import Attribute
from repro.schema.types import AttributeKind

__all__ = [
    "SqlBuilder",
    "clean_expr",
    "observed_class_expr",
    "bucket_expr",
    "cut_count_expr",
    "value_ge_expr",
    "value_le_expr",
]

#: Largest integer exactly representable as an IEEE double (2**53): the
#: SQL-side comparisons certify rows via double arithmetic, so INTEGER
#: storage beyond it must take the Python re-check path instead.
_EXACT_INT = 2**53

#: Largest finite double — REAL storage outside it (``9e999`` infinities)
#: is unclean and re-checked in Python, where conversion rejects it with
#: the same error an in-memory read raises.
_MAX_REAL = 1.7976931348623157e308

_MIN_ORDINAL = datetime.date.min.toordinal()  # 0001-01-01 → 1
_MAX_ORDINAL = datetime.date.max.toordinal()  # 9999-12-31


class SqlBuilder:
    """Accumulator of one query's bound parameters.

    ``bind`` hands out numbered placeholders (``?7``), so expression
    fragments may be composed into the final statement in any textual
    order without disturbing parameter association.
    """

    def __init__(self, dialect: SqlDialect):
        self.dialect = dialect
        self.params: list[object] = []

    def bind(self, value: object) -> str:
        """Bind *value*; returns its numbered placeholder."""
        self.params.append(value)
        return self.dialect.placeholder(len(self.params))

    def col(self, name: str) -> str:
        """The quoted column reference for attribute *name*."""
        return self.dialect.quote(name)


def clean_expr(builder: SqlBuilder, attribute: Attribute) -> str:
    """Boolean SQL: the cell's storage is losslessly convertible.

    ``NULL`` counts as clean (it converts to ``None`` everywhere).
    """
    col = builder.col(attribute.name)
    if attribute.kind is AttributeKind.NOMINAL:
        return f"({col} IS NULL OR typeof({col}) = 'text')"
    if attribute.kind is AttributeKind.DATE:
        # Exactly the strings date.fromisoformat() accepts and SQLite's
        # date() normalizes to themselves: zero-padded YYYY-MM-DD with a
        # valid calendar day in year >= 1 (SQLite accepts year 0000,
        # Python does not, hence the lower bound).
        return (
            f"({col} IS NULL OR (typeof({col}) = 'text'"
            f" AND {col} GLOB '[0-9][0-9][0-9][0-9]-[0-9][0-9]-[0-9][0-9]'"
            f" AND date({col}) IS NOT NULL AND {col} = date({col})"
            f" AND {col} >= '0001-01-01'))"
        )
    # numeric: finite REAL, or INTEGER small enough that the encoder's
    # float() view is exact (BETWEEN instead of abs() — abs() overflows
    # on INT64_MIN)
    return (
        f"({col} IS NULL"
        f" OR (typeof({col}) = 'real'"
        f" AND {col} BETWEEN {builder.bind(-_MAX_REAL)} AND {builder.bind(_MAX_REAL)})"
        f" OR (typeof({col}) = 'integer'"
        f" AND {col} BETWEEN -{_EXACT_INT} AND {_EXACT_INT}))"
    )


def value_ge_expr(builder: SqlBuilder, attribute: Attribute, cut: float) -> str:
    """Boolean SQL for ``numeric_view(col) >= cut`` on a clean, non-null
    ordered cell."""
    col = builder.col(attribute.name)
    if attribute.kind is AttributeKind.DATE:
        # integral ordinals: v >= cut  ⇔  v >= ceil(cut); ISO strings of
        # the guarded shape compare lexicographically in date order
        ordinal = math.ceil(cut)
        if ordinal <= _MIN_ORDINAL:
            return "1"
        if ordinal > _MAX_ORDINAL:
            return "0"
        iso = datetime.date.fromordinal(ordinal).isoformat()
        return f"{col} >= {builder.bind(iso)}"
    return f"{col} >= {builder.bind(float(cut))}"


def value_le_expr(builder: SqlBuilder, attribute: Attribute, threshold: float) -> str:
    """Boolean SQL for ``numeric_view(col) <= threshold`` (decision-tree
    numeric splits) on a clean, non-null ordered cell."""
    col = builder.col(attribute.name)
    if attribute.kind is AttributeKind.DATE:
        ordinal = math.floor(threshold)
        if ordinal < _MIN_ORDINAL:
            return "0"
        if ordinal >= _MAX_ORDINAL:
            return "1"
        iso = datetime.date.fromordinal(ordinal).isoformat()
        return f"{col} <= {builder.bind(iso)}"
    return f"{col} <= {builder.bind(float(threshold))}"


def cut_count_expr(
    builder: SqlBuilder, attribute: Attribute, cuts: Sequence[float]
) -> str:
    """Integer SQL: how many of *cuts* are ``<= numeric_view(col)`` — the
    :meth:`~repro.mining.discretize.EqualFrequencyDiscretizer.transform_value`
    bin index of a clean, non-null ordered cell."""
    if not cuts:
        return "0"
    terms = " + ".join(
        f"(CASE WHEN {value_ge_expr(builder, attribute, cut)} THEN 1 ELSE 0 END)"
        for cut in cuts
    )
    return f"({terms})"


def observed_class_expr(
    builder: SqlBuilder, attribute: Attribute, class_encoder: ClassEncoder
) -> str:
    """Integer SQL: the observed cell's class-label code on clean storage
    — exactly :meth:`~repro.mining.dataset.ClassEncoder.encode_column`
    restricted to convertible cells."""
    col = builder.col(attribute.name)
    null_code = class_encoder.null_code
    if attribute.kind is AttributeKind.NOMINAL:
        arms = "".join(
            f" WHEN {col} = {builder.bind(value)}"
            f" THEN {class_encoder.index_of_label(value)}"
            for value in attribute.domain.values  # type: ignore[attr-defined]
        )
        return (
            f"CASE WHEN {col} IS NULL THEN {null_code}{arms}"
            f" ELSE {class_encoder.unknown_code} END"
        )
    discretizer = class_encoder.discretizer
    if discretizer is None:
        # no finite training values: every non-null cell is <unknown>
        return (
            f"CASE WHEN {col} IS NULL THEN {null_code}"
            f" ELSE {class_encoder.unknown_code} END"
        )
    bins = cut_count_expr(builder, attribute, discretizer.cut_points)
    return f"CASE WHEN {col} IS NULL THEN {null_code} ELSE {bins} END"


def bucket_expr(
    builder: SqlBuilder,
    attribute: Attribute,
    encoder: BaseEncoder,
    discretizer: Optional[EqualFrequencyDiscretizer],
) -> str:
    """Integer SQL: the rule models' ``_Bucketizer`` index of a clean
    cell — 0 for null, category code + 1 / bin + 1 otherwise."""
    col = builder.col(attribute.name)
    if encoder.categorical:
        arms = "".join(
            f" WHEN {col} = {builder.bind(value)} THEN {code + 1}"
            for code, value in enumerate(attribute.domain.values)  # type: ignore[attr-defined]
        )
        return (
            f"CASE WHEN {col} IS NULL THEN 0{arms}"
            f" ELSE {encoder.unknown_code + 1} END"
        )
    if discretizer is None:
        return "0"
    bins = cut_count_expr(builder, attribute, discretizer.cut_points)
    return f"CASE WHEN {col} IS NULL THEN 0 ELSE 1 + {bins} END"
