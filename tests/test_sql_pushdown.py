"""SQL pushdown parity suite: ``engine="sql"`` must match the in-memory
audit finding for finding.

The contract under test (``docs/sql_compilation.md``): for every
compilable model family — tree, 1R, PRISM, naive Bayes — the pushdown
engine returns the same :class:`~repro.core.findings.AuditReport`
content as the in-memory batch path: the identical ranked findings list
(bit-equal confidences included, since ``Finding`` equality compares the
floats), the same suspicious-row ranking, and the same record
confidences on every flagged row. The fixtures deliberately cover the
awkward inputs: nulls, out-of-distribution values the training table
never showed, exact ties, and domain-boundary numerics/dates.

Non-compilable configurations (kNN) and non-SQLite sources must fall
back to the in-memory path cleanly — same findings, one-line notice.
"""

import datetime
import random
import sqlite3

import pytest

from repro.compile import (
    ALIAS_PREFIX,
    NotCompilable,
    audit_sqlite,
    audit_table_sql,
    compilation_plan,
)
from repro.core.auditor import AuditorConfig, DataAuditor
from repro.core.findings import AuditReport
from repro.core.session import AuditSession
from repro.io.csv_backend import CsvTableSink
from repro.io.registry import open_source
from repro.io.sqlite_backend import SqliteTableSink
from repro.mining.knn import KnnClassifier
from repro.mining.naive_bayes import NaiveBayesClassifier
from repro.mining.rule_induction import OneRClassifier, PrismClassifier
from repro.mining.tree_classifier import TreeClassifier
from repro.schema import Schema, Table, date, nominal, numeric

FAMILIES = {
    "tree": lambda config: TreeClassifier(),
    "one_r": lambda config: OneRClassifier(n_bins=config.n_bins),
    "prism": lambda config: PrismClassifier(n_bins=config.n_bins),
    "naive_bayes": lambda config: NaiveBayesClassifier(n_bins=config.n_bins),
}


def _rich_schema() -> Schema:
    return Schema(
        [
            nominal("A", ["a", "b", "c"]),
            nominal("B", ["x", "y"]),
            numeric("N", 0, 100, integer=True),
            numeric("M", 0, 100, integer=True),
            numeric("F", 0.0, 1.0),
            date("D", datetime.date(2000, 1, 1), datetime.date(2001, 12, 31)),
        ]
    )


def _rich_tables(seed=29, n_train=600, n_audit=260):
    """(train, audit) over every attribute kind.

    Training only ever sees ``A in {a, b}``; the audit table adds ``c``
    rows (in-domain but out-of-distribution), nulls in every column,
    exact-tie duplicates, and domain-boundary numerics and dates.
    """
    rng = random.Random(seed)
    schema = _rich_schema()
    rule = {"a": "x", "b": "y", "c": "x"}
    bands = {"a": (0, 30), "b": (35, 65), "c": (70, 100)}

    def row(a):
        b = rule[a] if rng.random() > 0.03 else rng.choice(["x", "y"])
        base = datetime.date(2001 if a == "c" else 2000, 1, 1)
        return [
            a,
            b,
            rng.randint(*bands[a]),
            rng.randint(0, 100),
            round(rng.random(), 6),
            base + datetime.timedelta(days=rng.randrange(300)),
        ]

    train = Table(schema, [row(rng.choice("ab")) for _ in range(n_train)])
    audit_rows = [row(rng.choice("abc")) for _ in range(n_audit)]
    for i in range(0, n_audit, 17):  # nulls, cycling through the columns
        audit_rows[i][(i // 17) % len(schema)] = None
    audit_rows += [  # exact ties: identical inputs, conflicting classes
        ["a", "x", 5, 50, 0.5, datetime.date(2000, 6, 1)],
        ["a", "y", 5, 50, 0.5, datetime.date(2000, 6, 1)],
    ]
    audit_rows += [  # domain boundaries
        ["b", "y", 0, 100, 0.0, datetime.date(2000, 1, 1)],
        ["b", "y", 100, 0, 1.0, datetime.date(2001, 12, 31)],
    ]
    return train, Table(schema, audit_rows)


def _fitted(factory, train):
    config = AuditorConfig(min_error_confidence=0.8, classifier_factory=factory)
    return DataAuditor(train.schema, config).fit(train)


def _assert_reports_match(memory: AuditReport, sql: AuditReport) -> None:
    assert sql.n_rows == memory.n_rows
    assert sql.findings == memory.findings  # Finding eq is bit-exact on floats
    assert sql.suspicious_rows() == memory.suspicious_rows()
    assert sql.min_error_confidence == memory.min_error_confidence
    for finding in memory.findings:  # flagged rows keep exact confidences
        assert sql.confidence_of(finding.row) == memory.confidence_of(finding.row)


class TestFamilyParity:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_findings_byte_identical(self, family):
        train, audit = _rich_tables()
        auditor = _fitted(FAMILIES[family], train)
        plan = compilation_plan(auditor)
        assert plan.compilable and plan.reasons == {}
        memory = auditor.audit(audit)
        assert memory.findings, "fixture must actually flag deviations"
        _assert_reports_match(memory, audit_table_sql(auditor, audit))

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_self_audit_parity(self, family):
        # fit table == audit table: the all-clean regime where the screen
        # should certify nearly everything without a Python recheck
        train, _ = _rich_tables()
        auditor = _fitted(FAMILIES[family], train)
        _assert_reports_match(auditor.audit(train), audit_table_sql(auditor, train))

    def test_record_confidence_censoring_is_one_sided(self):
        # the single documented divergence: rows the screen certifies
        # clean keep confidence 0.0; flagged rows stay exact, so the
        # SQL confidence can never exceed the in-memory one
        train, audit = _rich_tables()
        auditor = _fitted(FAMILIES["tree"], train)
        memory = auditor.audit(audit)
        sql = audit_table_sql(auditor, audit)
        assert any(
            s < m for s, m in zip(sql.record_confidence, memory.record_confidence)
        ), "fixture must exercise the censoring"
        for s, m in zip(sql.record_confidence, memory.record_confidence):
            assert s <= m

    def test_engine_flag_on_audit(self):
        train, audit = _rich_tables()
        auditor = _fitted(FAMILIES["tree"], train)
        assert auditor.audit(audit, engine="sql").findings == auditor.audit(audit).findings
        assert (
            auditor.audit(audit, engine="memory").findings
            == auditor.audit(audit).findings
        )
        with pytest.raises(ValueError, match="engine"):
            auditor.audit(audit, engine="duckdb")


class TestDatabaseFiles:
    @pytest.fixture
    def warehouse(self, tmp_path):
        train, audit = _rich_tables()
        auditor = _fitted(FAMILIES["tree"], train)
        database = tmp_path / "wh.db"
        with SqliteTableSink(audit.schema, database, table="loads") as sink:
            sink.write(audit)
        return auditor, audit, database

    def test_audit_sqlite_matches_memory(self, warehouse):
        auditor, audit, database = warehouse
        _assert_reports_match(auditor.audit(audit), audit_sqlite(auditor, database))

    def test_audit_source_sql_yields_one_whole_table_report(self, warehouse):
        auditor, audit, database = warehouse
        session = AuditSession(auditor=auditor)
        url = f"sqlite:///{database}?table=loads"
        reports = list(session.audit_source(url, chunk_size=50, engine="sql"))
        assert len(reports) == 1  # pushdown: no extraction, no chunking
        _assert_reports_match(auditor.audit(audit), reports[0])

    def test_mistyped_cell_raises_the_extraction_error(self, warehouse):
        # a text value in a numeric column must fail with the exact error
        # the extract-and-audit path raises — the dirty guard routes the
        # row to the same converter
        auditor, audit, database = warehouse
        with sqlite3.connect(database) as connection:
            connection.execute("UPDATE loads SET N = 'bogus' WHERE rowid = 3")
        with open_source(audit.schema, str(database)) as source:
            with pytest.raises(ValueError) as via_extract:
                source.read()
        with pytest.raises(ValueError) as via_pushdown:
            audit_sqlite(auditor, database)
        assert str(via_pushdown.value) == str(via_extract.value)

    def test_missing_database(self, warehouse):
        auditor, _, database = warehouse
        with pytest.raises(FileNotFoundError):
            audit_sqlite(auditor, database.with_name("absent.db"))


class TestFallbacks:
    def test_knn_is_not_compilable(self):
        train, audit = _rich_tables()
        auditor = _fitted(lambda config: KnnClassifier(), train)
        plan = compilation_plan(auditor)
        assert not plan.compilable
        assert "auditing in memory" in plan.notice()
        assert "KnnClassifier" in plan.notice()
        with pytest.raises(NotCompilable):
            audit_table_sql(auditor, audit)
        # engine="sql" falls back silently to the identical memory audit
        assert auditor.audit(audit, engine="sql").findings == auditor.audit(audit).findings

    def test_audit_source_non_sqlite_falls_back_chunked(self, tmp_path):
        train, audit = _rich_tables()
        auditor = _fitted(FAMILIES["tree"], train)
        path = tmp_path / "loads.csv"
        with CsvTableSink(audit.schema, path) as sink:
            sink.write(audit)
        session = AuditSession(auditor=auditor)
        reports = list(session.audit_source(str(path), chunk_size=50, engine="sql"))
        assert len(reports) > 1  # chunked extraction, not pushdown
        merged = AuditReport.merge(reports)
        assert merged.findings == auditor.audit(audit).findings

    def test_audit_source_rejects_unknown_engine(self, tmp_path):
        train, _ = _rich_tables()
        auditor = _fitted(FAMILIES["tree"], train)
        session = AuditSession(auditor=auditor)
        with pytest.raises(ValueError, match="engine"):
            next(session.audit_source(str(tmp_path / "x.csv"), engine="duckdb"))


class TestCompilationPlan:
    def test_statements_cover_audited_attributes(self):
        train, _ = _rich_tables()
        auditor = _fitted(FAMILIES["tree"], train)
        plan = compilation_plan(auditor)
        assert [s.attribute for s in plan.statements] == list(auditor.classifiers)
        for statement in plan.statements:
            sql = statement.sql('"loads"')
            assert '"loads"' in sql
            assert f'"{ALIAS_PREFIX}rn"' in sql
            assert isinstance(statement.params, tuple)

    def test_unfitted_auditor_is_rejected(self):
        with pytest.raises(RuntimeError, match="fit"):
            compilation_plan(DataAuditor(_rich_schema()))

    def test_alias_collision_falls_back(self):
        schema = Schema(
            [
                nominal(f"{ALIAS_PREFIX}rn", ["a", "b"]),
                nominal("B", ["x", "y"]),
                numeric("N", 0, 3, integer=True),
            ]
        )
        rng = random.Random(5)
        rows = [
            [rng.choice("ab"), rng.choice("xy"), rng.randint(0, 3)] for _ in range(200)
        ]
        table = Table(schema, rows)
        auditor = DataAuditor(schema, AuditorConfig(min_error_confidence=0.8))
        auditor.fit(table)
        plan = compilation_plan(auditor)
        assert not plan.compilable
        assert "auditing in memory" in plan.notice()


class TestCli:
    @pytest.fixture
    def workspace(self, tmp_path):
        from repro.core.serialize import save_auditor

        train, audit = _rich_tables()
        auditor = _fitted(FAMILIES["tree"], train)
        model = tmp_path / "model.json"
        save_auditor(auditor, model)
        database = tmp_path / "wh.db"
        with SqliteTableSink(audit.schema, database, table="loads") as sink:
            sink.write(audit)
        csv_path = tmp_path / "loads.csv"
        with CsvTableSink(audit.schema, csv_path) as sink:
            sink.write(audit)
        return {"model": model, "db": database, "csv": csv_path}

    def _audit_jsonl(self, capsys, model, location, *extra):
        from repro.cli import main

        args = ["audit", "--model", str(model), "--input", str(location)]
        args += ["--format", "jsonl", *extra]
        assert main(args) == 0
        captured = capsys.readouterr()
        return captured.out, captured.err

    def test_engine_sql_byte_identical_jsonl(self, workspace, capsys):
        url = f"sqlite:///{workspace['db']}?table=loads"
        memory_out, _ = self._audit_jsonl(capsys, workspace["model"], url)
        sql_out, sql_err = self._audit_jsonl(
            capsys, workspace["model"], url, "--engine", "sql"
        )
        assert sql_out == memory_out
        assert "note:" not in sql_err  # pushdown ran; no fallback notice

    def test_engine_sql_chunked_byte_identical(self, workspace, capsys):
        url = f"sqlite:///{workspace['db']}?table=loads"
        memory_out, _ = self._audit_jsonl(capsys, workspace["model"], url)
        sql_out, _ = self._audit_jsonl(
            capsys, workspace["model"], url, "--engine", "sql", "--chunk-size", "50"
        )
        assert sql_out == memory_out

    def test_engine_sql_on_csv_notes_and_falls_back(self, workspace, capsys):
        memory_out, _ = self._audit_jsonl(capsys, workspace["model"], workspace["csv"])
        sql_out, sql_err = self._audit_jsonl(
            capsys, workspace["model"], workspace["csv"], "--engine", "sql"
        )
        assert sql_out == memory_out
        assert "note: --engine sql needs a SQLite --input" in sql_err


class TestSinkConnection:
    def test_exactly_one_of_database_or_connection(self):
        schema = _rich_schema()
        with pytest.raises(ValueError, match="exactly one"):
            SqliteTableSink(schema)
        connection = sqlite3.connect(":memory:", isolation_level=None)
        try:
            with pytest.raises(ValueError, match="exactly one"):
                SqliteTableSink(schema, "wh.db", connection=connection)
        finally:
            connection.close()

    def test_caller_connection_stays_open(self):
        train, _ = _rich_tables()
        connection = sqlite3.connect(":memory:", isolation_level=None)
        try:
            with SqliteTableSink(train.schema, table="t", connection=connection) as sink:
                sink.write(train)
            # the sink committed but did not close the caller's connection
            (count,) = connection.execute("SELECT COUNT(*) FROM t").fetchone()
            assert count == train.n_rows
        finally:
            connection.close()
