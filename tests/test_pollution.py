"""Tests for the controlled-corruption components and pipeline.

The central invariant: the pollution log is *exact ground truth* — every
difference between the clean and dirty tables is logged, and everything
logged is a real difference. The property test at the bottom replays the
log against the clean table and must reproduce the dirty table's corrupted
rows precisely.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generator import Uniform, base_profile
from repro.pollution import (
    Duplicator,
    Limiter,
    NullValuePolluter,
    PollutionLog,
    PollutionPipeline,
    RowEventKind,
    Switcher,
    WrongValuePolluter,
    default_polluters,
)
from repro.schema import Schema, Table, nominal, numeric


@pytest.fixture
def schema():
    return Schema(
        [
            nominal("A", ["a", "b", "c"]),
            nominal("B", ["x", "y"]),
            numeric("N", 0, 100, integer=True),
            numeric("M", 0, 100, integer=True),
        ]
    )


@pytest.fixture
def table(schema):
    rng = random.Random(0)
    rows = [
        [
            rng.choice(["a", "b", "c"]),
            rng.choice(["x", "y"]),
            rng.randint(0, 100),
            rng.randint(0, 100),
        ]
        for _ in range(200)
    ]
    return Table(schema, rows)


class TestWrongValuePolluter:
    def test_changes_logged_exactly(self, table):
        dirty = table.copy()
        log = PollutionLog()
        WrongValuePolluter(0.1).pollute(dirty, random.Random(1), log)
        diffs = {
            (i, name)
            for i in range(table.n_rows)
            for name in table.schema.names
            if table.cell(i, name) != dirty.cell(i, name)
        }
        assert diffs == log.corrupted_cells()
        assert len(diffs) > 0

    def test_values_stay_in_domain(self, table):
        dirty = table.copy()
        WrongValuePolluter(0.2).pollute(dirty, random.Random(2), PollutionLog())
        dirty.validate()

    def test_attribute_restriction(self, table):
        dirty = table.copy()
        log = PollutionLog()
        WrongValuePolluter(0.3, attributes=["A"]).pollute(dirty, random.Random(3), log)
        assert {attr for _, attr in log.corrupted_cells()} == {"A"}

    def test_zero_probability_never_fires(self, table):
        dirty = table.copy()
        log = PollutionLog()
        WrongValuePolluter(0.0).pollute(dirty, random.Random(4), log)
        assert dirty == table and log.n_cell_changes == 0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            WrongValuePolluter(1.5)


class TestNullValuePolluter:
    def test_sets_nulls(self, table):
        dirty = table.copy()
        log = PollutionLog()
        NullValuePolluter(0.1).pollute(dirty, random.Random(5), log)
        assert log.n_cell_changes > 0
        for change in log.cell_changes:
            assert change.after is None
            assert dirty.cell(change.row, change.attribute) is None

    def test_existing_null_not_relogged(self, schema):
        t = Table(schema, [[None, "x", 1, 2]])
        log = PollutionLog()
        NullValuePolluter(1.0, attributes=["A"]).pollute(t, random.Random(6), log)
        assert log.n_cell_changes == 0


class TestLimiter:
    def test_clips_extremes_only(self, schema):
        t = Table(schema, [["a", "x", 0, 50], ["b", "y", 100, 50]])
        log = PollutionLog()
        Limiter(1.0, lower_fraction=0.1, upper_fraction=0.9).pollute(
            t, random.Random(7), log
        )
        assert t.cell(0, "N") == 10
        assert t.cell(1, "N") == 90
        assert t.cell(0, "M") == 50  # interior value untouched
        assert {(0, "N"), (1, "N")} == log.corrupted_cells()

    def test_ignores_nominal(self, schema):
        t = Table(schema, [["a", "x", 50, 50]])
        log = PollutionLog()
        Limiter(1.0).pollute(t, random.Random(8), log)
        assert all(attr in ("N", "M") for _, attr in log.corrupted_cells())

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            Limiter(0.1, lower_fraction=0.9, upper_fraction=0.1)


class TestSwitcher:
    def test_swaps_compatible_pair(self, schema):
        t = Table(schema, [["a", "x", 10, 99]])
        log = PollutionLog()
        Switcher(1.0).pollute(t, random.Random(9), log)
        row = t.record(0)
        # values were swapped within a kind-compatible pair
        assert sorted([row["A"], row["B"]]) == ["a", "x"] or sorted(
            [row["N"], row["M"]]
        ) == [10, 99]
        assert len(log.cell_changes) == 2

    def test_explicit_pairs(self, schema):
        t = Table(schema, [["a", "x", 10, 99]])
        log = PollutionLog()
        Switcher(1.0, pairs=[("N", "M")]).pollute(t, random.Random(10), log)
        assert t.cell(0, "N") == 99 and t.cell(0, "M") == 10

    def test_equal_values_not_logged(self, schema):
        t = Table(schema, [["a", "x", 50, 50]])
        log = PollutionLog()
        Switcher(1.0, pairs=[("N", "M")]).pollute(t, random.Random(11), log)
        assert log.n_cell_changes == 0

    def test_incompatible_pairs_excluded_by_default(self, schema):
        switcher = Switcher(1.0)
        t = Table(schema, [["a", "x", 1, 2]])
        pairs = switcher._candidate_pairs(t)
        assert ("A", "N") not in pairs and ("B", "M") not in pairs


class TestDuplicator:
    def test_duplicates_insert_copies(self, table):
        dirty = table.copy()
        log = PollutionLog()
        Duplicator(0.1, delete_probability=0.0).pollute(dirty, random.Random(12), log)
        assert dirty.n_rows == table.n_rows + log.n_duplicated
        for event in log.row_events:
            assert event.kind is RowEventKind.DUPLICATED
            assert dirty.row(event.row) == dirty.row(event.row - 1)

    def test_deletes_remove_rows(self, table):
        dirty = table.copy()
        log = PollutionLog()
        Duplicator(0.1, delete_probability=1.0).pollute(dirty, random.Random(13), log)
        assert dirty.n_rows == table.n_rows - log.n_deleted
        assert log.n_deleted > 0

    def test_mixed_bookkeeping(self, table):
        dirty = table.copy()
        log = PollutionLog()
        Duplicator(0.15, delete_probability=0.5).pollute(dirty, random.Random(14), log)
        assert dirty.n_rows == table.n_rows + log.n_duplicated - log.n_deleted

    def test_invalid_delete_probability(self):
        with pytest.raises(ValueError):
            Duplicator(0.1, delete_probability=-0.1)


class TestPipeline:
    def test_input_table_untouched(self, table):
        pipeline = PollutionPipeline(default_polluters())
        snapshot = table.copy()
        pipeline.apply(table, random.Random(15))
        assert table == snapshot

    def test_duplicator_applied_last(self):
        polluters = [Duplicator(0.1), WrongValuePolluter(0.1)]
        pipeline = PollutionPipeline(polluters)
        assert isinstance(pipeline.polluters[-1], Duplicator)

    def test_factor_scales_corruption(self, table):
        rng1, rng2 = random.Random(16), random.Random(16)
        low = PollutionPipeline(default_polluters(), factor=0.5)
        high = PollutionPipeline(default_polluters(), factor=3.0)
        _, log_low = low.apply(table, rng1)
        _, log_high = high.apply(table, rng2)
        assert log_high.n_cell_changes > log_low.n_cell_changes

    def test_factor_zero_is_identity(self, table):
        pipeline = PollutionPipeline(default_polluters(), factor=0.0)
        dirty, log = pipeline.apply(table, random.Random(17))
        assert dirty == table
        assert log.n_cell_changes == 0 and not log.row_events

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            PollutionPipeline([], factor=-1.0)

    def test_log_matches_tables_with_structural_changes(self, table):
        """Ground-truth invariant: for every non-duplicated dirty row, the
        logged cell changes are exactly the diff against the clean row."""
        pipeline = PollutionPipeline(default_polluters(), factor=2.0)
        dirty, log = pipeline.apply(table, random.Random(18))
        origin = log.row_origins
        assert origin is not None and len(origin) == dirty.n_rows
        net = log.net_cell_changes()
        for dirty_index, clean_index in enumerate(origin):
            if clean_index is None:
                continue  # inserted duplicate: compared via its source instead
            logged = {attr for (row, attr) in net if row == dirty_index}
            actual = {
                name
                for name in table.schema.names
                if table.cell(clean_index, name) != dirty.cell(dirty_index, name)
            }
            assert logged == actual, f"row {dirty_index}: {logged} != {actual}"


class TestPollutionOfGeneratedData:
    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 1000))
    def test_end_to_end_ground_truth(self, seed):
        profile = base_profile(n_rules=10, seed=42)
        generator = profile.build_generator()
        clean = generator.generate(80, random.Random(seed))
        pipeline = PollutionPipeline(default_polluters(), factor=1.5)
        dirty, log = pipeline.apply(clean, random.Random(seed + 1))
        origin = log.row_origins
        assert origin is not None and len(origin) == dirty.n_rows
        net = log.net_cell_changes()
        for dirty_index, clean_index in enumerate(origin):
            if clean_index is None:
                continue
            logged = {attr for (row, attr) in net if row == dirty_index}
            actual = {
                name
                for name in clean.schema.names
                if clean.cell(clean_index, name) != dirty.cell(dirty_index, name)
            }
            assert logged == actual
