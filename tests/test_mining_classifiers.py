"""Tests for the alternative classifiers (naive Bayes, kNN, 1R, PRISM)."""

import random

import numpy as np
import pytest

from repro.mining import (
    Dataset,
    KnnClassifier,
    NaiveBayesClassifier,
    OneRClassifier,
    PrismClassifier,
)
from repro.schema import Schema, Table, nominal, numeric


def _dependency_table(n=1200, noise=0.03, seed=11):
    rng = random.Random(seed)
    rule = {"a": "x", "b": "y", "c": "z"}
    rows = []
    for _ in range(n):
        a = rng.choice(["a", "b", "c"])
        b = rule[a] if rng.random() > noise else rng.choice(["x", "y", "z"])
        rows.append([a, b, rng.randint(0, 100)])
    schema = Schema(
        [
            nominal("A", ["a", "b", "c"]),
            nominal("B", ["x", "y", "z"]),
            numeric("N", 0, 100, integer=True),
        ]
    )
    return Table(schema, rows)


@pytest.fixture
def dataset():
    return Dataset(_dependency_table(), "B", ["A", "N"])


ALL_CLASSIFIERS = [
    lambda: NaiveBayesClassifier(),
    lambda: KnnClassifier(k=7),
    lambda: OneRClassifier(),
    lambda: PrismClassifier(),
]


@pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
class TestCommonBehaviour:
    def test_learns_dependency(self, factory, dataset):
        classifier = factory()
        classifier.fit(dataset)
        for a, expected in [("a", "x"), ("b", "y"), ("c", "z")]:
            prediction = classifier.predict({"A": a, "B": None, "N": 50})
            assert prediction.predicted_label == expected

    def test_distribution_sums_to_one(self, factory, dataset):
        classifier = factory()
        classifier.fit(dataset)
        prediction = classifier.predict({"A": "a", "B": None, "N": 50})
        assert prediction.probabilities.sum() == pytest.approx(1.0)
        assert (prediction.probabilities >= 0).all()

    def test_support_positive(self, factory, dataset):
        classifier = factory()
        classifier.fit(dataset)
        prediction = classifier.predict({"A": "a", "B": None, "N": 50})
        assert prediction.n > 0

    def test_missing_base_values_tolerated(self, factory, dataset):
        classifier = factory()
        classifier.fit(dataset)
        prediction = classifier.predict({"A": None, "B": None, "N": None})
        assert prediction.probabilities.sum() == pytest.approx(1.0)

    def test_unfitted_raises(self, factory):
        with pytest.raises(RuntimeError):
            factory().predict({"A": "a", "B": None, "N": 1})


class TestNaiveBayes:
    def test_priors_reflect_class_frequencies(self, dataset):
        classifier = NaiveBayesClassifier()
        classifier.fit(dataset)
        prediction = classifier.predict({"A": None, "B": None, "N": None})
        # with everything missing the posterior equals the prior
        top_label = prediction.predicted_label
        counts = np.bincount(dataset.y, minlength=dataset.n_labels)
        assert dataset.class_encoder.labels[int(np.argmax(counts))] == top_label

    def test_support_is_training_size(self, dataset):
        classifier = NaiveBayesClassifier()
        classifier.fit(dataset)
        assert classifier.predict({"A": "a", "B": None, "N": 5}).n == dataset.n_rows

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NaiveBayesClassifier(smoothing=0)
        with pytest.raises(ValueError):
            NaiveBayesClassifier(n_bins=1)


class TestKnn:
    def test_support_is_k(self, dataset):
        classifier = KnnClassifier(k=9)
        classifier.fit(dataset)
        assert classifier.predict({"A": "a", "B": None, "N": 5}).n == 9

    def test_subsampling(self, dataset):
        classifier = KnnClassifier(k=3, max_training=100)
        classifier.fit(dataset)
        assert classifier._y.size == 100

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KnnClassifier(k=0)
        with pytest.raises(ValueError):
            KnnClassifier(max_training=0)


class TestOneR:
    def test_picks_informative_attribute(self, dataset):
        classifier = OneRClassifier()
        classifier.fit(dataset)
        assert classifier.attribute == "A"

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            OneRClassifier(n_bins=1)


class TestPrism:
    def test_builds_rules(self, dataset):
        classifier = PrismClassifier()
        classifier.fit(dataset)
        assert len(classifier.rules) > 0
        # rules for the dominant dependency exist
        targets = {rule.target_code for rule in classifier.rules}
        assert len(targets) >= 3

    def test_min_coverage_respected(self, dataset):
        classifier = PrismClassifier(min_coverage=10)
        classifier.fit(dataset)
        assert all(rule.n >= 10 for rule in classifier.rules)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PrismClassifier(min_coverage=0)
