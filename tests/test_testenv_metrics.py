"""Tests for the sec.-4.3 performance measures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.findings import AuditReport, Finding
from repro.pollution import PollutionLog
from repro.schema import Schema, Table, nominal
from repro.testenv import ConfusionMatrix, CorrectionMatrix, evaluate_audit


class TestConfusionMatrix:
    def test_perfect_tool(self):
        m = ConfusionMatrix(true_positive=10, false_negative=0, false_positive=0, true_negative=90)
        assert m.sensitivity == 1.0
        assert m.specificity == 1.0
        assert m.precision == 1.0
        assert m.accuracy == 1.0

    def test_blind_tool(self):
        m = ConfusionMatrix(true_positive=0, false_negative=10, false_positive=0, true_negative=90)
        assert m.sensitivity == 0.0
        assert m.specificity == 1.0

    def test_partial(self):
        m = ConfusionMatrix(true_positive=3, false_negative=7, false_positive=1, true_negative=89)
        assert m.sensitivity == pytest.approx(0.3)
        assert m.specificity == pytest.approx(89 / 90)
        assert m.precision == pytest.approx(0.75)
        assert m.prevalence == pytest.approx(0.1)
        assert m.recall == m.sensitivity

    def test_empty_denominators(self):
        m = ConfusionMatrix(0, 0, 0, 0)
        assert m.sensitivity == 0.0
        assert m.specificity == 1.0
        assert m.precision == 1.0

    def test_table_layout(self):
        m = ConfusionMatrix(1, 2, 3, 4)
        text = m.to_table()
        assert "tool's opinion" in text
        assert "incorrect data" in text

    @given(st.integers(0, 1000), st.integers(0, 1000), st.integers(0, 1000), st.integers(0, 1000))
    def test_measures_in_unit_interval(self, tp, fn, fp, tn):
        m = ConfusionMatrix(tp, fn, fp, tn)
        for value in (m.sensitivity, m.specificity, m.precision, m.accuracy, m.prevalence):
            assert 0.0 <= value <= 1.0


class TestCorrectionMatrix:
    def test_paper_formula(self):
        # quality = ((c+d) − (b+d)) / (c+d)
        m = CorrectionMatrix(a=80, b=2, c=15, d=3)
        assert m.errors_before == 18
        assert m.errors_after == 5
        assert m.quality == pytest.approx((18 - 5) / 18)

    def test_degradation_is_negative(self):
        m = CorrectionMatrix(a=90, b=8, c=1, d=1)
        assert m.quality < 0

    def test_nothing_to_correct(self):
        assert CorrectionMatrix(a=100, b=0, c=0, d=0).quality == 0.0

    def test_perfect_correction(self):
        assert CorrectionMatrix(a=90, b=0, c=10, d=0).quality == 1.0

    def test_table_layout(self):
        assert "after correction" in CorrectionMatrix(1, 2, 3, 4).to_table()


class TestEvaluateAudit:
    @pytest.fixture
    def setting(self):
        schema = Schema([nominal("A", ["a", "b"]), nominal("B", ["x", "y"])])
        clean = Table(schema, [["a", "x"], ["a", "x"], ["b", "y"], ["b", "y"]])
        dirty = clean.copy()
        log = PollutionLog(clean.n_rows)
        # corrupt rows 1 and 3
        dirty.set_cell(1, "B", "y")
        log.record_cell(1, "B", "x", "y", "test")
        dirty.set_cell(3, "A", "a")
        log.record_cell(3, "A", "b", "a", "test")
        return schema, clean, dirty, log

    def _report(self, findings, n_rows=4, min_conf=0.8):
        confidence = [0.0] * n_rows
        for finding in findings:
            confidence[finding.row] = max(confidence[finding.row], finding.confidence)
        return AuditReport(n_rows, findings, confidence, min_conf)

    def test_exact_detection(self, setting):
        schema, clean, dirty, log = setting
        findings = [
            Finding(1, "B", "y", "y", "x", 0.9, 100, "x"),
            Finding(3, "A", "a", "a", "b", 0.85, 100, "b"),
        ]
        result = evaluate_audit(self._report(findings), log, clean, dirty)
        assert result.records.true_positive == 2
        assert result.records.false_positive == 0
        assert result.records.false_negative == 0
        assert result.sensitivity == 1.0 and result.specificity == 1.0
        assert result.cells.true_positive == 2

    def test_false_positive_counted(self, setting):
        schema, clean, dirty, log = setting
        findings = [Finding(0, "A", "a", "a", "b", 0.9, 100, "b")]
        result = evaluate_audit(self._report(findings), log, clean, dirty)
        assert result.records.false_positive == 1
        assert result.records.false_negative == 2
        assert result.sensitivity == 0.0

    def test_correction_quality_positive_when_fixed(self, setting):
        schema, clean, dirty, log = setting
        findings = [Finding(1, "B", "y", "y", "x", 0.9, 100, "x")]
        result = evaluate_audit(self._report(findings), log, clean, dirty)
        # one of two corrupted cells repaired
        assert result.correction.c == 1
        assert result.correction.d == 1
        assert result.correction_quality == pytest.approx(0.5)

    def test_wrong_correction_degrades(self, setting):
        schema, clean, dirty, log = setting
        # flag a clean row and "correct" it wrongly
        findings = [Finding(0, "B", "x", "x", "y", 0.9, 100, "y")]
        result = evaluate_audit(self._report(findings), log, clean, dirty)
        assert result.correction.b == 1
        assert result.correction_quality < 0

    def test_cell_level_attribution(self, setting):
        schema, clean, dirty, log = setting
        # right row, wrong attribute: record-level TP but cell-level FP+FN
        findings = [Finding(1, "A", "a", "a", "b", 0.9, 100, "b")]
        result = evaluate_audit(self._report(findings), log, clean, dirty)
        assert result.records.true_positive == 1
        assert result.cells.true_positive == 0
        assert result.cells.false_positive == 1
