#!/usr/bin/env python3
"""In-database auditing: push the deviation check into the warehouse.

The companion to ``warehouse_loading.py``: same offline/online split
(paper sec. 2.2), but instead of extracting the staged load and checking
it in Python, the online job compiles the fitted structure model to SQL
(:mod:`repro.compile`) and screens the staging table **inside SQLite**.
Only the handful of rows the screens cannot certify clean come back to
Python for the exact confidence computation — the ranked findings are
byte-identical to the in-memory audit, while the database ships a
fraction of the cells (the compilation contract, per-family SQL shapes
and all, lives in ``docs/sql_compilation.md``).

Run with:  python examples/sql_pushdown.py
"""

import sqlite3
import tempfile
import time
from pathlib import Path

from repro import AuditorConfig, AuditSession, write_table
from repro.compile import compilation_plan
from repro.quis import generate_clean_quis, generate_quis_sample

import random


def offline_structure_induction(model_path: Path) -> AuditSession:
    """Nightly job: induce and persist the structure model."""
    print("=== offline: structure induction on warehouse history ===")
    sample = generate_quis_sample(20_000, seed=11, error_rate=0.002)
    session = AuditSession(sample.schema, AuditorConfig(min_error_confidence=0.9))
    session.fit(sample.dirty)
    session.save(model_path)
    print(f"  structure model persisted to {model_path.name}")
    return session


def online_in_database_check(model_path: Path, warehouse_path: Path) -> None:
    """Load-time job: screen the staging table without extracting it."""
    print("\n=== online: deviation screens compiled into the warehouse ===")
    session = AuditSession.load(model_path)

    # an incoming load lands in the staging table, errors included
    rng = random.Random(99)
    batch = generate_clean_quis(2_000, rng)
    batch.set_cell(17, "GBM", "936")        # engine code inconsistent with series
    batch.set_cell(303, "HUBRAUM", 15900)   # displacement out of band
    batch.set_cell(1500, "WERK", None)      # lost plant code
    staging = f"sqlite:///{warehouse_path}?table=incoming_load"
    write_table(batch, staging)
    print(f"  load staged in {staging}")

    # the model compiles: one screening query per audited attribute
    plan = compilation_plan(session.auditor)
    print(f"  model compiled to SQL: {len(plan.statements)} screening "
          f"queries ({plan.dialect.name} dialect)")
    with sqlite3.connect(warehouse_path) as connection:
        shipped = 0
        for statement in plan.statements:
            (count,) = connection.execute(
                "SELECT COUNT(*) FROM ({})".format(
                    statement.sql('"incoming_load"')
                ),
                statement.params,
            ).fetchone()
            shipped += count
    total = batch.n_rows * len(batch.schema)
    print(f"  screens return {shipped} candidate rows — the database "
          f"ships {shipped / total:.1%} of the {total} cells an extract "
          f"would move")

    # engine="sql": the audit runs in-database, one whole-table report
    started = time.perf_counter()
    (report,) = session.audit_source(staging, engine="sql")
    elapsed = time.perf_counter() - started
    print(f"  in-database audit of {report.n_rows} records in "
          f"{elapsed * 1000:.0f} ms: {report.n_suspicious} quarantined")

    # the contract: byte-identical to the in-memory engine
    (memory_report,) = session.audit_source(staging, engine="memory")
    assert report.findings == memory_report.findings
    print("  findings byte-identical to the in-memory audit")

    for row in sorted(report.suspicious_rows()):
        best = report.findings_for_row(row)[0]
        print(f"    row {row:>5} {best.attribute}: observed "
              f"{best.observed_value!r}, expected {best.predicted_label} "
              f"({best.confidence:.1%})")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        model_path = Path(tmp) / "quis_structure_model.json"
        warehouse_path = Path(tmp) / "warehouse.db"
        offline_structure_induction(model_path)
        online_in_database_check(model_path, warehouse_path)


if __name__ == "__main__":
    main()
