"""Mining substrate (paper sec. 5): confidence-interval bounds,
equal-frequency discretization, dataset encoding, the auditing-adjusted
C4.5 decision tree, and the alternative classifiers evaluated for the
QUIS domain."""

from repro.mining.base import (
    ArrayRowView,
    AttributeClassifier,
    BatchPrediction,
    Prediction,
)
from repro.mining.confidence import (
    error_confidence,
    error_confidence_batch,
    error_confidence_from_counts,
    expected_error_confidence,
    min_instances_for_confidence,
)
from repro.mining.dataset import (
    NULL_LABEL,
    UNKNOWN_LABEL,
    BaseEncoder,
    ClassEncoder,
    Dataset,
)
from repro.mining.discretize import EqualFrequencyDiscretizer
from repro.mining.intervals import (
    ConfidenceBounds,
    IntervalMethod,
    clopper_pearson_lower,
    clopper_pearson_upper,
    normal_quantile,
    wilson_lower,
    wilson_upper,
)
from repro.mining.knn import KnnClassifier
from repro.mining.naive_bayes import NaiveBayesClassifier
from repro.mining.rule_induction import OneRClassifier, PrismClassifier, PrismRule
from repro.mining.tree import (
    Leaf,
    Node,
    NominalSplit,
    NumericSplit,
    PruningStrategy,
    TreeConfig,
    TreeRule,
    extract_rules,
    grow_tree,
    predict_distribution,
    prune_pessimistic,
)
from repro.mining.tree_classifier import TreeClassifier

__all__ = [
    "ConfidenceBounds",
    "IntervalMethod",
    "wilson_lower",
    "wilson_upper",
    "clopper_pearson_lower",
    "clopper_pearson_upper",
    "normal_quantile",
    "error_confidence",
    "error_confidence_batch",
    "error_confidence_from_counts",
    "expected_error_confidence",
    "min_instances_for_confidence",
    "EqualFrequencyDiscretizer",
    "Dataset",
    "BaseEncoder",
    "ClassEncoder",
    "NULL_LABEL",
    "UNKNOWN_LABEL",
    "AttributeClassifier",
    "Prediction",
    "BatchPrediction",
    "ArrayRowView",
    "TreeClassifier",
    "TreeConfig",
    "PruningStrategy",
    "TreeRule",
    "Node",
    "Leaf",
    "NominalSplit",
    "NumericSplit",
    "grow_tree",
    "extract_rules",
    "predict_distribution",
    "prune_pessimistic",
    "NaiveBayesClassifier",
    "KnnClassifier",
    "OneRClassifier",
    "PrismClassifier",
    "PrismRule",
]
