"""The streaming auditing facade for the warehouse-loading scenario.

Sec. 2.2: *"Both tasks can run asynchronously. This is useful for an
application in the data cleansing phase during warehouse loading: While
the time-consuming structure induction can be prepared off-line, new data
can be checked for deviations and loaded quickly."*

:class:`AuditSession` models that offline-fit / online-check split as a
first-class API on top of :class:`~repro.core.auditor.DataAuditor`:

* :meth:`AuditSession.fit` — the offline structure induction;
* :meth:`AuditSession.save` / :meth:`AuditSession.load` — the persisted
  hand-over between the offline and online jobs;
* :meth:`AuditSession.audit` — whole-table deviation detection (the
  batch-vectorized hot path);
* :meth:`AuditSession.audit_chunks` / :meth:`AuditSession.audit_csv_stream`
  — incremental checking of an unbounded load: each chunk yields an
  :class:`~repro.core.findings.AuditReport` immediately (quarantine
  decisions don't wait for the full load), and
  :meth:`AuditReport.merge <repro.core.findings.AuditReport.merge>`
  recovers the exact whole-table report afterwards. Peak memory is
  bounded by the chunk size, not the stream length.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro.core.auditor import AuditorConfig, DataAuditor
from repro.core.findings import AuditReport
from repro.schema.io import read_csv_chunks
from repro.schema.schema import Schema
from repro.schema.table import Table

__all__ = ["AuditSession"]


class AuditSession:
    """Fit-once, audit-many facade over a :class:`DataAuditor`.

    Construct from a schema (optionally with an :class:`AuditorConfig`),
    from an already-built auditor (``AuditSession(auditor=...)``), or from
    a persisted model (:meth:`load`).
    """

    def __init__(
        self,
        schema: Optional[Schema] = None,
        config: Optional[AuditorConfig] = None,
        *,
        auditor: Optional[DataAuditor] = None,
    ):
        if auditor is not None:
            if schema is not None and schema != auditor.schema:
                raise ValueError("schema does not match the given auditor's schema")
            if config is not None:
                raise ValueError("pass config via the auditor when auditor is given")
            self.auditor = auditor
        else:
            if schema is None:
                raise ValueError("either schema or auditor is required")
            self.auditor = DataAuditor(schema, config)

    # -- delegated state ---------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self.auditor.schema

    @property
    def config(self) -> AuditorConfig:
        return self.auditor.config

    @property
    def is_fitted(self) -> bool:
        return bool(self.auditor.classifiers)

    # -- offline: structure induction --------------------------------------

    def fit(self, table: Table) -> "AuditSession":
        """Induce the structure model (sec. 5; may run offline)."""
        self.auditor.fit(table)
        return self

    def save(self, path: Union[str, Path]) -> None:
        """Persist the fitted structure model for the online job."""
        from repro.core.serialize import save_auditor

        save_auditor(self.auditor, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "AuditSession":
        """Resume a session from a persisted structure model."""
        from repro.core.serialize import load_auditor

        return cls(auditor=load_auditor(path))

    # -- online: deviation detection ----------------------------------------

    def audit(self, table: Table) -> AuditReport:
        """Check one whole table (the batch-vectorized path)."""
        return self.auditor.audit(table)

    def audit_chunks(self, chunks: Iterable[Table]) -> Iterator[AuditReport]:
        """Check an iterable of table chunks, yielding one incremental
        report per chunk.

        Row indices in the yielded reports are **stream-global** (the
        position of the record across all chunks so far), so the reports
        both attribute findings to their source records and concatenate
        losslessly:
        ``AuditReport.merge(session.audit_chunks(chunks))`` equals the
        whole-table audit of the concatenated chunks, finding for finding.
        Chunks are consumed lazily — nothing is pulled from the iterable
        before the previous chunk's report has been yielded.
        """
        offset = 0
        for chunk in chunks:
            yield self.auditor.audit(chunk).with_row_offset(offset)
            offset += chunk.n_rows

    def audit_csv_stream(
        self,
        source,
        *,
        chunk_size: int = 8192,
        null_marker: str = "",
    ) -> Iterator[AuditReport]:
        """Check a CSV file (path or text stream) chunk by chunk.

        Peak memory is bounded by *chunk_size*, independent of the file's
        row count; see :meth:`audit_chunks` for the report semantics.
        """
        yield from self.audit_chunks(
            read_csv_chunks(
                self.schema, source, chunk_size=chunk_size, null_marker=null_marker
            )
        )

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"AuditSession({len(self.schema)} attributes, {state})"
