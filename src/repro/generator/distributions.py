"""Parameterizable start distributions for the test-data generator.

Sec. 4.1.4: *"This is done by selecting values for each attribute according
to independent probability distributions […] Our system offers uniform,
normal and exponential distributions that can be parameterized by the
user."*

A :class:`Distribution` draws one value for one attribute. For ordered
attributes (numeric, date) the shaped distributions act on the numeric
view; for nominal attributes they act on the value *index*, which lets a
user skew categorical frequencies with the same parameter vocabulary the
paper offers. :class:`Categorical` gives explicit per-value weights, and
:class:`NullMixture` mixes null values into any base distribution.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Mapping, Optional

from repro.schema.attribute import Attribute
from repro.schema.domain import DateDomain, NominalDomain, NumericDomain
from repro.schema.types import Value

__all__ = [
    "Distribution",
    "Uniform",
    "Normal",
    "Exponential",
    "Categorical",
    "NullMixture",
]

_MAX_REJECTION_TRIES = 128


class Distribution(ABC):
    """A per-attribute value distribution."""

    @abstractmethod
    def sample(self, attribute: Attribute, rng: random.Random) -> Value:
        """Draw one value admissible for *attribute* (never null unless
        wrapped in :class:`NullMixture`)."""


class Uniform(Distribution):
    """Uniform over the whole attribute domain."""

    def sample(self, attribute: Attribute, rng: random.Random) -> Value:
        return attribute.domain.sample_uniform(rng)

    def __repr__(self) -> str:
        return "Uniform()"


def _domain_span(attribute: Attribute) -> tuple[float, float]:
    domain = attribute.domain
    if isinstance(domain, NominalDomain):
        return 0.0, float(domain.size - 1)
    if isinstance(domain, NumericDomain):
        return float(domain.low), float(domain.high)
    if isinstance(domain, DateDomain):
        return float(domain.start.toordinal()), float(domain.end.toordinal())
    raise TypeError(f"unsupported domain type: {type(domain).__name__}")


def _from_view(attribute: Attribute, number: float) -> Value:
    return attribute.domain.from_number(number)


class Normal(Distribution):
    """Truncated normal over the numeric view (value index for nominals).

    ``mean`` / ``stddev`` are expressed as *fractions of the domain span*
    (mean defaults to the center, stddev to one sixth of the span), so the
    same distribution object can parameterize attributes with very
    different ranges — convenient when profiles assign "a normal
    distribution" to several attributes, as the paper's base configuration
    does.
    """

    def __init__(self, mean_fraction: float = 0.5, stddev_fraction: float = 1.0 / 6.0):
        if stddev_fraction <= 0:
            raise ValueError("stddev_fraction must be positive")
        self.mean_fraction = mean_fraction
        self.stddev_fraction = stddev_fraction

    def sample(self, attribute: Attribute, rng: random.Random) -> Value:
        low, high = _domain_span(attribute)
        span = high - low
        if span <= 0:
            return _from_view(attribute, low)
        mean = low + self.mean_fraction * span
        stddev = self.stddev_fraction * span
        for _ in range(_MAX_REJECTION_TRIES):
            draw = rng.gauss(mean, stddev)
            if low <= draw <= high:
                return _from_view(attribute, draw)
        return _from_view(attribute, min(max(mean, low), high))

    def __repr__(self) -> str:
        return f"Normal(mean_fraction={self.mean_fraction}, stddev_fraction={self.stddev_fraction})"


class Exponential(Distribution):
    """Truncated exponential decay from the low end of the domain.

    ``scale_fraction`` is the mean of the exponential as a fraction of the
    domain span; small values concentrate mass near the domain minimum
    (or near the first nominal values). ``descending=False`` mirrors the
    decay to start from the high end.
    """

    def __init__(self, scale_fraction: float = 0.25, *, descending: bool = True):
        if scale_fraction <= 0:
            raise ValueError("scale_fraction must be positive")
        self.scale_fraction = scale_fraction
        self.descending = descending

    def sample(self, attribute: Attribute, rng: random.Random) -> Value:
        low, high = _domain_span(attribute)
        span = high - low
        if span <= 0:
            return _from_view(attribute, low)
        scale = self.scale_fraction * span
        for _ in range(_MAX_REJECTION_TRIES):
            draw = rng.expovariate(1.0 / scale)
            if draw <= span:
                number = (low + draw) if self.descending else (high - draw)
                return _from_view(attribute, number)
        return _from_view(attribute, low if self.descending else high)

    def __repr__(self) -> str:
        direction = "descending" if self.descending else "ascending"
        return f"Exponential(scale_fraction={self.scale_fraction}, {direction})"


class Categorical(Distribution):
    """Explicit per-value weights for a nominal attribute.

    Values missing from *weights* get weight 0. Weights need not be
    normalized.
    """

    def __init__(self, weights: Mapping[str, float]):
        if not weights:
            raise ValueError("weights must not be empty")
        for value, weight in weights.items():
            if weight < 0:
                raise ValueError(f"negative weight for {value!r}")
        if not any(w > 0 for w in weights.values()):
            raise ValueError("at least one weight must be positive")
        self.weights = dict(weights)

    def sample(self, attribute: Attribute, rng: random.Random) -> Value:
        domain = attribute.domain
        if not isinstance(domain, NominalDomain):
            raise TypeError(
                f"Categorical distribution needs a nominal attribute, "
                f"got {attribute.kind.value} attribute {attribute.name!r}"
            )
        values = [v for v in domain.values if self.weights.get(v, 0.0) > 0]
        if not values:
            raise ValueError(
                f"no positive-weight value of {attribute.name!r} lies in its domain"
            )
        cumulative = []
        total = 0.0
        for value in values:
            total += self.weights[value]
            cumulative.append(total)
        pick = rng.uniform(0.0, total)
        for value, bound in zip(values, cumulative):
            if pick <= bound:
                return value
        return values[-1]

    def __repr__(self) -> str:
        return f"Categorical({self.weights!r})"


class NullMixture(Distribution):
    """Wraps a base distribution and emits null with fixed probability."""

    def __init__(self, base: Distribution, null_probability: float):
        if not 0.0 <= null_probability <= 1.0:
            raise ValueError("null_probability must lie in [0, 1]")
        self.base = base
        self.null_probability = null_probability

    def sample(self, attribute: Attribute, rng: random.Random) -> Optional[Value]:
        if not attribute.nullable:
            return self.base.sample(attribute, rng)
        if rng.random() < self.null_probability:
            return None
        return self.base.sample(attribute, rng)

    def __repr__(self) -> str:
        return f"NullMixture({self.base!r}, {self.null_probability})"
