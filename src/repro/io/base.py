"""The table I/O protocols: :class:`TableSource` and :class:`TableSink`.

The paper embeds auditing in the warehouse loading process (sec. 2.2), so
the auditor must speak the warehouse's own formats instead of forcing a
lossy CSV export. Every storage backend implements the same two small
protocols:

* :class:`TableSource` — *open → schema → iterate chunks of* :class:`Table`.
  A source is bound to a :class:`~repro.schema.schema.Schema` at open
  time (reads are schema-driven: the schema decides how each raw cell is
  coerced, so round trips are loss-free for admissible tables) and is
  consumed **once**, either whole (:meth:`TableSource.read`) or as a
  bounded-memory stream (:meth:`TableSource.chunks`) — the substrate for
  :meth:`AuditSession.audit_source
  <repro.core.session.AuditSession.audit_source>`.
* :class:`TableSink` — *write header → write chunks → close*. Chunks may
  arrive incrementally (a streaming audit's findings, a generator's
  output); the header (CSV header row, ``CREATE TABLE``, Parquet file
  schema) is written exactly once, lazily before the first chunk, and
  closing an empty sink still produces a valid empty container.

Both are context managers; ``with`` guarantees file handles and database
connections are released (and, for sinks, that the header exists and
buffers are flushed) even on error paths.

Concrete backends live in :mod:`repro.io` siblings and are looked up
through the format registry (:mod:`repro.io.registry`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import islice
from pathlib import Path
from typing import Iterator, Optional, TextIO, Union

from repro.io.columnar import ColumnBatch
from repro.schema.schema import Schema
from repro.schema.table import Table
from repro.schema.types import Value

__all__ = ["DEFAULT_CHUNK_SIZE", "TableSource", "TableSink", "open_text"]

#: Default rows per chunk for chunked reads — matches the historical
#: ``read_csv_chunks`` / ``AuditSession.audit_csv_stream`` default.
DEFAULT_CHUNK_SIZE = 8192


def open_text(
    target: Union[str, Path, TextIO], mode: str, *, newline: Optional[str] = None
) -> tuple[TextIO, bool]:
    """Open *target* if it is a path; pass streams through unowned.

    Returns ``(handle, owns_handle)`` — text-backed backends close only
    the handles they opened themselves, so caller-provided streams
    (``StringIO``, ``sys.stdout``) survive the source/sink lifecycle.
    """
    if isinstance(target, (str, Path)):
        return open(target, mode, newline=newline, encoding="utf-8"), True
    return target, False


class TableSource(ABC):
    """A single-pass, schema-driven reader of one stored table.

    Subclasses open their storage in ``__init__`` (so open errors surface
    at construction, where the location is known) and implement
    :meth:`_iter_rows`, yielding schema-ordered cell lists. The base
    class turns that row stream into whole tables or bounded chunks.

    Sources may additionally stream :class:`~repro.io.columnar.ColumnBatch`
    objects (:meth:`column_batches` / :meth:`read_columns`). The base
    implementation pivots row chunks; backends that build batches
    natively during their single storage pass override
    :meth:`_iter_column_batches` and set :attr:`supports_columns`, which
    is what ``io_path="auto"`` negotiation consults
    (:func:`~repro.io.columnar.resolve_io_path`).
    """

    #: True when :meth:`_iter_column_batches` builds batches natively
    #: (no row-chunk pivot) — the ``io_path="auto"`` negotiation signal.
    supports_columns: bool = False

    def __init__(self, schema: Schema):
        self.schema = schema

    # -- backend contract ---------------------------------------------------

    @abstractmethod
    def _iter_rows(self) -> Iterator[list[Value]]:
        """Yield one schema-ordered cell list per stored row."""

    def _iter_column_batches(self, batch_size: int) -> Iterator[ColumnBatch]:
        """Yield :class:`ColumnBatch` chunks of at most *batch_size* rows.

        The default pivots row chunks — correct for any backend; natively
        columnar backends override it to convert column-at-a-time off
        their own raw buffers.
        """
        for chunk in self.chunks(batch_size):
            yield ColumnBatch.from_table(chunk)

    def close(self) -> None:
        """Release the underlying handle (idempotent)."""

    # -- consumption --------------------------------------------------------

    def read(self, *, validate: bool = False) -> Table:
        """Materialize the whole source as one :class:`Table`."""
        table = Table(self.schema)
        table.rows.extend(self._iter_rows())
        if validate:
            table.validate()
        return table

    def chunks(
        self, chunk_size: int = DEFAULT_CHUNK_SIZE, *, validate: bool = False
    ) -> Iterator[Table]:
        """Stream the source as tables of at most *chunk_size* rows.

        Rows are pulled lazily, so peak memory is bounded by the chunk
        size rather than the stored row count. A source holding a valid
        header but no rows yields no chunks.

        Each chunk adopts its row batch in place (:meth:`Table.adopt
        <repro.schema.table.Table.adopt>`) — no per-row copy, no
        re-created table shell — and the row validator is resolved once
        for the whole stream; chunked and whole-table reads are
        byte-identical (pinned by the columnar I/O suite).
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        rows_iter = self._iter_rows()
        validate_row = self.schema.validate_row if validate else None
        while True:
            rows = list(islice(rows_iter, chunk_size))
            if not rows:
                return
            if validate_row is not None:
                for i, row in enumerate(rows):
                    try:
                        validate_row(row)
                    except ValueError as exc:
                        raise ValueError(f"row {i}: {exc}") from None
            yield Table.adopt(self.schema, rows)

    def column_batches(
        self, chunk_size: int = DEFAULT_CHUNK_SIZE, *, validate: bool = False
    ) -> Iterator[ColumnBatch]:
        """Stream the source as :class:`~repro.io.columnar.ColumnBatch`
        chunks of at most *chunk_size* rows — the columnar twin of
        :meth:`chunks`, with the same bounded-memory guarantee, the same
        batch boundaries, and byte-identical cell values and errors
        (pinned by the columnar parity suite)."""
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        for batch in self._iter_column_batches(chunk_size):
            if validate:
                batch.validate()
            yield batch

    def read_columns(self, *, validate: bool = False) -> ColumnBatch:
        """Materialize the whole source as one
        :class:`~repro.io.columnar.ColumnBatch` — the columnar twin of
        :meth:`read` (the fit path's whole-relation ingest)."""
        batch = ColumnBatch.concat(
            self.schema, self._iter_column_batches(DEFAULT_CHUNK_SIZE)
        )
        if validate:
            batch.validate()
        return batch

    # -- context management -------------------------------------------------

    def __enter__(self) -> "TableSource":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self.schema)} attributes)"


class TableSink(ABC):
    """A schema-bound, chunk-at-a-time writer of one stored table.

    Subclasses implement :meth:`_write_header` (written exactly once,
    before the first rows) and :meth:`_write_rows`. Closing via the
    context manager on the success path writes the header even when no
    chunk arrived, so an empty table still round-trips.
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self._header_written = False

    # -- backend contract ---------------------------------------------------

    @abstractmethod
    def _write_header(self) -> None:
        """Emit the one-time container header (CSV header row, DDL, …)."""

    @abstractmethod
    def _write_rows(self, rows: list[list[Value]]) -> None:
        """Append schema-ordered rows after the header."""

    def close(self) -> None:
        """Flush, finalize, and release the underlying handle (idempotent)."""

    def abort(self) -> None:
        """Release the handle WITHOUT finalizing — the error path.

        Transactional backends roll back (a failed replace-write must
        leave the pre-existing table untouched); container formats
        discard the unreadable partial file. The default just closes.
        """
        self.close()

    # -- writing ------------------------------------------------------------

    def write_header(self) -> None:
        """Ensure the header exists (no-op after the first call)."""
        if not self._header_written:
            self._write_header()
            self._header_written = True

    def write_chunk(self, table: Table) -> None:
        """Append one chunk; all chunks must share the sink's schema."""
        if table.schema != self.schema:
            raise ValueError(
                f"chunk schema {list(table.schema.names)!r} does not match "
                f"sink schema {list(self.schema.names)!r}"
            )
        self.write_header()
        self._write_rows(table.rows)

    def write(self, table: Table) -> None:
        """Write a whole table (header + one chunk)."""
        self.write_chunk(table)

    # -- context management -------------------------------------------------

    def __enter__(self) -> "TableSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            try:
                self.write_header()
            except BaseException:
                self.abort()  # a failing header must not leak the handle
                raise
            self.close()
        else:
            self.abort()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self.schema)} attributes)"
