"""The audit daemon's HTTP transport: stdlib only, long-running.

``repro serve`` boots a :class:`http.server.ThreadingHTTPServer` — one
thread per in-flight request, so a slow audit never blocks ``/healthz``
— whose handler delegates every route to an
:class:`~repro.serve.service.AuditService`:

=======  ====================  ==============================================
method   path                  semantics
=======  ====================  ==============================================
GET      ``/healthz``          liveness + registry/model/request counters
GET      ``/models``           every registered name with tags and latest
GET      ``/models/{ref}``     one resolved version with full provenance
POST     ``/fit``              fit from a ``repro.io`` source, register
POST     ``/audit``            stream JSONL findings for a source or payload
GET      ``/monitors``         hosted continuous monitors + drift statistics
POST     ``/monitors``         start a continuous monitor on a growing source
=======  ====================  ==============================================

Audit responses stream with ``Transfer-Encoding: chunked`` (findings
leave the socket while later chunks are still being checked — the
summary travels ahead in ``X-Audit-*`` headers); everything else is a
fixed-length JSON document. Request logging goes through the
``repro.serve`` logger — one line per request with method, path,
status, and wall time. :func:`serve` runs until SIGTERM/SIGINT, then
shuts down gracefully: the listening socket closes, in-flight requests
finish, and the process exits 0 (130 for SIGINT, the CLI convention).
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Optional, Union
from urllib.parse import unquote, urlsplit

from repro.registry import ModelRegistry
from repro.serve.service import AuditService, ServiceError

__all__ = ["AuditRequestHandler", "make_server", "serve"]

logger = logging.getLogger("repro.serve")

_MAX_BODY_BYTES = 256 * 1024 * 1024  # refuse absurd payloads outright


class AuditRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the server's :class:`AuditService`."""

    protocol_version = "HTTP/1.1"  # keep-alive + chunked responses
    server_version = "repro-serve"

    # -- plumbing -----------------------------------------------------------

    @property
    def service(self) -> AuditService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        # BaseHTTPRequestHandler writes to stderr unconditionally; route
        # through the logger so operators control verbosity and sinks
        logger.info("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServiceError(400, "request body required (JSON object)")
        if length > _MAX_BODY_BYTES:
            raise ServiceError(413, f"request body exceeds {_MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ServiceError(400, "request body must be a JSON object")
        return payload

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        path = unquote(urlsplit(self.path).path).rstrip("/") or "/"
        status = 500
        try:
            status = self._route(method, path)
        except ServiceError as exc:
            status = exc.status
            self._send_error_json(exc.status, str(exc))
        except BrokenPipeError:
            # the client went away mid-response; nothing to send
            status = 499
            self.close_connection = True
        except Exception as exc:  # last resort: never kill the worker thread
            logger.exception("unhandled error for %s %s", method, path)
            try:
                self._send_error_json(500, f"internal error: {exc}")
            except OSError:
                self.close_connection = True
        finally:
            self.service.mark_request()
            logger.info(
                "%s %s -> %d (%.1f ms)",
                method,
                path,
                status,
                (time.perf_counter() - started) * 1000,
            )

    # -- routing ------------------------------------------------------------

    def _route(self, method: str, path: str) -> int:
        if method == "GET" and path == "/healthz":
            self._send_json(200, self.service.healthz())
            return 200
        if method == "GET" and path == "/models":
            self._send_json(200, self.service.list_models())
            return 200
        if method == "GET" and path.startswith("/models/"):
            ref = path[len("/models/") :]
            self._send_json(200, self.service.show_model(ref))
            return 200
        if method == "POST" and path == "/fit":
            self._send_json(201, self.service.fit(self._read_body()))
            return 201
        if method == "POST" and path == "/audit":
            summary, lines = self.service.audit(self._read_body())
            self._stream_jsonl(summary, lines)
            return 200
        if method == "GET" and path == "/monitors":
            self._send_json(200, self.service.list_monitors())
            return 200
        if method == "POST" and path == "/monitors":
            self._send_json(201, self.service.start_monitor(self._read_body()))
            return 201
        raise ServiceError(
            404,
            f"no route for {method} {path} (have GET /healthz, GET /models, "
            f"GET /models/{{ref}}, POST /fit, POST /audit, GET/POST /monitors)",
        )

    def _stream_jsonl(self, summary: dict[str, Any], lines) -> None:
        """Chunked-encoding JSONL response; summary rides in headers so
        the findings stream stays parseable line by line."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        for key, value in summary.items():
            self.send_header(f"X-Audit-{key.replace('_', '-').title()}", str(value))
        self.end_headers()
        for text in lines:
            data = text.encode("utf-8")
            if not data:
                continue  # a zero-length chunk would terminate the stream
            self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
            self.wfile.write(data)
            self.wfile.write(b"\r\n")
        self.wfile.write(b"0\r\n\r\n")

    # -- HTTP verbs ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")


def make_server(
    registry: Union[str, Path, ModelRegistry],
    host: str = "127.0.0.1",
    port: int = 8181,
    *,
    n_jobs: int = 1,
) -> ThreadingHTTPServer:
    """Build (but do not run) the daemon; ``port=0`` picks an ephemeral
    port — read the bound one from ``server.server_address``."""
    if not isinstance(registry, ModelRegistry):
        registry = ModelRegistry(registry)
    server = ThreadingHTTPServer((host, port), AuditRequestHandler)
    server.daemon_threads = True  # a hung client must not block shutdown
    server.service = AuditService(registry, n_jobs=n_jobs)  # type: ignore[attr-defined]
    return server


def serve(
    registry: Union[str, Path, ModelRegistry],
    host: str = "127.0.0.1",
    port: int = 8181,
    *,
    n_jobs: int = 1,
    server: Optional[ThreadingHTTPServer] = None,
) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns the exit code.

    SIGTERM drains gracefully and exits 0; SIGINT exits 130 (the shell
    convention for an interrupted foreground job). ``server=`` lets
    tests inject a pre-built (ephemeral-port) instance.
    """
    httpd = server if server is not None else make_server(
        registry, host, port, n_jobs=n_jobs
    )
    exit_code = 0

    def _shutdown(signum: int, frame) -> None:
        nonlocal exit_code
        exit_code = 130 if signum == signal.SIGINT else 0
        logger.info("received %s, shutting down", signal.Signals(signum).name)
        # shutdown() blocks until serve_forever() returns — calling it on
        # this (main) thread would deadlock, so hand it to a helper
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    previous = {
        signum: signal.signal(signum, _shutdown)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    bound_host, bound_port = httpd.server_address[:2]
    service: AuditService = httpd.service  # type: ignore[attr-defined]
    logger.info(
        "audit service listening on http://%s:%d (registry %s, %d models)",
        bound_host,
        bound_port,
        service.registry.root,
        len(service.registry.list()),
    )
    print(
        f"repro serve: listening on http://{bound_host}:{bound_port} "
        f"(registry {service.registry.root})",
        flush=True,
    )
    try:
        httpd.serve_forever()
    finally:
        httpd.server_close()
        service.stop_monitors()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        logger.info("audit service stopped")
    return exit_code
