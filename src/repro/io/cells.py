"""Schema-driven cell rendering and parsing shared by the backends.

One pair of primitives defines the loss-free text form of every cell —
the CSV backend uses both directions, the SQLite and JSONL backends
reuse the pieces that apply to them (date parsing, big-integer text
round-trips, the non-finite rejection):

* nominal — the raw string,
* numeric — ``str`` of an int / ``repr`` of a float (exact round trip),
* date — ISO format (``YYYY-MM-DD``),
* null — a configurable marker (default: empty field).

``nan`` / ``inf`` spellings are rejected here, at the parse site:
non-finite floats are not admissible cell values (no
:class:`~repro.schema.domain.NumericDomain` contains them), and
``float("nan")`` slipping through would only be caught much later, far
from the offending row. Backends wrap the :class:`ValueError` with the
row and attribute context (:func:`cell_context`).
"""

from __future__ import annotations

import datetime
import math

from repro.schema.types import AttributeKind, Value

__all__ = [
    "DEFAULT_NULL_MARKER",
    "render_cell",
    "parse_cell",
    "parse_number",
    "coerce_number",
    "check_finite",
    "cell_context",
]

DEFAULT_NULL_MARKER = ""


def render_cell(value: Value, kind: AttributeKind, null_marker: str = DEFAULT_NULL_MARKER) -> str:
    """Render one cell to its canonical text form."""
    if value is None:
        return null_marker
    if kind is AttributeKind.DATE:
        return value.isoformat()  # type: ignore[union-attr]
    if kind is AttributeKind.NUMERIC:
        if isinstance(value, int):
            return str(value)
        return repr(float(value))
    return str(value)


def check_finite(number: float, text: object = None) -> float:
    """Reject non-finite numerics with a :class:`ValueError` at the source."""
    if not math.isfinite(number):
        shown = number if text is None else text
        raise ValueError(
            f"non-finite numeric value {shown!r} "
            f"(nan/inf are not admissible cell values)"
        )
    return number


def parse_number(text: str, integer: bool) -> Value:
    """Parse the text form of a numeric cell (exact for ints of any size)."""
    if integer:
        return int(text)
    number = check_finite(float(text), text)
    if number.is_integer() and "." not in text and "e" not in text.lower():
        return int(text)
    return number


def coerce_number(value: float, integer: bool) -> Value:
    """Validate an already-typed numeric cell (SQLite/JSONL read side).

    Mirrors the strictness of :func:`parse_number`: non-finite floats are
    rejected everywhere, and a non-integral float can never belong to an
    integer domain (integral floats pass — the domain admits them).
    """
    if isinstance(value, float):
        check_finite(value)
        if integer and not value.is_integer():
            raise ValueError(
                f"expected an integer for an integer-domain cell, got {value!r}"
            )
    return value


def parse_cell(
    text: str, kind: AttributeKind, null_marker: str, integer: bool
) -> Value:
    """Inverse of :func:`render_cell`, schema-driven."""
    if text == null_marker:
        return None
    if kind is AttributeKind.NOMINAL:
        return text
    if kind is AttributeKind.DATE:
        return datetime.date.fromisoformat(text)
    return parse_number(text, integer)


def cell_context(row_label: str, attribute: str, exc: Exception) -> ValueError:
    """A :class:`ValueError` naming the offending row and attribute."""
    return ValueError(f"{row_label}, attribute {attribute!r}: {exc}")


def convert_row(row_label: str, raw_cells, converters, names) -> list:
    """Convert one row of raw cells, localizing failures.

    The happy path is a bare comprehension (no per-cell try/except
    cost); only when a cell fails is the row re-walked to name the
    offending attribute in the error. Shared by every backend's read
    side so cell errors look the same regardless of storage format.
    """
    try:
        return [convert(raw) for convert, raw in zip(converters, raw_cells)]
    except ValueError:
        for convert, raw, name in zip(converters, raw_cells, names):
            try:
                convert(raw)
            except ValueError as exc:
                raise cell_context(row_label, name, exc) from None
        raise  # pragma: no cover - comprehension failed, cells did not
