"""The long-running audit service (``repro serve``).

The step from tool to service (paper sec. 2.2's warehouse embedding,
run as a daemon): a stdlib-only HTTP API to fit, list, and audit
against named model versions stored in a
:class:`~repro.registry.ModelRegistry`. The request semantics live in
:class:`~repro.serve.service.AuditService` (transport-free, directly
embeddable); the HTTP daemon in :mod:`repro.serve.http`.
"""

from repro.serve.http import AuditRequestHandler, make_server, serve
from repro.serve.service import AuditService, ServiceError

__all__ = [
    "AuditService",
    "ServiceError",
    "AuditRequestHandler",
    "make_server",
    "serve",
]
