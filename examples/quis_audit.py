#!/usr/bin/env python3
"""The sec.-6.2 case study: auditing a QUIS engine-composition sample.

The real QUIS excerpt (8 attributes, ~200 000 records) is proprietary;
``repro.quis`` simulates its statistical shape, including the paper's two
example dependencies with matching supports. This script reproduces the
narrative of sec. 6.2:

* run the error detection process over the sample,
* rank suspicious records by error confidence,
* show the ``BRV = 404 → GBM = 901`` deviation (the paper's top-ranked
  record at 99.95 % confidence) with its induced rule and support,
* report the wall-clock of the detection run (the paper: "about 21
  minutes on an Athlon 900 MHz" for 200 k records).

Run with:  python examples/quis_audit.py [n_records]
"""

import sys
import time

from repro import AuditorConfig, AuditSession
from repro.quis import generate_quis_sample


def main(n_records: int = 50_000) -> None:
    print(f"simulating a QUIS engine-composition sample ({n_records} records) …")
    sample = generate_quis_sample(n_records, seed=2003)
    print(f"  seeded corruption: {sample.log.n_cell_changes} cells "
          f"in {len(sample.log.corrupted_rows())} records\n")

    session = AuditSession(sample.schema, AuditorConfig(min_error_confidence=0.8))
    started = time.perf_counter()
    session.fit(sample.dirty)
    report = session.audit(sample.dirty)
    elapsed = time.perf_counter() - started
    print(f"error detection took {elapsed:.1f}s "
          f"and revealed {report.n_suspicious} suspicious records\n")

    print("top 5 suspicious records (ranked by error confidence):")
    for row in report.suspicious_rows()[:5]:
        best = report.findings_for_row(row)[0]
        print(f"  #{row:<7} {best.attribute} = {best.observed_value!r} "
              f"(expected {best.predicted_label}, "
              f"confidence {best.confidence:.2%}, n={best.support:,.0f})")

    canonical = sample.canonical_row
    rank = (report.suspicious_rows().index(canonical) + 1
            if report.is_flagged(canonical) else None)
    print(f"\nthe paper's canonical deviation (BRV=404 with GBM=911):")
    print(f"  flagged: {report.is_flagged(canonical)}, rank: {rank}")
    for finding in report.findings_for_row(canonical):
        print(f"  {finding.describe()}")

    print("\ninduced dependencies involving BRV/GBM (the paper's examples):")
    model = session.auditor.structure_model()
    for attr in ("GBM", "BRV"):
        dataset = session.auditor.classifiers[attr].dataset
        for rule in model.get(attr, [])[:3]:
            print(f"  {rule.describe(dataset, attr)}")

    print("\ninteractive-correction view of the canonical record "
          "(all classifiers that object):")
    for finding in report.findings_for_row(canonical):
        print(f"  classifier[{finding.attribute}] proposes {finding.proposal!r}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50_000)
