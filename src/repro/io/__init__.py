"""Pluggable table I/O: source/sink protocols + a format registry.

The storage layer between the relational substrate (:mod:`repro.schema`)
and everything that reads or writes tables — the CLI, the streaming
:class:`~repro.core.session.AuditSession`, the test environment, and
embedders. Four backends ship in-tree:

=========  ==============================  ==========================
format     locations                       notes
=========  ==============================  ==========================
csv        ``*.csv``, text streams         the historical default
jsonl      ``*.jsonl`` / ``*.ndjson``      event-log shaped
sqlite     ``*.db`` / ``*.sqlite`` /       stdlib ``sqlite3``;
           ``sqlite:///db?table=t``        chunked ``fetchmany`` reads
parquet    ``*.parquet`` / ``*.pq``        optional, needs ``pyarrow``
=========  ==============================  ==========================

Typical use goes through the registry one-liners::

    from repro.io import read_table, write_table, open_source

    table = read_table(schema, "warehouse.db")          # auto-detected
    write_table(table, "extract.jsonl")
    with open_source(schema, "sqlite:///wh.db?table=loads") as source:
        for chunk in source.chunks(10_000):
            ...

See :mod:`repro.io.base` for the protocol contracts and
:mod:`repro.io.registry` for detection rules and third-party
registration.
"""

from repro.io.base import DEFAULT_CHUNK_SIZE, TableSink, TableSource
from repro.io.columnar import (
    IO_PATHS,
    ColumnarSource,
    ColumnBatch,
    resolve_io_path,
)
from repro.io.csv_backend import CsvTableSink, CsvTableSource
from repro.io.jsonl_backend import JsonlTableSink, JsonlTableSource
from repro.io.parquet_backend import ParquetTableSink, ParquetTableSource
from repro.io.registry import (
    FormatSpec,
    available_formats,
    detect_format,
    format_spec,
    open_sink,
    open_source,
    read_table,
    read_table_chunks,
    register_format,
    write_table,
)
from repro.io.sqlite_backend import SqliteTableSink, SqliteTableSource

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "TableSource",
    "TableSink",
    "ColumnBatch",
    "ColumnarSource",
    "IO_PATHS",
    "resolve_io_path",
    "FormatSpec",
    "register_format",
    "available_formats",
    "format_spec",
    "detect_format",
    "open_source",
    "open_sink",
    "read_table",
    "read_table_chunks",
    "write_table",
    "CsvTableSource",
    "CsvTableSink",
    "JsonlTableSource",
    "JsonlTableSink",
    "SqliteTableSource",
    "SqliteTableSink",
    "ParquetTableSource",
    "ParquetTableSink",
]
