"""Tests for the streaming :class:`AuditSession` API and for batch/row
audit parity at the auditor level.

The acceptance bar for the batch-first redesign: chunked auditing must
merge to a report identical to the whole-table audit (findings, ranking,
record confidences), chunk iterables must be consumed lazily (peak memory
bounded by chunk size), and the vectorized audit must reproduce the
row-loop fallback finding for finding."""

import io
import random

import numpy as np
import pytest

from repro.core import (
    AuditorConfig,
    AuditReport,
    AuditSession,
    DataAuditor,
    ModelPersistenceError,
)
from repro.mining.base import AttributeClassifier
from repro.mining.tree_classifier import TreeClassifier
from repro.schema import Schema, Table, nominal, numeric, write_csv


def _structured_table(n=1200, seed=21, error_rate=0.02):
    rng = random.Random(seed)
    rule = {"a": "x", "b": "y", "c": "z"}
    rows = []
    for _ in range(n):
        a = rng.choice(["a", "b", "c"])
        b = rule[a] if rng.random() > error_rate else rng.choice(["x", "y", "z"])
        number = rng.randint(0, 100) if rng.random() > 0.03 else None
        rows.append([a, b, number])
    schema = Schema(
        [
            nominal("A", ["a", "b", "c"]),
            nominal("B", ["x", "y", "z"]),
            numeric("N", 0, 100, integer=True),
        ]
    )
    return Table(schema, rows)


def _chunked(table, sizes):
    start = 0
    for size in sizes:
        yield table.select(range(start, min(start + size, table.n_rows)))
        start += size
    if start < table.n_rows:
        yield table.select(range(start, table.n_rows))


def _assert_reports_equal(a: AuditReport, b: AuditReport):
    assert a.n_rows == b.n_rows
    assert a.min_error_confidence == b.min_error_confidence
    assert a.record_confidence == b.record_confidence
    assert a.findings == b.findings  # frozen dataclasses: field-wise equality
    assert a.suspicious_rows() == b.suspicious_rows()


@pytest.fixture(scope="module")
def table():
    return _structured_table()


@pytest.fixture(scope="module")
def session(table):
    return AuditSession(
        table.schema, AuditorConfig(min_error_confidence=0.8)
    ).fit(table)


class TestConstruction:
    def test_requires_schema_or_auditor(self):
        with pytest.raises(ValueError):
            AuditSession()

    def test_from_auditor(self, table):
        auditor = DataAuditor(table.schema).fit(table)
        session = AuditSession(auditor=auditor)
        assert session.is_fitted
        assert session.schema == table.schema

    def test_schema_auditor_mismatch_rejected(self, table):
        auditor = DataAuditor(table.schema)
        other = Schema([nominal("Z", ["1"])])
        with pytest.raises(ValueError):
            AuditSession(other, auditor=auditor)

    def test_config_with_auditor_rejected(self, table):
        with pytest.raises(ValueError):
            AuditSession(
                config=AuditorConfig(), auditor=DataAuditor(table.schema)
            )


class TestStreamingParity:
    @pytest.mark.parametrize(
        "sizes",
        [
            (1200,),  # one chunk = the whole table
            (400, 400, 400),
            (1, 499, 700),  # arbitrary uneven chunking
            (37,) * 33,  # many small chunks
        ],
    )
    def test_chunked_merge_equals_whole_table(self, session, table, sizes):
        whole = session.audit(table)
        merged = AuditReport.merge(session.audit_chunks(_chunked(table, sizes)))
        _assert_reports_equal(merged, whole)

    def test_chunk_reports_carry_global_rows(self, session, table):
        whole = session.audit(table)
        reports = list(session.audit_chunks(_chunked(table, (300, 300, 300, 300))))
        assert len(reports) == 4
        flagged_per_chunk = [
            row for report in reports for row in report.suspicious_rows()
        ]
        assert sorted(flagged_per_chunk) == sorted(whole.suspicious_rows())

    def test_csv_stream_equals_whole_table(self, session, table):
        whole = session.audit(table)
        buffer = io.StringIO()
        write_csv(table, buffer)
        buffer.seek(0)
        merged = AuditReport.merge(
            session.audit_csv_stream(buffer, chunk_size=256)
        )
        _assert_reports_equal(merged, whole)

    def test_chunks_consumed_lazily(self, session, table):
        """Nothing is pulled from the chunk iterable before the previous
        report was yielded — the property that bounds peak memory by the
        chunk size instead of the stream length."""
        pulled = []

        def chunk_source():
            for index, chunk in enumerate(_chunked(table, (300, 300, 300, 300))):
                pulled.append(index)
                yield chunk

        stream = session.audit_chunks(chunk_source())
        assert pulled == []
        next(stream)
        assert pulled == [0]
        next(stream)
        assert pulled == [0, 1]

    def test_empty_chunk_stream(self, session):
        assert list(session.audit_chunks([])) == []


class TestMerge:
    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            AuditReport.merge([])

    def test_merge_mismatched_thresholds_rejected(self):
        a = AuditReport(1, [], [0.0], 0.8)
        b = AuditReport(1, [], [0.0], 0.9)
        with pytest.raises(ValueError):
            AuditReport.merge([a, b])

    def test_merge_tolerates_empty_chunks(self, session, table):
        """A poll that catches zero new rows still yields a (vacuous)
        report; merging must treat it as the no-op it is."""
        whole = session.audit(table)
        half = table.n_rows // 2
        first = session.audit(table.select(range(half)))
        empty = AuditReport(
            0, [], [], first.min_error_confidence, row_offset=half
        )
        second = session.audit(
            table.select(range(half, table.n_rows))
        ).with_row_offset(half)
        merged = AuditReport.merge([first, empty, second])
        _assert_reports_equal(merged, whole)

    def test_merge_identical_row_offsets_rejected(self, session, table):
        """Two chunks claiming the same stream position is double
        counting, not contiguity."""
        chunk = session.audit(table.head(100))
        with pytest.raises(ValueError, match="contiguous"):
            AuditReport.merge([chunk, session.audit(table.head(100))])

    def test_merge_is_associative(self, session, table):
        sizes = (300, 250, 400)  # + remainder chunk = 4 chunks
        reports, start = [], 0
        for chunk in _chunked(table, sizes):
            reports.append(session.audit(chunk).with_row_offset(start))
            start += chunk.n_rows
        flat = AuditReport.merge(reports)
        left = AuditReport.merge(
            [AuditReport.merge(reports[:2]), AuditReport.merge(reports[2:])]
        )
        right = AuditReport.merge(
            [reports[0], AuditReport.merge(reports[1:])]
        )
        _assert_reports_equal(flat, session.audit(table))
        _assert_reports_equal(left, flat)
        _assert_reports_equal(right, flat)

    def test_with_row_offset_zero_is_identity(self, session, table):
        report = session.audit(table)
        assert report.with_row_offset(0) is report

    def test_confidence_of_out_of_chunk_row_rejected(self, session, table):
        shifted = session.audit(table.head(10)).with_row_offset(100)
        assert shifted.confidence_of(105) == shifted.record_confidence[5]
        with pytest.raises(IndexError):
            shifted.confidence_of(5)  # precedes the chunk: loud, not wrong
        with pytest.raises(IndexError):
            shifted.confidence_of(110)


class TestPersistence:
    def test_save_load_roundtrip(self, session, table, tmp_path):
        path = tmp_path / "model.json"
        session.save(path)
        resumed = AuditSession.load(path)
        assert resumed.is_fitted
        _assert_reports_equal(resumed.audit(table), session.audit(table))

    def test_save_leaves_no_temp_files(self, session, tmp_path):
        session.save(tmp_path / "model.json")
        assert [p.name for p in tmp_path.iterdir()] == ["model.json"]

    def test_crash_mid_save_keeps_previous_model_intact(
        self, session, table, tmp_path, monkeypatch
    ):
        """Atomicity contract of save(): a process killed between the
        temp-file write and the rename must leave the previous model
        byte-identical and no truncated/temp files behind — the online
        job never loads half a model."""
        import repro.core.serialize as serialize

        path = tmp_path / "model.json"
        session.save(path)
        before = path.read_bytes()

        def killed_before_rename(src, dst):
            raise KeyboardInterrupt  # the SIGINT arrives exactly here

        monkeypatch.setattr(serialize.os, "replace", killed_before_rename)
        with pytest.raises(KeyboardInterrupt):
            session.save(path)
        monkeypatch.undo()

        assert path.read_bytes() == before  # old model untouched …
        assert [p.name for p in tmp_path.iterdir()] == ["model.json"]  # … no debris
        resumed = AuditSession.load(path)
        _assert_reports_equal(resumed.audit(table), session.audit(table))

    def test_crash_mid_write_never_truncates(self, session, tmp_path, monkeypatch):
        """Same contract one step earlier: dying while the temp file is
        being written must not touch the published model either."""
        import repro.core.serialize as serialize

        path = tmp_path / "model.json"
        session.save(path)
        before = path.read_bytes()

        def disk_full(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(serialize.os, "fsync", disk_full)
        with pytest.raises(ModelPersistenceError, match="No space left"):
            session.save(path)
        monkeypatch.undo()

        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["model.json"]


class _RowLoopTree(TreeClassifier):
    """A tree classifier with the vectorized batch path disabled — audits
    through the ABC's predict_encoded row loop, i.e. the pre-redesign
    audit semantics."""

    predict_batch = AttributeClassifier.predict_batch


class TestBatchRowParity:
    def test_audit_batch_equals_row_loop_fallback(self, table):
        """The redesigned (vectorized) audit must produce identical
        findings and record confidences to the row-at-a-time path."""
        from repro.core.auditor import _default_classifier_factory

        def row_loop_factory(cfg):
            # same tree configuration as production, row-loop prediction
            return _RowLoopTree(_default_classifier_factory(cfg).config)

        config_batch = AuditorConfig(min_error_confidence=0.8)
        config_rows = AuditorConfig(
            min_error_confidence=0.8, classifier_factory=row_loop_factory
        )
        dirty = table.copy()
        dirty.set_cell(5, "B", "x" if dirty.cell(5, "B") != "x" else "y")
        dirty.set_cell(17, "A", None)
        batch_report = (
            DataAuditor(table.schema, config_batch).fit(table).audit(dirty)
        )
        row_report = (
            DataAuditor(table.schema, config_rows).fit(table).audit(dirty)
        )
        _assert_reports_equal(batch_report, row_report)
