"""End-to-end: parallel vectorized fit → registry → drift-triggered
auto-refit → serving.

The full production loop of the offline/online split, exercised through
the same entry points an operator uses:

1. ``repro fit --jobs 4 --register`` induces the model on the vectorized
   column path with a 4-worker pool and registers it;
2. the registered bytes are identical to a serial row-path fit of the
   same table (the parity contract holding at the CLI boundary);
3. ``repro monitor --refit auto`` on a drifting stream refits (on the
   session's configured fit path — the vectorized default) and moves
   ``latest`` in the registry;
4. the auto-refitted model round-trips through :mod:`repro.serve`:
   the service resolves it, audits with it, and its stored document
   re-serializes to the registry's own digest.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.cli import main
from repro.core import AuditorConfig, AuditSession
from repro.registry import ModelRegistry, model_digest
from repro.core.serialize import auditor_to_dict
from repro.schema import Schema, Table, nominal, numeric, write_csv
from repro.schema.serialize import schema_to_dict
from repro.serve import AuditService


def _structured_table(n, seed, error_rate):
    rng = random.Random(seed)
    rule = {"a": "x", "b": "y", "c": "z"}
    rows = []
    for _ in range(n):
        a = rng.choice(["a", "b", "c"])
        b = rule[a] if rng.random() > error_rate else rng.choice(["x", "y", "z"])
        rows.append([a, b, rng.randint(0, 100)])
    schema = Schema(
        [
            nominal("A", ["a", "b", "c"]),
            nominal("B", ["x", "y", "z"]),
            numeric("N", 0, 100, integer=True),
        ]
    )
    return Table(schema, rows)


@pytest.fixture
def stand(tmp_path):
    from repro.io import open_sink

    train = _structured_table(1200, seed=21, error_rate=0.02)
    schema_path = tmp_path / "schema.json"
    schema_path.write_text(json.dumps(schema_to_dict(train.schema)))
    train_csv = tmp_path / "train.csv"
    write_csv(train, train_csv)
    # a stream whose error rate steps up mid-way: the drift scenario
    drifting = Table(
        train.schema,
        _structured_table(1024, seed=31, error_rate=0.02).rows
        + _structured_table(1024, seed=32, error_rate=0.4).rows,
    )
    drifting_path = tmp_path / "drifting.jsonl"
    with open_sink(drifting.schema, drifting_path) as sink:
        sink.write(drifting)
    return {
        "dir": tmp_path,
        "schema": schema_path,
        "train_csv": train_csv,
        "drifting": drifting_path,
        "registry": tmp_path / "registry",
    }


def test_parallel_fit_register_refit_serve_round_trip(stand, capsys):
    # 1. parallel vectorized fit, registered and written to a file
    parallel_model = stand["dir"] / "model-par.json"
    assert (
        main(
            [
                "fit",
                "--schema",
                str(stand["schema"]),
                "--input",
                str(stand["train_csv"]),
                "--jobs",
                "4",
                "--model-out",
                str(parallel_model),
                "--register",
                "loads",
                "--registry",
                str(stand["registry"]),
            ]
        )
        == 0
    )

    # 2. serial row-path oracle fit: byte-identical model file
    oracle_model = stand["dir"] / "model-ser.json"
    assert (
        main(
            [
                "fit",
                "--schema",
                str(stand["schema"]),
                "--input",
                str(stand["train_csv"]),
                "--jobs",
                "1",
                "--fit-path",
                "rows",
                "--model-out",
                str(oracle_model),
            ]
        )
        == 0
    )
    assert parallel_model.read_bytes() == oracle_model.read_bytes()
    registry = ModelRegistry(stand["registry"])
    assert registry.resolve("loads@v1").digest == model_digest(
        json.loads(parallel_model.read_text())
    )
    capsys.readouterr()

    # 3. drift-triggered auto-refit moves latest; the refit runs on the
    #    session's fit path — "columns", the vectorized default
    assert AuditorConfig().fit_path == "columns"
    assert (
        main(
            [
                "monitor",
                str(stand["drifting"]),
                "--model",
                "loads@latest",
                "--registry",
                str(stand["registry"]),
                "--window-rows",
                "128",
                "--refit",
                "auto",
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert registry.tags("loads")["latest"] == 2
    refitted = registry.resolve("loads@v2")
    assert refitted.provenance.extra["trigger"] == "drift"

    # 4. the refitted model round-trips through the serving layer
    service = AuditService(registry)
    shown = service.show_model("loads@latest")
    assert shown["ref"] == "loads@v2"
    summary, lines = service.audit(
        {"model": "loads@latest", "source": str(stand["drifting"])}
    )
    assert summary["model"] == "loads@v2"
    assert summary["rows"] == 2048
    assert summary["findings"] == "".join(lines).count("\n") > 0
    # the stored document re-serializes to the registry's own digest
    round_tripped = AuditSession.load_from_registry(registry, "loads@v2")
    assert model_digest(auditor_to_dict(round_tripped.auditor)) == refitted.digest


def test_service_fit_endpoint_accepts_fit_knobs(stand):
    """POST /fit takes the new scalar knobs and the result is identical
    to a default-config fit (execution knobs never change the model)."""
    service = AuditService(ModelRegistry(stand["dir"] / "svc-registry"))
    schema_payload = json.loads(stand["schema"].read_text())
    knobs = service.fit(
        {
            "name": "knobs",
            "schema": schema_payload,
            "source": str(stand["train_csv"]),
            "config": {"fit_n_jobs": 2, "fit_path": "rows"},
        }
    )
    default = service.fit(
        {
            "name": "default",
            "schema": schema_payload,
            "source": str(stand["train_csv"]),
        }
    )
    assert knobs["digest"] == default["digest"]
    assert knobs["provenance"]["config"]["fit_n_jobs"] == 2
    assert knobs["provenance"]["config"]["fit_path"] == "rows"
