"""The table I/O protocols: :class:`TableSource` and :class:`TableSink`.

The paper embeds auditing in the warehouse loading process (sec. 2.2), so
the auditor must speak the warehouse's own formats instead of forcing a
lossy CSV export. Every storage backend implements the same two small
protocols:

* :class:`TableSource` — *open → schema → iterate chunks of* :class:`Table`.
  A source is bound to a :class:`~repro.schema.schema.Schema` at open
  time (reads are schema-driven: the schema decides how each raw cell is
  coerced, so round trips are loss-free for admissible tables) and is
  consumed **once**, either whole (:meth:`TableSource.read`) or as a
  bounded-memory stream (:meth:`TableSource.chunks`) — the substrate for
  :meth:`AuditSession.audit_source
  <repro.core.session.AuditSession.audit_source>`.
* :class:`TableSink` — *write header → write chunks → close*. Chunks may
  arrive incrementally (a streaming audit's findings, a generator's
  output); the header (CSV header row, ``CREATE TABLE``, Parquet file
  schema) is written exactly once, lazily before the first chunk, and
  closing an empty sink still produces a valid empty container.

Both are context managers; ``with`` guarantees file handles and database
connections are released (and, for sinks, that the header exists and
buffers are flushed) even on error paths.

Concrete backends live in :mod:`repro.io` siblings and are looked up
through the format registry (:mod:`repro.io.registry`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path
from typing import Iterator, Optional, TextIO, Union

from repro.schema.schema import Schema
from repro.schema.table import Table
from repro.schema.types import Value

__all__ = ["DEFAULT_CHUNK_SIZE", "TableSource", "TableSink", "open_text"]

#: Default rows per chunk for chunked reads — matches the historical
#: ``read_csv_chunks`` / ``AuditSession.audit_csv_stream`` default.
DEFAULT_CHUNK_SIZE = 8192


def open_text(
    target: Union[str, Path, TextIO], mode: str, *, newline: Optional[str] = None
) -> tuple[TextIO, bool]:
    """Open *target* if it is a path; pass streams through unowned.

    Returns ``(handle, owns_handle)`` — text-backed backends close only
    the handles they opened themselves, so caller-provided streams
    (``StringIO``, ``sys.stdout``) survive the source/sink lifecycle.
    """
    if isinstance(target, (str, Path)):
        return open(target, mode, newline=newline, encoding="utf-8"), True
    return target, False


class TableSource(ABC):
    """A single-pass, schema-driven reader of one stored table.

    Subclasses open their storage in ``__init__`` (so open errors surface
    at construction, where the location is known) and implement
    :meth:`_iter_rows`, yielding schema-ordered cell lists. The base
    class turns that row stream into whole tables or bounded chunks.
    """

    def __init__(self, schema: Schema):
        self.schema = schema

    # -- backend contract ---------------------------------------------------

    @abstractmethod
    def _iter_rows(self) -> Iterator[list[Value]]:
        """Yield one schema-ordered cell list per stored row."""

    def close(self) -> None:
        """Release the underlying handle (idempotent)."""

    # -- consumption --------------------------------------------------------

    def read(self, *, validate: bool = False) -> Table:
        """Materialize the whole source as one :class:`Table`."""
        table = Table(self.schema)
        table.rows.extend(self._iter_rows())
        if validate:
            table.validate()
        return table

    def chunks(
        self, chunk_size: int = DEFAULT_CHUNK_SIZE, *, validate: bool = False
    ) -> Iterator[Table]:
        """Stream the source as tables of at most *chunk_size* rows.

        Rows are pulled lazily, so peak memory is bounded by the chunk
        size rather than the stored row count. A source holding a valid
        header but no rows yields no chunks.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        chunk = Table(self.schema)
        for cells in self._iter_rows():
            chunk.rows.append(cells)
            if len(chunk.rows) >= chunk_size:
                if validate:
                    chunk.validate()
                yield chunk
                chunk = Table(self.schema)
        if chunk.rows:
            if validate:
                chunk.validate()
            yield chunk

    # -- context management -------------------------------------------------

    def __enter__(self) -> "TableSource":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self.schema)} attributes)"


class TableSink(ABC):
    """A schema-bound, chunk-at-a-time writer of one stored table.

    Subclasses implement :meth:`_write_header` (written exactly once,
    before the first rows) and :meth:`_write_rows`. Closing via the
    context manager on the success path writes the header even when no
    chunk arrived, so an empty table still round-trips.
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self._header_written = False

    # -- backend contract ---------------------------------------------------

    @abstractmethod
    def _write_header(self) -> None:
        """Emit the one-time container header (CSV header row, DDL, …)."""

    @abstractmethod
    def _write_rows(self, rows: list[list[Value]]) -> None:
        """Append schema-ordered rows after the header."""

    def close(self) -> None:
        """Flush, finalize, and release the underlying handle (idempotent)."""

    def abort(self) -> None:
        """Release the handle WITHOUT finalizing — the error path.

        Transactional backends roll back (a failed replace-write must
        leave the pre-existing table untouched); container formats
        discard the unreadable partial file. The default just closes.
        """
        self.close()

    # -- writing ------------------------------------------------------------

    def write_header(self) -> None:
        """Ensure the header exists (no-op after the first call)."""
        if not self._header_written:
            self._write_header()
            self._header_written = True

    def write_chunk(self, table: Table) -> None:
        """Append one chunk; all chunks must share the sink's schema."""
        if table.schema != self.schema:
            raise ValueError(
                f"chunk schema {list(table.schema.names)!r} does not match "
                f"sink schema {list(self.schema.names)!r}"
            )
        self.write_header()
        self._write_rows(table.rows)

    def write(self, table: Table) -> None:
        """Write a whole table (header + one chunk)."""
        self.write_chunk(table)

    # -- context management -------------------------------------------------

    def __enter__(self) -> "TableSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            try:
                self.write_header()
            except BaseException:
                self.abort()  # a failing header must not leak the handle
                raise
            self.close()
        else:
            self.abort()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self.schema)} attributes)"
