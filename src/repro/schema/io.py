"""CSV serialization for tables — back-compat wrappers.

The actual reader/writer lives in the pluggable storage layer
(:mod:`repro.io.csv_backend`, one of the :class:`~repro.io.TableSource`
/ :class:`~repro.io.TableSink` backends behind the format registry);
these wrappers keep the historical call signatures working. New code
that may meet formats other than CSV should go through
:func:`repro.io.read_table` / :func:`repro.io.write_table` or
:func:`repro.io.open_source` instead.

Cells are rendered according to the attribute kind (see
:mod:`repro.io.cells`):

* nominal — the raw string,
* numeric — ``str``/``repr`` of the int/float; ``nan``/``inf``
  spellings are rejected on read with an error naming line and
  attribute (non-finite values are never admissible),
* date — ISO format (``YYYY-MM-DD``),
* null — a configurable marker (default: empty field).

Reading is schema-driven: the schema decides how each field is parsed,
so a round trip through CSV is loss-free for admissible tables.

The imports below are function-level on purpose: :mod:`repro.io` builds
on :mod:`repro.schema`, so this module must not pull it in at import
time.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Iterator, TextIO, Union

from repro.schema.schema import Schema
from repro.schema.table import Table

__all__ = [
    "write_csv",
    "read_csv",
    "read_csv_chunks",
    "table_to_csv_text",
    "table_from_csv_text",
]

_DEFAULT_NULL = ""


def write_csv(table: Table, target: Union[str, Path, TextIO], *, null_marker: str = _DEFAULT_NULL) -> None:
    """Write *table* (with a header row) to a path or text stream."""
    from repro.io.csv_backend import CsvTableSink

    with CsvTableSink(table.schema, target, null_marker=null_marker) as sink:
        sink.write(table)


def read_csv(
    schema: Schema,
    source: Union[str, Path, TextIO],
    *,
    null_marker: str = _DEFAULT_NULL,
    validate: bool = False,
) -> Table:
    """Read a table of *schema* from a path or text stream.

    The header row must name exactly the schema attributes; column order
    in the file may differ from schema order.
    """
    from repro.io.csv_backend import CsvTableSource

    with CsvTableSource(schema, source, null_marker=null_marker) as csv_source:
        return csv_source.read(validate=validate)


def read_csv_chunks(
    schema: Schema,
    source: Union[str, Path, TextIO],
    *,
    chunk_size: int = 8192,
    null_marker: str = _DEFAULT_NULL,
    validate: bool = False,
) -> Iterator[Table]:
    """Read a CSV file as a stream of tables of at most *chunk_size* rows.

    Rows are parsed lazily, so peak memory is bounded by the chunk size
    rather than the file size — the substrate for
    :meth:`AuditSession.audit_source
    <repro.core.session.AuditSession.audit_source>`. An input with a
    valid header but no data rows yields no chunks.
    """
    from repro.io.csv_backend import CsvTableSource

    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    with CsvTableSource(schema, source, null_marker=null_marker) as csv_source:
        yield from csv_source.chunks(chunk_size, validate=validate)


def table_to_csv_text(table: Table, *, null_marker: str = _DEFAULT_NULL) -> str:
    """Render *table* as a CSV string."""
    buffer = _io.StringIO()
    write_csv(table, buffer, null_marker=null_marker)
    return buffer.getvalue()


def table_from_csv_text(
    schema: Schema, text: str, *, null_marker: str = _DEFAULT_NULL, validate: bool = False
) -> Table:
    """Parse a table of *schema* from a CSV string."""
    return read_csv(schema, _io.StringIO(text), null_marker=null_marker, validate=validate)
