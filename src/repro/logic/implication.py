"""Implication, tautology, and equivalence tests for TDG-formulae.

Sec. 4.1.3: *"In ordinary propositional logic the validity of the sentence
α ⇒ β is equivalent to the unsatisfiability of α ∧ ¬β. As we did not
include negation […] we can instead associate a TDG-formula α̃ to a
TDG-formula α, so that α is true iff α̃ is false."* Validity of ``α → β``
thus reduces to unsatisfiability of ``α ∧ β̃``.

All verdicts inherit the pragmatic nature of the satisfiability test: a
positive ``implies`` answer is always correct (it rests on a correct UNSAT
verdict); a negative answer may, in rare pathological cases, be wrong.
"""

from __future__ import annotations

from repro.logic.base import Formula
from repro.logic.formulas import conjoin
from repro.logic.negation import negate
from repro.logic.satisfiability import is_satisfiable
from repro.schema.schema import Schema

__all__ = ["implies", "is_tautology", "equivalent"]


def implies(alpha: Formula, beta: Formula, schema: Schema) -> bool:
    """Return ``True`` iff ``α ⇒ β`` (i.e. ``α ∧ β̃`` is unsatisfiable)."""
    return not is_satisfiable(conjoin([alpha, negate(beta)]), schema)


def is_tautology(formula: Formula, schema: Schema) -> bool:
    """Return ``True`` iff *formula* holds on every record (``α̃`` unsatisfiable)."""
    return not is_satisfiable(negate(formula), schema)


def equivalent(alpha: Formula, beta: Formula, schema: Schema) -> bool:
    """Return ``True`` iff the formulas imply each other."""
    return implies(alpha, beta, schema) and implies(beta, alpha, schema)
