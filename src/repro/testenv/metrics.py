"""Performance parameters of the test environment (paper sec. 4.3).

Error detection is summarized in a 2×2 record-level confusion matrix;
the paper's two headline measures are

* **sensitivity** — the ratio of truly found errors to corrupted records
  (preferred over recall-terminology because it is independent of the
  prevalence), and
* **specificity** — "how many of the error free records have been marked
  as such", i.e. TN / (TN + FP).

The paper then calls precision "a synonym for specificity", which is
non-standard (precision is TP / (TP + FP)); both are provided and the
benches report both (see DESIGN.md).

Correction quality uses the before/after 2×2 matrix and the paper's
measure ``((c+d) − (b+d)) / (c+d)`` — the relative reduction of the number
of erroneous cells achieved by applying the proposed corrections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.findings import AuditReport
from repro.pollution.log import PollutionLog
from repro.schema.table import Table

__all__ = [
    "ConfusionMatrix",
    "CorrectionMatrix",
    "EvaluationResult",
    "evaluate_audit",
]


@dataclass(frozen=True)
class ConfusionMatrix:
    """Record- or cell-level detection outcome.

    Layout follows the paper: rows = ground truth (incorrect / correct
    data), columns = tool's opinion (incorrect / correct).
    """

    true_positive: int
    false_negative: int
    false_positive: int
    true_negative: int

    @property
    def n_total(self) -> int:
        return (
            self.true_positive
            + self.false_negative
            + self.false_positive
            + self.true_negative
        )

    @property
    def sensitivity(self) -> float:
        """TP / (TP + FN) — fraction of corrupted items found."""
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 0.0

    @property
    def specificity(self) -> float:
        """TN / (TN + FP) — fraction of clean items marked clean."""
        denominator = self.true_negative + self.false_positive
        return self.true_negative / denominator if denominator else 1.0

    @property
    def precision(self) -> float:
        """TP / (TP + FP) — fraction of marks that are real errors."""
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        """Alias of sensitivity (information-retrieval terminology)."""
        return self.sensitivity

    @property
    def prevalence(self) -> float:
        """Fraction of items that are truly corrupted."""
        total = self.n_total
        return (self.true_positive + self.false_negative) / total if total else 0.0

    @property
    def accuracy(self) -> float:
        total = self.n_total
        return (self.true_positive + self.true_negative) / total if total else 1.0

    def to_table(self) -> str:
        """The paper's 2×2 layout as a printable table."""
        return "\n".join(
            [
                "                      tool's opinion",
                "                      incorrect   correct",
                f"incorrect data        {self.true_positive:>9d}   {self.false_negative:>7d}",
                f"correct data          {self.false_positive:>9d}   {self.true_negative:>7d}",
            ]
        )


@dataclass(frozen=True)
class CorrectionMatrix:
    """The paper's before/after-correction 2×2 matrix (cell level):

    ========  ==================  ====================
    (cells)   after: correct      after: incorrect
    ========  ==================  ====================
    before correct     ``a``            ``b``
    before incorrect   ``c``            ``d``
    ========  ==================  ====================
    """

    a: int
    b: int
    c: int
    d: int

    @property
    def errors_before(self) -> int:
        return self.c + self.d

    @property
    def errors_after(self) -> int:
        return self.b + self.d

    @property
    def quality(self) -> float:
        """``((c+d) − (b+d)) / (c+d)`` — relative error reduction.

        Positive values mean the corrections improved the data; negative
        values mean they degraded it. 0 when nothing was erroneous.
        """
        if self.errors_before == 0:
            return 0.0
        return (self.errors_before - self.errors_after) / self.errors_before

    def to_table(self) -> str:
        return "\n".join(
            [
                "                      after correction",
                "                      correct   incorrect",
                f"before correct        {self.a:>7d}   {self.b:>9d}",
                f"before incorrect      {self.c:>7d}   {self.d:>9d}",
            ]
        )


@dataclass
class EvaluationResult:
    """Everything the test environment measures for one run."""

    records: ConfusionMatrix
    cells: ConfusionMatrix
    correction: CorrectionMatrix
    n_deleted_rows: int

    @property
    def sensitivity(self) -> float:
        return self.records.sensitivity

    @property
    def specificity(self) -> float:
        return self.records.specificity

    @property
    def correction_quality(self) -> float:
        return self.correction.quality

    def summary(self) -> str:
        return (
            f"records: sensitivity={self.records.sensitivity:.3f} "
            f"specificity={self.records.specificity:.4f} "
            f"precision={self.records.precision:.3f} | "
            f"cells: sensitivity={self.cells.sensitivity:.3f} | "
            f"correction quality={self.correction.quality:+.3f} | "
            f"deleted rows (undetectable)={self.n_deleted_rows}"
        )


def evaluate_audit(
    report: AuditReport,
    log: PollutionLog,
    clean: Table,
    dirty: Table,
    *,
    corrected: Optional[Table] = None,
) -> EvaluationResult:
    """Compare the audit outcome with the pollution ground truth.

    * Record level: a dirty row is *truly incorrect* when the log
      attributes at least one corruption to it (changed cell or inserted
      duplicate); it is *marked* when the report flags it at the
      auditor's minimal error confidence. Deleted rows no longer exist
      and are reported separately (a record-marking tool cannot flag
      them).
    * Cell level: corrupted cells vs. flagged (row, attribute) pairs.
    * Correction: cells of rows that descend from a clean row are
      compared before/after applying the report's proposals.
    """
    n_rows = dirty.n_rows
    truth_rows = log.corrupted_rows()
    flagged_rows = set(report.suspicious_rows())
    tp = len(truth_rows & flagged_rows)
    fp = len(flagged_rows - truth_rows)
    fn = len(truth_rows - flagged_rows)
    tn = n_rows - tp - fp - fn
    records = ConfusionMatrix(tp, fn, fp, tn)

    truth_cells = log.corrupted_cells()
    flagged_cells = {(finding.row, finding.attribute) for finding in report.findings}
    cell_tp = len(truth_cells & flagged_cells)
    cell_fp = len(flagged_cells - truth_cells)
    cell_fn = len(truth_cells - flagged_cells)
    cell_tn = n_rows * dirty.n_cols - cell_tp - cell_fp - cell_fn
    cells = ConfusionMatrix(cell_tp, cell_fn, cell_fp, cell_tn)

    if corrected is None:
        corrected = report.apply_corrections(dirty)
    correction = _correction_matrix(log, clean, dirty, corrected)

    return EvaluationResult(records, cells, correction, log.n_deleted)


def _correction_matrix(
    log: PollutionLog, clean: Table, dirty: Table, corrected: Table
) -> CorrectionMatrix:
    origins = log.row_origins
    if origins is None:
        raise ValueError(
            "pollution log lacks row origins; create it via PollutionPipeline "
            "(PollutionLog(n_rows)) to evaluate corrections"
        )
    a = b = c = d = 0
    names = clean.schema.names
    for dirty_index, clean_index in enumerate(origins):
        if clean_index is None:
            continue  # inserted duplicates have no clean counterpart
        clean_row = clean.rows[clean_index]
        dirty_row = dirty.rows[dirty_index]
        corrected_row = corrected.rows[dirty_index]
        for position in range(len(names)):
            before_ok = dirty_row[position] == clean_row[position]
            after_ok = corrected_row[position] == clean_row[position]
            if before_ok and after_ok:
                a += 1
            elif before_ok:
                b += 1
            elif after_ok:
                c += 1
            else:
                d += 1
    return CorrectionMatrix(a, b, c, d)
