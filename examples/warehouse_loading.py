#!/usr/bin/env python3
"""Asynchronous auditing during warehouse loading (paper sec. 2.2).

*"While the time-consuming structure induction can be prepared off-line,
new data can be checked for deviations and loaded quickly."*

This script plays both roles:

* the **offline** job induces the structure model from the historical
  warehouse content and persists it as JSON;
* the **online** load job reloads the model (no training data needed) and
  screens an incoming batch in milliseconds, splitting it into records to
  load and records to quarantine for the quality engineer.

Run with:  python examples/warehouse_loading.py
"""

import random
import tempfile
import time
from pathlib import Path

from repro import AuditorConfig, DataAuditor, load_auditor, save_auditor
from repro.quis import generate_clean_quis, generate_quis_sample


def offline_structure_induction(model_path: Path) -> None:
    """Nightly job: induce and persist the structure model."""
    print("=== offline: structure induction on warehouse history ===")
    sample = generate_quis_sample(30_000, seed=11, error_rate=0.002)
    auditor = DataAuditor(sample.schema, AuditorConfig(min_error_confidence=0.9))
    started = time.perf_counter()
    auditor.fit(sample.dirty)
    print(f"  induction over {sample.dirty.n_rows} records: "
          f"{time.perf_counter() - started:.1f}s")
    save_auditor(auditor, model_path)
    print(f"  structure model persisted to {model_path} "
          f"({model_path.stat().st_size / 1024:.0f} KiB)")


def online_load_check(model_path: Path) -> None:
    """Load-time job: screen a fresh batch against the persisted model."""
    print("\n=== online: deviation check of an incoming batch ===")
    auditor = load_auditor(model_path)

    # an incoming batch: mostly fine, a few corrupted records
    rng = random.Random(99)
    batch = generate_clean_quis(2_000, rng)
    corrupted_rows = [17, 303, 1500]
    batch.set_cell(17, "GBM", "936")     # engine code inconsistent with series
    batch.set_cell(303, "HUBRAUM", 15900)  # displacement out of band
    batch.set_cell(1500, "WERK", None)   # lost plant code

    started = time.perf_counter()
    report = auditor.audit(batch)
    elapsed = time.perf_counter() - started
    print(f"  checked {batch.n_rows} records in {elapsed * 1000:.0f} ms "
          f"(no re-training)")

    quarantine = set(report.suspicious_rows())
    print(f"  loading {batch.n_rows - len(quarantine)} records, "
          f"quarantining {len(quarantine)}")
    for row in sorted(quarantine):
        marker = "seeded" if row in corrupted_rows else "other"
        best = report.findings_for_row(row)[0]
        print(f"    row {row:>5} [{marker:>6}] {best.attribute}: "
              f"observed {best.observed_value!r}, expected {best.predicted_label} "
              f"({best.confidence:.1%})")

    found = sum(1 for row in corrupted_rows if row in quarantine)
    print(f"  seeded errors caught: {found}/{len(corrupted_rows)}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        model_path = Path(tmp) / "quis_structure_model.json"
        offline_structure_induction(model_path)
        online_load_check(model_path)


if __name__ == "__main__":
    main()
