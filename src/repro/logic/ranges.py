"""Current domain ranges for the pragmatic satisfiability test.

Sec. 4.1.3: *"The main idea of the procedure is to initialize the current
domain ranges of every attribute defined in the schema for the target table
with their domain ranges and then successively restrict them by integrating
the constraints of each atomic TDG-formula in the conjunction."*

Two range representations cover the three attribute kinds:

* :class:`NominalRange` — a shrinking set of admissible nominal values;
* :class:`OrderedRange` — an interval with strict/non-strict bounds and
  point exclusions over the attribute's *numeric view* (floats for numeric
  attributes, day ordinals for dates, integer-constrained where the
  underlying domain is discrete).

Both support restriction operations, intersection (for ``A = B`` equality
classes), emptiness / singleton tests, and sampling — sampling is what the
data generator's rule-repair step (sec. 4.1.4) uses to pick values that
satisfy a consequence.
"""

from __future__ import annotations

import math
import random
from typing import AbstractSet, Iterable, Optional

from repro.schema.domain import DateDomain, Domain, NominalDomain, NumericDomain

__all__ = ["NominalRange", "OrderedRange", "range_of_domain"]

#: Spans up to this size are enumerated exactly when exclusions make
#: rejection sampling unreliable.
_ENUMERATION_LIMIT = 8192


class NominalRange:
    """A shrinking set of admissible values of a nominal attribute."""

    __slots__ = ("allowed",)

    def __init__(self, allowed: Iterable[str]):
        self.allowed: set[str] = set(allowed)

    def copy(self) -> "NominalRange":
        return NominalRange(self.allowed)

    # -- restriction -----------------------------------------------------

    def restrict_eq(self, value: str) -> None:
        """Integrate ``A = value``."""
        if value in self.allowed:
            self.allowed = {value}
        else:
            self.allowed = set()

    def restrict_ne(self, value: str) -> None:
        """Integrate ``A ≠ value``."""
        self.allowed.discard(value)

    def intersect(self, other: "NominalRange") -> None:
        """Integrate an equality link with another nominal attribute."""
        self.allowed &= other.allowed

    # -- queries ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.allowed

    def singleton(self) -> Optional[str]:
        """The unique admissible value, if exactly one remains."""
        if len(self.allowed) == 1:
            return next(iter(self.allowed))
        return None

    def contains(self, value: str) -> bool:
        return value in self.allowed

    def sample(
        self, rng: random.Random, forbidden: AbstractSet[str] = frozenset()
    ) -> Optional[str]:
        """Draw a uniform value avoiding *forbidden*; ``None`` if impossible."""
        candidates = sorted(self.allowed - forbidden)
        if not candidates:
            return None
        return candidates[rng.randrange(len(candidates))]

    def __repr__(self) -> str:
        return f"NominalRange({sorted(self.allowed)!r})"


class OrderedRange:
    """An interval with point exclusions over the numeric view.

    ``integer=True`` means only integers in the interval are admissible
    (integer numeric domains and date ordinals); bounds are normalized to
    closed integer bounds eagerly in that case, so strictness flags stay
    ``False`` after every mutation.
    """

    __slots__ = ("low", "high", "low_strict", "high_strict", "excluded", "integer")

    def __init__(
        self,
        low: float,
        high: float,
        *,
        low_strict: bool = False,
        high_strict: bool = False,
        integer: bool = False,
    ):
        self.low = float(low)
        self.high = float(high)
        self.low_strict = low_strict
        self.high_strict = high_strict
        self.excluded: set[float] = set()
        self.integer = integer
        self._normalize()

    def copy(self) -> "OrderedRange":
        dup = OrderedRange(
            self.low,
            self.high,
            low_strict=self.low_strict,
            high_strict=self.high_strict,
            integer=self.integer,
        )
        dup.excluded = set(self.excluded)
        return dup

    def _normalize(self) -> None:
        """Canonicalize bounds.

        Integer ranges get closed integral bounds, and bounds are advanced
        past *excluded* boundary values — this matters for the ordering-link
        propagation of the satisfiability test: ``N < M`` must see the
        tightest attainable bounds of its endpoints. Float ranges absorb an
        excluded value sitting exactly on a non-strict bound into bound
        strictness.
        """
        if not self.integer:
            if self.low in self.excluded:
                self.low_strict = True
            if self.high in self.excluded:
                self.high_strict = True
            return
        low = math.ceil(self.low)
        if self.low_strict and low == self.low:
            low += 1
        high = math.floor(self.high)
        if self.high_strict and high == self.high:
            high -= 1
        if self.excluded:
            while low <= high and float(low) in self.excluded:
                low += 1
            while low <= high and float(high) in self.excluded:
                high -= 1
        self.low, self.high = float(low), float(high)
        self.low_strict = self.high_strict = False

    # -- restriction ------------------------------------------------------

    def restrict_eq(self, value: float) -> None:
        """Integrate ``N = value``."""
        self.restrict_lower(value, strict=False)
        self.restrict_upper(value, strict=False)

    def restrict_ne(self, value: float) -> None:
        """Integrate ``N ≠ value``."""
        self.excluded.add(float(value))
        self._normalize()

    def restrict_upper(self, value: float, *, strict: bool) -> None:
        """Integrate ``N < value`` (strict) or ``N ≤ value``."""
        value = float(value)
        if value < self.high or (value == self.high and strict and not self.high_strict):
            self.high = value
            self.high_strict = strict
            self._normalize()

    def restrict_lower(self, value: float, *, strict: bool) -> None:
        """Integrate ``N > value`` (strict) or ``N ≥ value``."""
        value = float(value)
        if value > self.low or (value == self.low and strict and not self.low_strict):
            self.low = value
            self.low_strict = strict
            self._normalize()

    def intersect(self, other: "OrderedRange") -> None:
        """Integrate an equality link with another ordered attribute."""
        self.restrict_lower(other.low, strict=other.low_strict)
        self.restrict_upper(other.high, strict=other.high_strict)
        self.excluded |= other.excluded
        self.integer = self.integer or other.integer
        self._normalize()

    # -- queries -------------------------------------------------------------

    def _int_span(self) -> tuple[int, int]:
        return int(self.low), int(self.high)

    @property
    def is_empty(self) -> bool:
        if self.low > self.high:
            return True
        if self.low == self.high:
            if self.low_strict or self.high_strict:
                return True
            return self.low in self.excluded
        if self.integer:
            lo, hi = self._int_span()
            if lo > hi:
                return True
            span = hi - lo + 1
            if self.excluded and span <= max(len(self.excluded) * 2, 64):
                return all(float(v) in self.excluded for v in range(lo, hi + 1))
        return False

    def singleton(self) -> Optional[float]:
        """The unique admissible value, if the range pins one down."""
        if self.is_empty:
            return None
        if self.low == self.high and not (self.low_strict or self.high_strict):
            return self.low
        if self.integer:
            lo, hi = self._int_span()
            candidates = [float(v) for v in range(lo, min(hi, lo + 64) + 1) if float(v) not in self.excluded]
            if hi - lo <= 64 and len(candidates) == 1:
                return candidates[0]
        return None

    def contains(self, value: float) -> bool:
        value = float(value)
        if value in self.excluded:
            return False
        if self.integer and value != int(value):
            return False
        if value < self.low or (value == self.low and self.low_strict):
            return False
        if value > self.high or (value == self.high and self.high_strict):
            return False
        return True

    def sample(
        self, rng: random.Random, forbidden: AbstractSet[float] = frozenset()
    ) -> Optional[float]:
        """Draw an admissible value avoiding *forbidden*; ``None`` if impossible."""
        if self.is_empty:
            return None
        blocked = self.excluded | set(forbidden)
        if self.integer:
            lo, hi = self._int_span()
            span = hi - lo + 1
            if span <= 0:
                return None
            if blocked and span <= _ENUMERATION_LIMIT:
                candidates = [v for v in range(lo, hi + 1) if float(v) not in blocked]
                if not candidates:
                    return None
                return float(candidates[rng.randrange(len(candidates))])
            for _ in range(64):
                value = float(rng.randint(lo, hi))
                if value not in blocked:
                    return value
            return None
        if self.low == self.high:
            return None if self.low in blocked else self.low
        for _ in range(64):
            value = rng.uniform(self.low, self.high)
            if value == self.low and self.low_strict:
                continue
            if value == self.high and self.high_strict:
                continue
            if value not in blocked:
                return value
        return None

    def __repr__(self) -> str:
        lo = "(" if self.low_strict else "["
        hi = ")" if self.high_strict else "]"
        tag = ", int" if self.integer else ""
        exc = f", excl={sorted(self.excluded)}" if self.excluded else ""
        return f"OrderedRange{lo}{self.low}, {self.high}{hi}{tag}{exc}"


def range_of_domain(domain: Domain):
    """Initial current range of an attribute, from its declared domain."""
    if isinstance(domain, NominalDomain):
        return NominalRange(domain.values)
    if isinstance(domain, NumericDomain):
        return OrderedRange(domain.low, domain.high, integer=domain.integer)
    if isinstance(domain, DateDomain):
        return OrderedRange(
            domain.start.toordinal(), domain.end.toordinal(), integer=True
        )
    raise TypeError(f"unsupported domain type: {type(domain).__name__}")
