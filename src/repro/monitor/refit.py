"""Refit policy: what the monitor does when drift is sustained.

A drifted attribute means the fitted rules no longer describe the
stream. Three responses, picked by ``mode``:

* ``"off"`` — drift is reported (logged, surfaced in status) and
  nothing else happens;
* ``"recommend"`` — a refit recommendation is recorded in the
  watermark's event list and the status endpoint, for an operator to
  act on;
* ``"auto"`` — the watcher refits on the most recent rows it has
  buffered and registers the result to the model registry with drift
  provenance (``trigger=drift``, the firing window's statistics). The
  registry's ``put`` moves the ``latest`` tag, so anything resolving
  ``name@latest`` — the audit service in particular, whose cache is
  keyed by content digest — serves the refreshed model on its next
  request, no restart involved.

The policy object itself is small and stateless; the watcher owns the
row buffer and calls :func:`perform_refit` at the committed window
boundary so the new model and the triggering window land in the same
watermark write.
"""

from __future__ import annotations

import time
from typing import Any, Optional, TYPE_CHECKING

from repro.core.auditor import DataAuditor
from repro.registry.store import ModelRegistry, ModelVersion, Provenance
from repro.schema.table import Table
from repro.serve.service import _config_json

from .drift import DriftEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.session import AuditSession

__all__ = ["RefitPolicy", "perform_refit"]

_MODES = ("off", "recommend", "auto")


class RefitPolicy:
    """How a :class:`~repro.monitor.watcher.TableWatcher` answers drift."""

    def __init__(
        self,
        mode: str = "off",
        *,
        registry: Optional[ModelRegistry] = None,
        model_name: Optional[str] = None,
        refit_rows: int = 4096,
    ):
        if mode not in _MODES:
            raise ValueError(f"refit mode must be one of {_MODES}, got {mode!r}")
        if mode == "auto":
            if registry is None:
                raise ValueError("refit mode 'auto' needs a model registry")
            if not model_name:
                raise ValueError(
                    "refit mode 'auto' needs the registry model name to refit under"
                )
        if refit_rows < 1:
            raise ValueError(f"refit_rows must be >= 1, got {refit_rows}")
        self.mode = mode
        self.registry = registry
        self.model_name = model_name
        self.refit_rows = refit_rows

    @property
    def wants_buffer(self) -> bool:
        return self.mode == "auto"

    def __repr__(self) -> str:
        return f"RefitPolicy({self.mode!r})"


def perform_refit(
    policy: RefitPolicy,
    session: "AuditSession",
    buffer: Table,
    event: DriftEvent,
    *,
    source: Optional[str] = None,
    source_format: Optional[str] = None,
    stream_rows: int = 0,
) -> tuple["AuditSession", ModelVersion]:
    """Fit a fresh model on *buffer* and register it with drift provenance.

    Returns the new session (same schema and config as the old one) and
    the registered version; the caller swaps its session, resets the
    drift tracker, and commits the new ``model_ref`` in the watermark.
    """
    from repro.core.session import AuditSession

    auditor = DataAuditor(session.schema, session.config)
    start = time.perf_counter()
    auditor.fit(buffer)
    fit_seconds = time.perf_counter() - start
    provenance = Provenance(
        source=str(source) if source is not None else None,
        source_format=source_format,
        config=_config_json(session.config),
        n_rows=len(buffer.rows),
        fit_seconds=fit_seconds,
        extra={
            "trigger": "drift",
            "drift": event.to_dict(),
            "stream_rows": stream_rows,
        },
    )
    version = policy.registry.put(auditor, policy.model_name, provenance=provenance)
    return AuditSession(auditor=auditor), version


def refit_event_record(event: DriftEvent, *, mode: str, **extra: Any) -> dict[str, Any]:
    """The watermark / status entry describing one drift response."""
    record: dict[str, Any] = {"mode": mode, "drift": event.to_dict()}
    record.update(extra)
    return record
