"""Tests for equal-frequency discretization and dataset encoding."""

import datetime

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mining import (
    NULL_LABEL,
    UNKNOWN_LABEL,
    BaseEncoder,
    ClassEncoder,
    Dataset,
    EqualFrequencyDiscretizer,
)
from repro.schema import Schema, Table, date, nominal, numeric


class TestEqualFrequencyDiscretizer:
    def test_balanced_bins(self):
        values = list(range(100))
        discretizer = EqualFrequencyDiscretizer(4).fit(values)
        assert discretizer.n_bins == 4
        bins = discretizer.transform(values)
        counts = np.bincount(bins)
        assert all(20 <= c <= 30 for c in counts)

    def test_out_of_range_values_map_to_edge_bins(self):
        discretizer = EqualFrequencyDiscretizer(4).fit(list(range(100)))
        assert discretizer.transform_value(-1000) == 0
        assert discretizer.transform_value(1000) == discretizer.n_bins - 1

    def test_ties_collapse_bins(self):
        values = [1.0] * 50 + [2.0] * 50
        discretizer = EqualFrequencyDiscretizer(10).fit(values)
        assert discretizer.n_bins <= 3
        # the two observed values land in different bins
        assert discretizer.transform_value(1.0) != discretizer.transform_value(2.0)

    def test_representative_is_median(self):
        discretizer = EqualFrequencyDiscretizer(2).fit(list(range(10)))
        low_bin = discretizer.transform_value(0)
        rep = discretizer.representative(low_bin)
        assert 0 <= rep <= 4.5

    def test_bin_labels_are_intervals(self):
        discretizer = EqualFrequencyDiscretizer(2).fit([0.0, 1.0, 2.0, 3.0])
        assert discretizer.bin_label(0).startswith("[-inf")
        assert discretizer.bin_label(discretizer.n_bins - 1).endswith("inf)")

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            EqualFrequencyDiscretizer(2).transform_value(1.0)

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            EqualFrequencyDiscretizer(2).fit([])

    def test_min_bins(self):
        with pytest.raises(ValueError):
            EqualFrequencyDiscretizer(1)

    def test_state_roundtrip(self):
        discretizer = EqualFrequencyDiscretizer(5).fit([float(i) for i in range(50)])
        clone = EqualFrequencyDiscretizer.from_state(discretizer.to_state())
        for value in (-5.0, 3.3, 25.0, 77.0):
            assert clone.transform_value(value) == discretizer.transform_value(value)
        for bin_index in range(discretizer.n_bins):
            assert clone.representative(bin_index) == discretizer.representative(bin_index)

    @given(st.lists(st.floats(-100, 100), min_size=5, max_size=200), st.integers(2, 8))
    def test_transform_always_in_range(self, values, n_bins):
        discretizer = EqualFrequencyDiscretizer(n_bins).fit(values)
        bins = discretizer.transform(values)
        assert ((bins >= 0) & (bins < discretizer.n_bins)).all()


@pytest.fixture
def schema():
    return Schema(
        [
            nominal("A", ["a", "b", "c"]),
            numeric("N", 0, 100, integer=True),
            date("D", datetime.date(2000, 1, 1), datetime.date(2000, 12, 31)),
        ]
    )


class TestBaseEncoder:
    def test_nominal_codes(self, schema):
        encoder = BaseEncoder(schema.attribute("A"))
        assert encoder.encode("a") == 0
        assert encoder.encode("c") == 2
        assert encoder.encode(None) == -1

    def test_nominal_out_of_domain_gets_unknown_code(self, schema):
        encoder = BaseEncoder(schema.attribute("A"))
        assert encoder.encode("zzz") == encoder.unknown_code
        assert encoder.encode(12345) == encoder.unknown_code  # kind-violating cell

    def test_numeric_view(self, schema):
        encoder = BaseEncoder(schema.attribute("N"))
        assert encoder.encode(42) == 42.0
        assert np.isnan(encoder.encode(None))
        assert np.isnan(encoder.encode("not a number"))

    def test_date_view_is_ordinal(self, schema):
        encoder = BaseEncoder(schema.attribute("D"))
        d = datetime.date(2000, 6, 1)
        assert encoder.encode(d) == float(d.toordinal())

    def test_decode_category(self, schema):
        encoder = BaseEncoder(schema.attribute("A"))
        assert encoder.decode_category(1) == "b"
        assert encoder.decode_category(encoder.unknown_code) is None


class TestClassEncoder:
    def test_nominal_labels(self, schema):
        encoder = ClassEncoder(schema.attribute("A"), ["a", "b", None])
        assert encoder.labels == ("a", "b", "c", NULL_LABEL, UNKNOWN_LABEL)
        assert encoder.label_of("b") == "b"
        assert encoder.label_of(None) == NULL_LABEL
        assert encoder.label_of("weird") == UNKNOWN_LABEL

    def test_numeric_class_is_binned(self, schema):
        values = list(range(100))
        encoder = ClassEncoder(schema.attribute("N"), values, n_bins=4)
        assert encoder.discretizer is not None
        assert len(encoder.labels) == encoder.discretizer.n_bins + 2
        assert encoder.label_of(None) == NULL_LABEL

    def test_numeric_proposal_is_representative(self, schema):
        values = list(range(101))
        encoder = ClassEncoder(schema.attribute("N"), values, n_bins=4)
        label = encoder.label_of(10)
        proposal = encoder.proposal_for(label)
        assert isinstance(proposal, int)
        assert 0 <= proposal <= 30

    def test_nominal_proposal_is_value(self, schema):
        encoder = ClassEncoder(schema.attribute("A"), ["a"])
        assert encoder.proposal_for("a") == "a"
        assert encoder.proposal_for(NULL_LABEL) is None

    def test_date_class(self, schema):
        values = [datetime.date(2000, m, 15) for m in range(1, 13)]
        encoder = ClassEncoder(schema.attribute("D"), values, n_bins=3)
        label = encoder.label_of(datetime.date(2000, 2, 1))
        proposal = encoder.proposal_for(label)
        assert isinstance(proposal, datetime.date)

    def test_state_roundtrip(self, schema):
        encoder = ClassEncoder(schema.attribute("N"), list(range(50)), n_bins=5)
        clone = ClassEncoder.from_state(schema.attribute("N"), encoder.to_state())
        for value in (None, 3, 25, 49, "garbage"):
            assert clone.label_of(value) == encoder.label_of(value)
        assert clone.labels == encoder.labels


class TestDataset:
    def test_encodes_all_rows(self, schema):
        table = Table(
            schema,
            [
                ["a", 5, datetime.date(2000, 2, 2)],
                [None, None, None],
                ["zzz", 99, datetime.date(2000, 11, 11)],
            ],
        )
        dataset = Dataset(table, "A", ["N", "D"])
        assert dataset.n_rows == 3
        assert dataset.y[0] == dataset.class_encoder.code_of("a")
        assert dataset.y[1] == dataset.class_encoder.null_code
        assert dataset.y[2] == dataset.class_encoder.unknown_code

    def test_class_attr_not_in_base(self, schema):
        table = Table(schema, [["a", 5, datetime.date(2000, 2, 2)]])
        with pytest.raises(ValueError):
            Dataset(table, "A", ["A", "N"])

    def test_encode_record_matches_columns(self, schema):
        table = Table(schema, [["a", 5, datetime.date(2000, 2, 2)]])
        dataset = Dataset(table, "A", ["N", "D"])
        encoded = dataset.encode_record(table.record(0))
        assert encoded["N"] == dataset.columns["N"][0]
        assert encoded["D"] == dataset.columns["D"][0]

    def test_for_prediction_needs_no_table(self, schema):
        encoder = ClassEncoder(schema.attribute("A"), ["a", "b"])
        dataset = Dataset.for_prediction(schema, "A", ["N", "D"], encoder)
        encoded = dataset.encode_record({"N": 5, "D": None})
        assert encoded["N"] == 5.0
        assert np.isnan(encoded["D"])
