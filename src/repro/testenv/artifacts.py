"""Persisting fig.-2 experiment artifacts through the storage registry.

An :class:`~repro.testenv.experiment.ExperimentResult` holds everything
one generate → pollute → fit → audit → evaluate cycle produced, but in
memory. This module lands the tables on disk in **any registered
storage format** (:mod:`repro.io`) — the same path the CLI uses — so a
benchmark run can be replayed against the CLI (``repro fit --input
dirty.db``), shared as JSONL, or queried as a SQLite warehouse:

* ``clean.<ext>`` / ``dirty.<ext>`` — the generated and polluted tables;
* ``findings.<ext>`` — the audit findings
  (:func:`~repro.core.findings.findings_to_table` shape);
* ``schema.json`` — the relation schema;
* ``pollution_log.json`` — the ground-truth corruption log.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.findings import findings_to_table
from repro.io.registry import format_spec, read_table, write_table
from repro.schema.schema import Schema
from repro.schema.serialize import schema_from_dict, schema_to_dict
from repro.schema.table import Table
from repro.testenv.experiment import ExperimentResult

__all__ = ["save_experiment_artifacts", "load_experiment_tables"]


def _extension(format: str) -> str:
    spec = format_spec(format)
    if not spec.extensions:
        raise ValueError(f"format {format!r} registers no file extension")
    return spec.extensions[0]


def save_experiment_artifacts(
    result: ExperimentResult,
    directory: Union[str, Path],
    *,
    format: str = "csv",
) -> dict[str, Path]:
    """Write one experiment's tables and logs under *directory*.

    Tables go through the format registry (``format`` names any
    registered backend); the schema and the pollution log are JSON.
    Returns the artifact name → path mapping.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    extension = _extension(format)
    paths = {
        "schema": directory / "schema.json",
        "clean": directory / f"clean{extension}",
        "dirty": directory / f"dirty{extension}",
        "findings": directory / f"findings{extension}",
        "pollution_log": directory / "pollution_log.json",
    }
    paths["schema"].write_text(
        json.dumps(schema_to_dict(result.clean.schema), indent=2), encoding="utf-8"
    )
    write_table(result.clean, paths["clean"], format=format)
    write_table(result.dirty, paths["dirty"], format=format)
    write_table(findings_to_table(result.report.findings), paths["findings"], format=format)
    paths["pollution_log"].write_text(
        json.dumps(result.log.to_dict()), encoding="utf-8"
    )
    return paths


def load_experiment_tables(
    directory: Union[str, Path],
    *,
    format: str = "csv",
    schema: Schema = None,
) -> tuple[Table, Table]:
    """Read back the ``(clean, dirty)`` tables saved by
    :func:`save_experiment_artifacts` (schema taken from ``schema.json``
    unless given)."""
    directory = Path(directory)
    if schema is None:
        payload = json.loads((directory / "schema.json").read_text(encoding="utf-8"))
        schema = schema_from_dict(payload)
    extension = _extension(format)
    clean = read_table(schema, directory / f"clean{extension}", format=format)
    dirty = read_table(schema, directory / f"dirty{extension}", format=format)
    return clean, dirty
