"""Columnar-parity property suite: the column path is pinned to the row
path, byte for byte, on randomized stored tables.

These tests generate random schemas and tables — mixed
nominal/numeric/date columns, nulls, out-of-domain nominals, and
integers beyond 2**53 (where any float64 detour would silently corrupt
the value) — write them to a randomly drawn backend (CSV, JSONL, SQLite,
Parquet when pyarrow is present), and assert that the columnar ingest
lane (``io_path="columns"``) produces exactly the row lane's output:

* :meth:`AuditSession.audit_source` yields byte-identical merged
  reports (findings *and* per-record confidence) at every chunk size;
* :meth:`AuditSession.fit_source` induces a byte-identical model
  (canonical ``auditor_to_dict`` fingerprint);
* a randomly mistyped stored cell raises the *same* extraction error
  from both lanes, even though the column lane converts
  column-at-a-time and must replay buffered rows to recover the row
  path's first-error-in-row-order message.

Parallel workers are deliberately kept out of these properties (jobs
parity is pinned deterministically in ``test_shm_dispatch.py`` and
``test_core_parallel.py``) so the randomized sweep stays fast.
"""

from __future__ import annotations

import datetime
import json
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import AuditorConfig, AuditReport, AuditSession
from repro.core.serialize import auditor_to_dict
from repro.io import open_source, write_table
from repro.schema import Schema, Table, date, nominal, numeric

try:
    import pyarrow  # noqa: F401

    HAVE_PYARROW = True
except ImportError:
    HAVE_PYARROW = False

BACKENDS = ["csv", "jsonl", "sqlite"] + (["parquet"] if HAVE_PYARROW else [])
_EXT = {"csv": "t.csv", "jsonl": "t.jsonl", "sqlite": "t.db", "parquet": "t.parquet"}

_DATE_START = datetime.date(2000, 1, 1)


@st.composite
def schema_and_table(draw, min_rows: int = 1, max_rows: int = 25):
    """A random 2–4 column schema plus a table of random rows.

    Cells come from small per-column pools (ties and constant columns
    arise naturally); every pool includes ``None``, nominal pools an
    out-of-domain value, and the ``bigint`` kind integers past 2**53.
    """
    n_attrs = draw(st.integers(2, 4))
    attributes = []
    pools = []
    for i in range(n_attrs):
        kind = draw(st.sampled_from(("nominal", "int", "bigint", "float", "date")))
        name = f"A{i}"
        if kind == "nominal":
            values = ["a", "b", "c", "d"][: draw(st.integers(2, 4))]
            attributes.append(nominal(name, values))
            pool = list(values) + ["zzz"]  # out-of-domain → unknown code
        elif kind == "int":
            attributes.append(numeric(name, 0, 100, integer=True))
            pool = draw(
                st.lists(st.integers(0, 100), min_size=1, max_size=4, unique=True)
            )
        elif kind == "bigint":
            # past float64's exact-integer range: a lossy detour through
            # floats would change these values and break byte parity
            attributes.append(numeric(name, 0, 2**70, integer=True))
            pool = [0, 2**53 + 1, 2**60 + 3, 2**64 + 7]
        elif kind == "float":
            attributes.append(numeric(name, 0.0, 10.0))
            pool = draw(
                st.lists(
                    st.floats(0, 10, allow_nan=False, allow_infinity=False),
                    min_size=1,
                    max_size=4,
                    unique=True,
                )
            )
        else:
            attributes.append(date(name, _DATE_START, datetime.date(2001, 12, 31)))
            offsets = draw(
                st.lists(st.integers(0, 700), min_size=1, max_size=4, unique=True)
            )
            pool = [_DATE_START + datetime.timedelta(days=d) for d in offsets]
        pools.append(pool + [None])
    schema = Schema(attributes)
    n_rows = draw(st.integers(min_rows, max_rows))
    rows = [
        [draw(st.sampled_from(pools[i])) for i in range(n_attrs)]
        for _ in range(n_rows)
    ]
    return schema, Table(schema, rows)


def _report_fingerprint(report: AuditReport) -> tuple:
    return (tuple(report.findings), tuple(report.record_confidence))


def _model_fingerprint(session: AuditSession) -> bytes:
    return json.dumps(auditor_to_dict(session.auditor), sort_keys=True).encode()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    data=schema_and_table(),
    fmt=st.sampled_from(BACKENDS),
    chunk_size=st.sampled_from((1, 2, 7, 1000)),
)
def test_audit_source_columns_matches_rows(data, fmt, chunk_size):
    """Randomized stored tables audit byte-identically on both lanes."""
    schema, table = data
    session = AuditSession(schema, AuditorConfig())
    session.fit(table)
    with tempfile.TemporaryDirectory() as tmp:
        location = f"{tmp}/{_EXT[fmt]}"
        write_table(table, location)
        reports = {
            io_path: AuditReport.merge(
                session.audit_source(
                    location, chunk_size=chunk_size, io_path=io_path
                )
            )
            for io_path in ("rows", "columns")
        }
    assert _report_fingerprint(reports["columns"]) == _report_fingerprint(
        reports["rows"]
    )
    # and both equal the in-memory whole-table audit
    assert _report_fingerprint(reports["rows"]) == _report_fingerprint(
        session.audit(table)
    )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=schema_and_table(), fmt=st.sampled_from(BACKENDS))
def test_fit_source_columns_matches_rows(data, fmt):
    """Randomized stored tables fit byte-identical models on both lanes."""
    schema, table = data
    with tempfile.TemporaryDirectory() as tmp:
        location = f"{tmp}/{_EXT[fmt]}"
        write_table(table, location)
        fingerprints = set()
        for io_path in ("rows", "columns"):
            session = AuditSession(schema, AuditorConfig())
            session.fit_source(location, io_path=io_path)
            fingerprints.add(_model_fingerprint(session))
    assert len(fingerprints) == 1


_BAD_CELL = {"nominal": 123, "numeric": "oops", "date": 42}


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    data=schema_and_table(min_rows=1),
    position=st.tuples(st.integers(0, 10**6), st.integers(0, 10**6)),
    chunk_size=st.sampled_from((1, 3, 1000)),
)
def test_mistyped_cell_error_identity_jsonl(data, position, chunk_size):
    """A random wrong-typed stored cell raises the same error both ways."""
    schema, table = data
    row = position[0] % table.n_rows
    col = position[1] % len(schema.names)
    name = schema.names[col]
    with tempfile.TemporaryDirectory() as tmp:
        location = f"{tmp}/bad.jsonl"
        write_table(table, location + ".tmp", format="jsonl")
        with open(location + ".tmp", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        record = json.loads(lines[row])
        record[name] = _BAD_CELL[schema.attribute(name).domain.kind.value]
        lines[row] = json.dumps(record)
        with open(location, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with open_source(schema, location) as source:
            with pytest.raises(ValueError) as row_err:
                source.read()
        with open_source(schema, location) as source:
            with pytest.raises(ValueError) as col_err:
                for _ in source.column_batches(chunk_size):
                    pass
    assert str(col_err.value) == str(row_err.value)
    assert f"line {row + 1}" in str(row_err.value)
