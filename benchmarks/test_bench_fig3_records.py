"""E1 / Figure 3 — influence of the number of records on sensitivity.

Paper: sensitivity rises with the number of records up to nearly 0.3;
below ~6000 records there is a visible drop because leaves cannot gather
enough instances to clear the minimal-error-confidence limit (the
``minInst`` effect). Expected shape here: monotone-ish rise that
accelerates once record counts support confident leaves.
"""

from repro.testenv import ExperimentConfig, format_series, sweep_records

RECORD_GRID = (1000, 2000, 4000, 6000, 8000, 10000)
BASE = ExperimentConfig(n_rules=100)


def test_fig3_sensitivity_vs_records(benchmark, environment, record_table):
    points = benchmark.pedantic(
        lambda: sweep_records(RECORD_GRID, base=BASE, environment=environment),
        rounds=1,
        iterations=1,
    )
    table = format_series(
        "E1 / Figure 3 — sensitivity vs. number of records "
        "(base config: 100 rules, pollution factor 1, min confidence 80%)",
        "records",
        points,
    )
    record_table("E1_fig3_records", table)

    sensitivities = [result.sensitivity for _, result in points]
    # the paper's shape: more records → (weakly) more sensitivity, with the
    # largest setting clearly beating the smallest
    assert sensitivities[-1] > sensitivities[0]
    assert max(sensitivities) > 0.15
    # specificity stays high throughout (sec. 6.1: "about 99%")
    assert all(result.specificity > 0.97 for _, result in points)
